//! A memory sweep over a paper workload — Figure 2 in miniature.
//!
//! Simulates the Rutgers-like preset on an 8-node cluster across a range of
//! per-node memory sizes, comparing the master-preserving middleware against
//! the L2S baseline and printing the normalized throughput (the paper's
//! Figure 3 view).
//!
//! Run with: `cargo run --release --example web_cluster [preset]`

use coopcache::traces::Preset;
use coopcache::webserver::{self, CcmVariant, ServerKind, SimConfig};
use std::sync::Arc;

fn main() {
    let preset = std::env::args()
        .nth(1)
        .and_then(|s| Preset::from_name(&s))
        .unwrap_or(Preset::Rutgers);
    let workload = Arc::new(preset.workload());
    let nodes = 8;
    println!(
        "workload {}: {} files, {} MB; cluster: {} nodes",
        preset.name(),
        workload.num_files(),
        workload.total_bytes() >> 20,
        nodes
    );
    println!(
        "\n{:>9} {:>10} {:>10} {:>8} {:>9} {:>9}",
        "mem/node", "l2s req/s", "mp req/s", "mp/l2s", "mp hit", "mp disk%"
    );

    for mem_mb in [8u64, 32, 128, 512] {
        let mem = mem_mb << 20;
        let run = |server| {
            let mut cfg = SimConfig::paper(server, nodes, mem);
            cfg.warmup_requests = 60_000;
            cfg.measure_requests = 60_000;
            webserver::run(&cfg, &workload)
        };
        let l2s = run(ServerKind::L2s { handoff: true });
        let mp = run(ServerKind::Ccm(CcmVariant::master_preserving()));
        println!(
            "{:>7}MB {:>10.0} {:>10.0} {:>8.2} {:>8.1}% {:>8.1}%",
            mem_mb,
            l2s.throughput_rps,
            mp.throughput_rps,
            mp.throughput_rps / l2s.throughput_rps,
            100.0 * mp.total_hit_rate(),
            100.0 * mp.disk_rate,
        );
    }
    println!("\nAs aggregate memory approaches the working set, the generic");
    println!("middleware matches (and with its finer block granularity, can");
    println!("exceed) the locality-conscious server.");
}
