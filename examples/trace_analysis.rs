//! Workload analysis: Table 2 statistics and Figure 1 curves, plus loading
//! a real Common Log Format access log.
//!
//! Run with: `cargo run --release --example trace_analysis [path/to/access.log]`
//!
//! Without an argument, it analyzes the four built-in presets; with one, it
//! parses the given CLF log and reports the same statistics for it.

use coopcache::traces::{clf, Preset, TraceStats, WorkingSetCurve};

fn analyze(w: &coopcache::traces::Workload) {
    let stats = TraceStats::of(w);
    println!("{}", TraceStats::header());
    println!("{}", stats.row());

    let curve = WorkingSetCurve::compute(w, 200);
    println!("\nworking set (memory needed to cover X% of requests):");
    for frac in [0.5, 0.75, 0.9, 0.95, 0.99] {
        println!(
            "  {:>4.0}% of requests -> {:>8.1} MB",
            100.0 * frac,
            w.working_set_for(frac) as f64 / (1 << 20) as f64
        );
    }
    let head = curve
        .points()
        .iter()
        .find(|p| p.request_fraction >= 0.5)
        .expect("curve covers 50%");
    println!(
        "  the hottest {:.1}% of files absorb half of all requests",
        100.0 * head.file_fraction
    );
}

fn main() {
    match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let loaded = clf::load(&text, &path);
            println!(
                "parsed {} requests ({} lines skipped) over {} files\n",
                loaded.requests.len(),
                loaded.skipped,
                loaded.workload.num_files()
            );
            analyze(&loaded.workload);
        }
        None => {
            for preset in Preset::all() {
                println!("==== {} ====", preset.name());
                analyze(&preset.workload());
                println!();
            }
        }
    }
}
