//! The middleware as a running library: threads, channels, real bytes.
//!
//! Starts a 4-node in-process cluster over a synthetic backing store, has
//! worker threads on every node read a shared document set through the
//! cooperative cache, and prints the protocol traffic that resulted —
//! the "building block for diverse services" usage the paper motivates
//! (file servers, web servers, …).
//!
//! Run with: `cargo run --release --example middleware_service`

use coopcache::core::{FileId, NodeId, ReplacementPolicy};
use coopcache::rt::{Catalog, Middleware, RtConfig, SyntheticStore};
use coopcache::simcore::Rng;
use std::sync::Arc;

fn main() {
    // 200 documents, 4-40 KB each.
    let mut rng = Rng::new(2026);
    let sizes: Vec<u64> = (0..200).map(|_| rng.next_range(4_096, 40_960)).collect();
    let catalog = Catalog::new(sizes);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));

    let mw = Arc::new(Middleware::start(
        RtConfig {
            nodes: 4,
            capacity_blocks: 256, // 2 MB per node — forces cooperation
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog,
        store,
    ));
    println!("started a 4-node middleware cluster (2 MB cache per node)");

    // Two worker threads per node, Zipf-ish access to the documents.
    let mut workers = Vec::new();
    for w in 0..8u16 {
        let mw = mw.clone();
        workers.push(std::thread::spawn(move || {
            let handle = mw.handle(NodeId(w % 4));
            let mut rng = Rng::new(w as u64);
            let mut bytes = 0u64;
            for _ in 0..500 {
                // Square a uniform draw to skew toward hot (low) ids.
                let u = rng.next_f64();
                let f = FileId(((u * u) * 200.0) as u32);
                bytes += handle.read_file(f).len() as u64;
            }
            bytes
        }));
    }
    let total: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();

    let s = mw.stats();
    println!(
        "served {:.1} MB through the cache\n",
        total as f64 / (1 << 20) as f64
    );
    println!("protocol traffic:");
    println!("  block accesses     {:>8}", s.accesses());
    println!(
        "  local hits         {:>8} ({:.1}%)",
        s.local_hits,
        100.0 * s.local_hit_rate()
    );
    println!(
        "  remote hits        {:>8} ({:.1}%)",
        s.remote_hits,
        100.0 * s.remote_hit_rate()
    );
    println!(
        "  disk reads         {:>8} ({:.1}%)",
        s.disk_reads,
        100.0 * s.miss_rate()
    );
    println!("  masters forwarded  {:>8}", s.forwards);
    println!("  evictions dropped  {:>8}", s.evict_drops);
    println!("  data-plane races   {:>8}", mw.store_fallbacks());

    mw.check_invariants();
    Arc::try_unwrap(mw).ok().expect("sole owner").shutdown();
    println!("\nclean shutdown; every byte verified against the backing store");
}
