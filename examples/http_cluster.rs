//! A real web cluster: HTTP servers on the cooperative caching middleware.
//!
//! Starts 4 HTTP listeners (one per middleware node) over a synthetic
//! document store, drives keep-alive load round-robin across them — the
//! role round-robin DNS plays in the paper — and reports the cache
//! cooperation that happened underneath the sockets.
//!
//! Run with: `cargo run --release --example http_cluster`

use coopcache::core::ReplacementPolicy;
use coopcache::httpd::client::load_run;
use coopcache::httpd::HttpCluster;
use coopcache::rt::{Catalog, RtConfig, SyntheticStore};
use coopcache::simcore::Rng;
use std::sync::Arc;

fn main() {
    // 300 documents, 2-64 KB.
    let mut rng = Rng::new(7);
    let sizes: Vec<u64> = (0..300).map(|_| rng.next_range(2_048, 65_536)).collect();
    let catalog = Catalog::new(sizes);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 3));

    let cluster = HttpCluster::start(
        RtConfig {
            nodes: 4,
            capacity_blocks: 512, // 4 MB per node
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog.clone(),
        store,
    );
    println!("HTTP cluster up:");
    for (n, addr) in cluster.addrs().iter().enumerate() {
        println!("  node {n}: http://{addr}/file/<id>");
    }

    let verify_catalog = catalog.clone();
    let started = std::time::Instant::now();
    let report = load_run(cluster.addrs(), 300, 16, 250, move |id, body| {
        body.len() as u64 == verify_catalog.size_of(coopcache::core::FileId(id))
    });
    let secs = started.elapsed().as_secs_f64();

    println!(
        "\n{} requests over 16 keep-alive connections in {secs:.2}s ({:.0} req/s), {} failed",
        report.ok + report.failed,
        (report.ok + report.failed) as f64 / secs,
        report.failed
    );
    let s = cluster.middleware().stats();
    println!("\nunderneath the sockets:");
    println!(
        "  {} block accesses: {:.1}% local, {:.1}% peer, {:.1}% disk",
        s.accesses(),
        100.0 * s.local_hit_rate(),
        100.0 * s.remote_hit_rate(),
        100.0 * s.miss_rate()
    );
    println!("  {} masters forwarded between nodes", s.forwards);
    cluster.middleware().check_invariants();
    cluster.shutdown();
    println!("\nclean shutdown");
}
