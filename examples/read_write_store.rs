//! The §6 writes extension: the middleware as a coherent read/write block
//! service.
//!
//! The paper's protocol is read-only ("we assume a read-only request
//! stream"); its future work asks "how to support writes as well as reads".
//! This example runs the implemented write protocol: writers overwrite
//! blocks through the cooperative cache (invalidating every other copy in
//! cluster memory and writing through to the backing store) while readers
//! on other nodes keep reading — and always observe the latest committed
//! version.
//!
//! Run with: `cargo run --release --example read_write_store`

use coopcache::core::block::BLOCK_SIZE;
use coopcache::core::{BlockId, FileId, NodeId, ReplacementPolicy};
use coopcache::rt::{Catalog, MemStore, Middleware, RtConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // 64 single-block "records".
    let catalog = Catalog::new(vec![BLOCK_SIZE; 64]);
    let store = Arc::new(MemStore::new(catalog.clone(), 11));
    let mw = Arc::new(Middleware::start(
        RtConfig {
            nodes: 4,
            capacity_blocks: 48, // smaller than the record set: eviction live
            policy: ReplacementPolicy::MasterPreserving,
            ..RtConfig::default()
        },
        catalog,
        store.clone(),
    ));
    println!("4-node middleware over 64 writable records\n");

    // Initialize every record to version 0 so readers never see the
    // pristine synthetic store content.
    for f in 0..64u32 {
        mw.handle(NodeId(0))
            .write_block(BlockId::new(FileId(f), 0), &vec![0u8; BLOCK_SIZE as usize])
            .expect("writable store");
    }

    let stop = Arc::new(AtomicBool::new(false));

    // One writer per node; writer t owns records 16t..16(t+1) and stamps
    // them with increasing versions.
    let mut threads = Vec::new();
    for t in 0..4u16 {
        let mw = mw.clone();
        threads.push(std::thread::spawn(move || {
            let h = mw.handle(NodeId(t));
            for version in 1..=50u8 {
                for r in 0..16u32 {
                    let block = BlockId::new(FileId(t as u32 * 16 + r), 0);
                    let payload = vec![version; BLOCK_SIZE as usize];
                    h.write_block(block, &payload).expect("writable store");
                }
            }
            0u64 // same thread type as the readers
        }));
    }

    // Readers roam over everything, checking only that reads are internally
    // consistent (a block is a uniform stamp — never a torn mix).
    for t in 0..4u16 {
        let mw = mw.clone();
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let h = mw.handle(NodeId((t + 1) % 4));
            let mut rng = coopcache::simcore::Rng::new(t as u64 + 100);
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let block = BlockId::new(FileId(rng.next_below(64) as u32), 0);
                let data = h.read_block(block);
                let first = data[0];
                assert!(data.iter().all(|&b| b == first), "torn read on {block:?}");
                reads += 1;
            }
            reads
        }));
    }

    // Join writers (first 4), then stop readers.
    let mut handles = threads.into_iter();
    for _ in 0..4 {
        handles.next().unwrap().join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let reads: u64 = handles.map(|h| h.join().expect("reader")).sum();

    // Every record must now carry its final version, from every node.
    for f in 0..64u32 {
        let block = BlockId::new(FileId(f), 0);
        for n in 0..4u16 {
            let data = mw.handle(NodeId(n)).read_block(block);
            assert_eq!(data[0], 50, "record {f} stale at node {n}");
        }
    }

    let s = mw.stats();
    println!("writers committed {} block writes", s.writes);
    println!("readers performed {reads} consistent reads");
    println!("invalidations sent: {}", s.invalidations);
    println!("store now holds {} dirty records", store.dirty_blocks());
    println!("\nall 64 records verified at version 50 from every node");
    mw.check_invariants();
    Arc::try_unwrap(mw).ok().expect("sole owner").shutdown();
}
