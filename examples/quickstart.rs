//! Quickstart: simulate the paper's headline comparison on one config.
//!
//! Builds a small synthetic web workload, runs the L2S baseline and all
//! three middleware variants on a 4-node cluster with 16 MB of cache per
//! node, and prints the comparison the paper's Figure 2 makes per memory
//! point.
//!
//! Run with: `cargo run --release --example quickstart`

use coopcache::traces::SynthConfig;
use coopcache::webserver::{self, CcmVariant, RunMetrics, ServerKind, SimConfig};
use std::sync::Arc;

fn main() {
    // A ~100 MB web workload: Zipf popularity, heavy-tailed sizes.
    let workload = Arc::new(
        SynthConfig {
            name: "quickstart".into(),
            n_files: 4_000,
            total_bytes: Some(100 << 20),
            ..SynthConfig::default()
        }
        .build(),
    );
    println!(
        "workload: {} files, {:.0} MB file set, avg request {:.1} KB",
        workload.num_files(),
        workload.total_bytes() as f64 / (1 << 20) as f64,
        workload.avg_request_size() / 1024.0
    );

    let nodes = 4;
    let mem = 16 << 20; // bytes per node
    println!(
        "cluster: {nodes} nodes x {} MB cache ({} MB aggregate)\n",
        mem >> 20,
        (mem * nodes as u64) >> 20
    );

    let servers = [
        ServerKind::L2s { handoff: true },
        ServerKind::Ccm(CcmVariant::basic()),
        ServerKind::Ccm(CcmVariant::scheduled()),
        ServerKind::Ccm(CcmVariant::master_preserving()),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "server", "req/s", "mean ms", "local", "remote", "disk"
    );
    let mut l2s_rps = 0.0;
    for server in servers {
        let mut cfg = SimConfig::paper(server, nodes, mem);
        cfg.warmup_requests = 40_000;
        cfg.measure_requests = 40_000;
        let m: RunMetrics = webserver::run(&cfg, &workload);
        if matches!(server, ServerKind::L2s { .. }) {
            l2s_rps = m.throughput_rps;
        }
        println!(
            "{:<12} {:>10.0} {:>10.2} {:>7.1}% {:>7.1}% {:>7.1}%",
            m.label,
            m.throughput_rps,
            m.mean_response_ms,
            100.0 * m.local_hit_rate,
            100.0 * m.remote_hit_rate,
            100.0 * m.disk_rate,
        );
        if m.label == "ccm-mp" {
            println!(
                "\nccm-mp achieves {:.0}% of L2S's throughput — the paper's point:",
                100.0 * m.throughput_rps / l2s_rps
            );
            println!("a generic block-based cooperative caching layer can stand in for");
            println!("application-specific locality-aware request distribution.");
        }
    }
}
