//! # coopcache — cooperative caching middleware for cluster-based servers
//!
//! A full reproduction of *Cooperative Caching Middleware for Cluster-Based
//! Servers* (Cuenca-Acuna & Nguyen, HPDC 2001): the block-based cooperative
//! caching protocol, the locality-conscious L2S baseline it is compared
//! against, the event-driven cluster simulator the paper's evaluation runs
//! on, calibrated synthetic stand-ins for its four web traces, and a
//! threaded runtime that executes the protocol as an actual middleware
//! library.
//!
//! ## Crates
//!
//! | Re-export | Crate | What it is |
//! |-----------|-------|------------|
//! | [`core`] | `ccm-core` | The paper's contribution: the cooperative caching protocol (caches, directory, replacement, forwarding) as a pure state machine |
//! | [`simcore`] | `simcore` | Deterministic discrete-event simulation engine |
//! | [`cluster`] | `ccm-cluster` | CPU/NIC/disk/LAN hardware models (Table 1) |
//! | [`traces`] | `ccm-traces` | Workload substrate: synthetic presets, CLF parser, analysis |
//! | [`l2s`] | `ccm-l2s` | The content- and load-aware baseline server |
//! | [`webserver`] | `ccm-webserver` | The simulated cluster web servers and metrics |
//! | [`rt`] | `ccm-rt` | The protocol as a running, threaded middleware |
//! | [`disk`] | `ccm-disk` | Asynchronous disk I/O: contiguity scheduling (CcmSched-style), miss coalescing, readahead, and a real file-backed block store |
//! | [`net`] | `ccm-net` | TCP peer transport: wire codec plus the `TcpLan` socket backend |
//! | [`httpd`] | `ccm-httpd` | An HTTP/1.x file server on the middleware (real sockets) |
//! | [`front`] | `ccm-front` | Content-aware HTTP front tier: pluggable dispatch over interchangeable CCM / live-L2S backends |
//! | [`obs`] | `ccm-obs` | Observability: lock-free metrics registry, block-path trace ring, Prometheus exposition, `ccmtop` |
//! | [`load`] | `ccm-load` | Trace-replay load generator for the live cluster, with the runtime-vs-simulator conformance driver |
//!
//! ## Quick start
//!
//! Simulate the paper's headline comparison on one memory point:
//!
//! ```
//! use coopcache::traces::SynthConfig;
//! use coopcache::webserver::{self, CcmVariant, ServerKind, SimConfig};
//! use std::sync::Arc;
//!
//! let workload = Arc::new(SynthConfig {
//!     n_files: 300,
//!     total_bytes: Some(16 << 20),
//!     ..SynthConfig::default()
//! }.build());
//!
//! let cfg = SimConfig::paper(
//!     ServerKind::Ccm(CcmVariant::master_preserving()),
//!     4,          // nodes
//!     8 << 20,    // bytes of cache per node
//! ).quick();
//! let metrics = webserver::run(&cfg, &workload);
//! assert!(metrics.throughput_rps > 0.0);
//! ```
//!
//! Or run the protocol as a real in-process middleware:
//!
//! ```
//! use coopcache::core::{FileId, NodeId};
//! use coopcache::rt::{Catalog, Middleware, RtConfig, SyntheticStore};
//! use std::sync::Arc;
//!
//! let catalog = Catalog::new(vec![20_000u64; 8]);
//! let store = Arc::new(SyntheticStore::new(catalog.clone(), 1));
//! let mw = Middleware::start(RtConfig::default(), catalog, store);
//! let bytes = mw.handle(NodeId(0)).read_file(FileId(3));
//! assert_eq!(bytes.len(), 20_000);
//! mw.shutdown();
//! ```
//!
//! The `ccm-bench` crate regenerates every table and figure of the paper;
//! see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
//! results.

#![warn(missing_docs)]

pub use ccm_cluster as cluster;
pub use ccm_core as core;
pub use ccm_disk as disk;
pub use ccm_front as front;
pub use ccm_httpd as httpd;
pub use ccm_l2s as l2s;
pub use ccm_load as load;
pub use ccm_net as net;
pub use ccm_obs as obs;
pub use ccm_rt as rt;
pub use ccm_traces as traces;
pub use ccm_webserver as webserver;
pub use simcore;
