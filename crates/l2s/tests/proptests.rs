//! Property-based tests for the L2S baseline's invariants.

use ccm_core::{FileId, NodeId};
use ccm_l2s::{L2sConfig, L2sSystem};
use proptest::prelude::*;
use std::sync::Arc;

fn sizes(n: usize) -> Arc<[u64]> {
    (0..n).map(|i| 4_000 + (i as u64 * 997) % 60_000).collect()
}

fn dispatches(nodes: u16, files: u32) -> impl Strategy<Value = Vec<(u16, u32)>> {
    prop::collection::vec(((0..nodes), (0..files)), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Capacity, copy counts, and serving sets stay consistent under any
    /// dispatch sequence (with the load bracket exercised too).
    #[test]
    fn invariants_hold_under_arbitrary_dispatch(
        seq in dispatches(4, 60),
        cap_kb in 8u64..512,
        complete_every in 1usize..6,
    ) {
        let mut s = L2sSystem::new(L2sConfig::paper(4, cap_kb * 1024), sizes(60));
        let mut in_flight: Vec<NodeId> = Vec::new();
        for (i, &(n, f)) in seq.iter().enumerate() {
            let out = s.dispatch(NodeId(n), FileId(f));
            s.begin_request(out.target);
            in_flight.push(out.target);
            // Periodically complete the oldest request.
            if i % complete_every == 0 {
                if let Some(t) = in_flight.pop() {
                    s.end_request(t);
                }
            }
            // Whatever happened, caches stay within capacity and counts
            // stay exact.
            if i % 37 == 0 {
                s.check_invariants();
            }
        }
        s.check_invariants();
        let st = s.stats();
        prop_assert_eq!(st.requests(), seq.len() as u64);
    }

    /// Content-aware routing: absent overload, every request for a file goes
    /// to the same node, and only one copy of it exists in cluster memory.
    #[test]
    fn single_copy_per_file_without_overload(seq in dispatches(4, 40)) {
        let mut s = L2sSystem::new(L2sConfig::paper(4, 64 << 20), sizes(40));
        let mut assigned: std::collections::HashMap<u32, NodeId> =
            std::collections::HashMap::new();
        for &(n, f) in &seq {
            // No begin/end bracket: loads stay at zero, so no replication.
            let out = s.dispatch(NodeId(n), FileId(f));
            let prev = assigned.insert(f, out.target);
            if let Some(p) = prev {
                prop_assert_eq!(p, out.target, "file {} migrated without load", f);
            }
            prop_assert!(s.copy_count(FileId(f)) <= 1, "file {} duplicated", f);
        }
        prop_assert_eq!(s.stats().replications, 0);
        s.check_invariants();
    }

    /// The hit rate of a repeated working set that fits in one node's cache
    /// converges to ~1 (first touch per file is the only miss).
    #[test]
    fn fitting_working_set_hits_after_first_touch(rounds in 2usize..8) {
        let n_files = 20u32;
        let mut s = L2sSystem::new(L2sConfig::paper(2, 32 << 20), sizes(n_files as usize));
        for r in 0..rounds {
            for f in 0..n_files {
                let out = s.dispatch(NodeId((f % 2) as u16), FileId(f));
                if r > 0 {
                    prop_assert!(out.hit, "round {r}: file {f} missed");
                }
            }
        }
        let st = s.stats();
        prop_assert_eq!(st.misses, n_files as u64);
        s.check_invariants();
    }
}
