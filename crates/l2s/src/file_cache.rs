//! Whole-file LRU cache with de-replication-aware eviction.
//!
//! L2S caches entire files and accounts capacity in bytes. Its replacement
//! "behaves like local LRU … and tries to keep at least one copy of each
//! file in memory whenever possible" (§4.1): when a node must evict, it
//! prefers the oldest resident file that still has a copy in some *other*
//! node's memory, falling back to plain LRU when everything resident is a
//! last copy. The search from the LRU end is depth-bounded ("tries", not
//! "guarantees") so a pathological cache of all-last-copies stays O(1).
//!
//! Cluster-wide copy counts are owned by [`crate::dispatch::L2sSystem`] and
//! passed in at eviction time.

use ccm_core::lru::LruList;
use ccm_core::FileId;

/// How far from the LRU end the de-replication search looks for a
/// multi-copy victim before falling back to strict LRU.
pub const DEREPLICATION_SEARCH_DEPTH: usize = 64;

/// One node's whole-file cache.
#[derive(Debug, Clone)]
pub struct FileCache {
    capacity: u64,
    used: u64,
    lru: LruList<FileId>,
    sizes: std::sync::Arc<[u64]>,
}

impl FileCache {
    /// A cache of `capacity` bytes over files whose sizes are `sizes`
    /// (indexed by file id).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64, sizes: std::sync::Arc<[u64]>) -> FileCache {
        assert!(capacity > 0, "zero-capacity file cache");
        FileCache {
            capacity,
            used: 0,
            lru: LruList::new(),
            sizes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if no files are resident.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// True if `file` is resident.
    pub fn contains(&self, file: FileId) -> bool {
        self.lru.contains(file)
    }

    fn size_of(&self, file: FileId) -> u64 {
        // Zero-byte files still occupy a token byte so accounting moves.
        self.sizes[file.0 as usize].max(1)
    }

    /// Refresh `file`'s recency. Returns false if not resident.
    pub fn touch(&mut self, file: FileId, tick: u64) -> bool {
        self.lru.touch(file, tick)
    }

    /// True if `file` can ever fit (it may still require evictions).
    pub fn fits(&self, file: FileId) -> bool {
        self.size_of(file) <= self.capacity
    }

    /// Insert `file`, evicting as needed. `copy_count(f)` must return the
    /// *cluster-wide* number of in-memory copies of `f` (including this
    /// node's). Returns the evicted files, oldest first.
    ///
    /// Files larger than the whole cache are not inserted (they are served
    /// straight through) and yield no evictions.
    ///
    /// # Panics
    /// Panics if `file` is already resident.
    pub fn insert_with_evictions(
        &mut self,
        file: FileId,
        tick: u64,
        mut copy_count: impl FnMut(FileId) -> u32,
    ) -> Vec<FileId> {
        assert!(!self.contains(file), "insert of resident file {file:?}");
        let need = self.size_of(file);
        if need > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + need > self.capacity {
            let victim = self.pick_victim(&mut copy_count).expect("cache non-empty");
            self.remove(victim);
            evicted.push(victim);
        }
        self.lru.push_mru(file, tick);
        self.used += need;
        evicted
    }

    /// The de-replication victim: oldest multi-copy file within the search
    /// depth, else the oldest file.
    fn pick_victim(&self, copy_count: &mut impl FnMut(FileId) -> u32) -> Option<FileId> {
        let mut fallback = None;
        for (i, (f, _)) in self.lru.iter_oldest_first().enumerate() {
            if fallback.is_none() {
                fallback = Some(f);
            }
            if copy_count(f) >= 2 {
                return Some(f);
            }
            if i + 1 >= DEREPLICATION_SEARCH_DEPTH {
                break;
            }
        }
        fallback
    }

    /// Remove `file` (e.g. externally de-replicated). Returns true if it was
    /// resident.
    pub fn remove(&mut self, file: FileId) -> bool {
        if self.lru.remove(file).is_some() {
            self.used -= self.size_of(file);
            true
        } else {
            false
        }
    }

    /// Iterate resident files, oldest first.
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = FileId> + '_ {
        self.lru.iter_oldest_first().map(|(f, _)| f)
    }

    /// Structural invariants: byte accounting matches the resident set.
    pub fn check_invariants(&self) {
        self.lru.check_invariants();
        let total: u64 = self.lru.iter().map(|(f, _)| self.size_of(f)).sum();
        assert_eq!(total, self.used, "byte accounting drifted");
        assert!(self.used <= self.capacity, "over capacity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sizes(v: &[u64]) -> Arc<[u64]> {
        v.to_vec().into()
    }

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn insert_and_account_bytes() {
        let mut c = FileCache::new(100, sizes(&[40, 30, 50]));
        assert!(c.insert_with_evictions(f(0), 1, |_| 1).is_empty());
        assert!(c.insert_with_evictions(f(1), 2, |_| 1).is_empty());
        assert_eq!(c.used(), 70);
        assert_eq!(c.len(), 2);
        assert!(c.contains(f(0)));
        c.check_invariants();
    }

    #[test]
    fn lru_eviction_when_all_last_copies() {
        let mut c = FileCache::new(100, sizes(&[40, 30, 50]));
        c.insert_with_evictions(f(0), 1, |_| 1);
        c.insert_with_evictions(f(1), 2, |_| 1);
        // Inserting 50 bytes needs 20 freed: evicts f0 (oldest, last copy).
        let ev = c.insert_with_evictions(f(2), 3, |_| 1);
        assert_eq!(ev, vec![f(0)]);
        assert_eq!(c.used(), 80);
        c.check_invariants();
    }

    #[test]
    fn dereplication_prefers_multi_copy_victim() {
        let mut c = FileCache::new(100, sizes(&[40, 30, 50]));
        c.insert_with_evictions(f(0), 1, |_| 1);
        c.insert_with_evictions(f(1), 2, |_| 1);
        // f0 is oldest but is the last copy; f1 has 2 copies cluster-wide.
        let ev = c.insert_with_evictions(f(2), 3, |file| if file == f(1) { 2 } else { 1 });
        assert_eq!(ev, vec![f(1)], "de-replication evicts the duplicate");
        assert!(c.contains(f(0)));
        c.check_invariants();
    }

    #[test]
    fn multiple_evictions_until_room() {
        let mut c = FileCache::new(100, sizes(&[40, 30, 90]));
        c.insert_with_evictions(f(0), 1, |_| 1);
        c.insert_with_evictions(f(1), 2, |_| 1);
        let ev = c.insert_with_evictions(f(2), 3, |_| 1);
        assert_eq!(ev, vec![f(0), f(1)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 90);
    }

    #[test]
    fn oversized_file_is_not_cached() {
        let mut c = FileCache::new(100, sizes(&[400]));
        assert!(!c.fits(f(0)));
        let ev = c.insert_with_evictions(f(0), 1, |_| 1);
        assert!(ev.is_empty());
        assert!(!c.contains(f(0)));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mut c = FileCache::new(70, sizes(&[40, 30, 30]));
        c.insert_with_evictions(f(0), 1, |_| 1);
        c.insert_with_evictions(f(1), 2, |_| 1);
        assert!(c.touch(f(0), 3));
        // Now f1 is oldest.
        let ev = c.insert_with_evictions(f(2), 4, |_| 1);
        assert_eq!(ev, vec![f(1)]);
        assert!(c.contains(f(0)));
    }

    #[test]
    fn remove_frees_bytes() {
        let mut c = FileCache::new(100, sizes(&[60, 60]));
        c.insert_with_evictions(f(0), 1, |_| 1);
        assert!(c.remove(f(0)));
        assert!(!c.remove(f(0)));
        assert_eq!(c.used(), 0);
        assert!(c.insert_with_evictions(f(1), 2, |_| 1).is_empty());
    }

    #[test]
    fn zero_byte_files_account_one_token_byte() {
        let mut c = FileCache::new(10, sizes(&[0, 0]));
        c.insert_with_evictions(f(0), 1, |_| 1);
        assert_eq!(c.used(), 1);
        c.check_invariants();
    }

    #[test]
    fn search_depth_bounds_the_scan() {
        // 100 one-byte last-copy files, then a multi-copy file beyond the
        // search depth: fallback must still be plain LRU (oldest).
        let all: Vec<u64> = vec![1; 101];
        let mut c = FileCache::new(100, sizes(&all));
        for i in 0..100 {
            c.insert_with_evictions(f(i), i as u64 + 1, |_| 1);
        }
        // File 99 (youngest) is multi-copy, but it is 100 entries from the
        // tail — outside the depth-64 window.
        let ev = c.insert_with_evictions(f(100), 1_000, |file| if file == f(99) { 2 } else { 1 });
        assert_eq!(ev, vec![f(0)], "fell back to strict LRU");
    }
}
