//! Content- and load-aware request distribution.
//!
//! [`L2sSystem`] is the decision core of the baseline server: given "request
//! for `file` arrived at `initial` node", it picks the serving node
//! (migrating requests for a file to its assigned node, replicating under
//! load), performs the whole-file cache access there, and reports what
//! happened so the simulator can charge parse/hand-off/disk/serve times.
//!
//! The load signal is the number of outstanding requests per node, maintained
//! by the caller via [`L2sSystem::begin_request`] / [`L2sSystem::end_request`]
//! — the same signal LARD and L2S use. Replication triggers when the serving
//! node is above the high-water mark while some node sits below the low-water
//! mark; routing de-replicates again when the whole serving set has gone
//! quiet.

use crate::file_cache::FileCache;
use crate::router::L2sRouter;
use ccm_core::{FileId, NodeId};
use std::sync::Arc;

/// Configuration of the baseline server.
#[derive(Debug, Clone)]
pub struct L2sConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Per-node memory for the whole-file cache, bytes.
    pub capacity_bytes: u64,
    /// Use TCP hand-off (true, the paper's L2S) or front-node relay (false,
    /// the hand-off ablation).
    pub handoff: bool,
    /// A node below this many outstanding requests is a replication target.
    pub t_low: u32,
    /// A serving node above this many outstanding requests is overloaded.
    pub t_high: u32,
    /// Maximum serving replicas per file.
    pub max_replicas: u16,
}

impl L2sConfig {
    /// The paper's configuration for a cluster of `nodes` nodes with
    /// `capacity_bytes` of cache per node.
    pub fn paper(nodes: usize, capacity_bytes: u64) -> L2sConfig {
        L2sConfig {
            nodes,
            capacity_bytes,
            handoff: true,
            // LARD's published watermarks; sensible for the 32-clients/node
            // closed loop the experiments run.
            t_low: 25,
            t_high: 65,
            max_replicas: 4,
        }
    }
}

/// Counters for the baseline server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2sStats {
    /// Requests whose file was cached at the serving node.
    pub hits: u64,
    /// Requests that faulted the file in from the (local) disk.
    pub misses: u64,
    /// Requests moved off their arrival node.
    pub handoffs: u64,
    /// Serving-set growths under load.
    pub replications: u64,
    /// Serving-set shrinks when load subsided.
    pub dereplications: u64,
}

impl L2sStats {
    /// Total requests dispatched.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// In-memory hit rate.
    pub fn hit_rate(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// What the simulator must charge for one dispatched request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2sOutcome {
    /// The node that serves the request.
    pub target: NodeId,
    /// Set when the request was moved off its arrival node (charge hand-off
    /// or relay, per [`L2sConfig::handoff`]).
    pub moved_from: Option<NodeId>,
    /// True if the file was in the serving node's memory.
    pub hit: bool,
    /// Files the serving node evicted to make room (memory bookkeeping only;
    /// evictions are free of I/O).
    pub evicted: Vec<FileId>,
}

/// The baseline server's cluster-wide state: the routing core
/// ([`L2sRouter`]) plus per-node whole-file caches.
pub struct L2sSystem {
    cfg: L2sConfig,
    router: L2sRouter,
    caches: Vec<FileCache>,
    /// Cluster-wide in-memory copy count per file.
    copies: Vec<u32>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl L2sSystem {
    /// Build the server over files with the given sizes (indexed by id).
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(cfg: L2sConfig, sizes: Arc<[u64]>) -> L2sSystem {
        assert!(cfg.nodes > 0, "empty cluster");
        let caches = (0..cfg.nodes)
            .map(|_| FileCache::new(cfg.capacity_bytes, sizes.clone()))
            .collect();
        let router = L2sRouter::new(cfg.nodes, cfg.t_low, cfg.t_high, cfg.max_replicas);
        L2sSystem {
            cfg,
            router,
            caches,
            copies: vec![0; sizes.len()],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &L2sConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> L2sStats {
        let r = self.router.stats();
        L2sStats {
            hits: self.hits,
            misses: self.misses,
            handoffs: r.handoffs,
            replications: r.replications,
            dereplications: r.dereplications,
        }
    }

    /// A request was dispatched to `node` and is now in flight there.
    pub fn begin_request(&mut self, node: NodeId) {
        self.router.begin_request(node);
    }

    /// A request at `node` completed.
    pub fn end_request(&mut self, node: NodeId) {
        self.router.end_request(node);
    }

    /// Current outstanding-request count at `node`.
    pub fn load(&self, node: NodeId) -> u32 {
        self.router.load(node)
    }

    /// Cluster-wide in-memory copies of `file`.
    pub fn copy_count(&self, file: FileId) -> u32 {
        self.copies[file.0 as usize]
    }

    /// One node's cache (read-only view).
    pub fn cache(&self, node: NodeId) -> &FileCache {
        &self.caches[node.index()]
    }

    /// Dispatch a request for `file` arriving (via round-robin DNS) at
    /// `initial`, and perform the cache access at the chosen serving node.
    ///
    /// The caller is responsible for the [`L2sSystem::begin_request`] /
    /// [`L2sSystem::end_request`] bracket around the request's lifetime.
    pub fn dispatch(&mut self, initial: NodeId, file: FileId) -> L2sOutcome {
        self.tick += 1;
        let tick = self.tick;

        // Routing — content-aware assignment, watermark replication /
        // de-replication, hand-off accounting — lives in the shared core.
        let decision = self.router.route(initial, file);
        let target = decision.target;
        let moved_from = decision.moved_from;

        // Whole-file cache access at the serving node.
        let t = target.index();
        let hit = self.caches[t].touch(file, tick);
        let mut evicted = Vec::new();
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if self.caches[t].fits(file) {
                let copies = &self.copies;
                evicted =
                    self.caches[t].insert_with_evictions(file, tick, |f| copies[f.0 as usize]);
                for &e in &evicted {
                    self.copies[e.0 as usize] -= 1;
                }
                self.copies[file.0 as usize] += 1;
            }
        }

        L2sOutcome {
            target,
            moved_from,
            hit,
            evicted,
        }
    }

    /// Full-state invariant check (tests): copy counts match the caches.
    pub fn check_invariants(&self) {
        for c in &self.caches {
            c.check_invariants();
        }
        let mut counts = vec![0u32; self.copies.len()];
        for c in &self.caches {
            for f in c.iter_oldest_first() {
                counts[f.0 as usize] += 1;
            }
        }
        assert_eq!(counts, self.copies, "copy counts drifted");
        self.router.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    fn system(nodes: usize, cap: u64, sizes: &[u64]) -> L2sSystem {
        L2sSystem::new(L2sConfig::paper(nodes, cap), sizes.to_vec().into())
    }

    #[test]
    fn first_touch_assigns_and_misses() {
        let mut s = system(4, 1000, &[100; 8]);
        let out = s.dispatch(NodeId(2), f(0));
        assert!(!out.hit);
        assert!(out.evicted.is_empty());
        // Least-loaded with all-zero loads is node 0.
        assert_eq!(out.target, NodeId(0));
        assert_eq!(out.moved_from, Some(NodeId(2)));
        s.check_invariants();
    }

    #[test]
    fn requests_migrate_to_the_assigned_node() {
        let mut s = system(4, 1000, &[100; 8]);
        let first = s.dispatch(NodeId(1), f(3));
        for arrival in 0..4u16 {
            let out = s.dispatch(NodeId(arrival), f(3));
            assert_eq!(out.target, first.target, "content-aware migration");
            assert!(out.hit, "one copy, always warm");
        }
        assert_eq!(s.copy_count(f(3)), 1, "only one copy in cluster memory");
        s.check_invariants();
    }

    #[test]
    fn arrival_at_serving_node_is_not_a_handoff() {
        let mut s = system(2, 1000, &[100]);
        let out1 = s.dispatch(NodeId(0), f(0));
        let out2 = s.dispatch(out1.target, f(0));
        assert_eq!(out2.moved_from, None);
    }

    #[test]
    fn overload_triggers_replication() {
        let mut s = system(2, 1000, &[100; 4]);
        let primary = s.dispatch(NodeId(0), f(0)).target;
        // Pile outstanding requests onto the primary.
        for _ in 0..70 {
            s.begin_request(primary);
        }
        let out = s.dispatch(NodeId(0), f(0));
        assert_ne!(out.target, primary, "replicated under load");
        assert!(!out.hit, "replica faults the file in locally");
        assert_eq!(s.copy_count(f(0)), 2);
        assert_eq!(s.stats().replications, 1);
        s.check_invariants();
    }

    #[test]
    fn quiet_set_dereplicates_routing() {
        let mut s = system(2, 1000, &[100; 4]);
        let primary = s.dispatch(NodeId(0), f(0)).target;
        for _ in 0..70 {
            s.begin_request(primary);
        }
        s.dispatch(NodeId(0), f(0)); // replicates
        for _ in 0..70 {
            s.end_request(primary);
        }
        // Set is now quiet: next dispatch shrinks routing back to one node.
        let out = s.dispatch(NodeId(1), f(0));
        assert_eq!(s.stats().dereplications, 1);
        assert_eq!(out.target, primary);
        s.check_invariants();
    }

    #[test]
    fn eviction_updates_copy_counts() {
        // Cache fits one 100-byte file per node.
        let mut s = system(1, 100, &[100, 100]);
        s.dispatch(NodeId(0), f(0));
        let out = s.dispatch(NodeId(0), f(1));
        assert_eq!(out.evicted, vec![f(0)]);
        assert_eq!(s.copy_count(f(0)), 0);
        assert_eq!(s.copy_count(f(1)), 1);
        s.check_invariants();
    }

    #[test]
    fn oversized_files_serve_uncached() {
        let mut s = system(1, 100, &[500]);
        let a = s.dispatch(NodeId(0), f(0));
        let b = s.dispatch(NodeId(0), f(0));
        assert!(!a.hit && !b.hit, "never cached");
        assert_eq!(s.copy_count(f(0)), 0);
    }

    #[test]
    fn load_bracket_round_trips() {
        let mut s = system(2, 100, &[10]);
        s.begin_request(NodeId(1));
        s.begin_request(NodeId(1));
        assert_eq!(s.load(NodeId(1)), 2);
        s.end_request(NodeId(1));
        assert_eq!(s.load(NodeId(1)), 1);
    }

    #[test]
    fn stats_add_up() {
        let mut s = system(2, 10_000, &[100; 16]);
        for i in 0..50u32 {
            s.dispatch(NodeId((i % 2) as u16), f(i % 16));
        }
        let st = s.stats();
        assert_eq!(st.requests(), 50);
        assert!(st.hit_rate() > 0.5, "small working set should mostly hit");
    }
}
