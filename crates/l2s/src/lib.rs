//! # ccm-l2s — the locality-conscious baseline server
//!
//! The paper compares its cooperative caching middleware against L2S, "a
//! highly optimized locality-conscious server that uses content- and
//! load-aware distribution" (Bianchini & Carrera; §4.1). This crate
//! reimplements L2S from its published description:
//!
//! * **Content-aware distribution** — "tries to migrate all requests for a
//!   particular file to a single node so that only one copy of each file is
//!   kept in cluster memory". First-touch assignment to the least-loaded
//!   node; later requests follow the assignment.
//! * **Load-aware replication** — "if a node becomes overloaded, however,
//!   \[it\] will replicate a subset of the files, sacrificing memory efficiency
//!   for load balancing". When the serving node's outstanding-request count
//!   crosses a high-water mark while another node sits below the low-water
//!   mark, the file's serving set grows onto the least-loaded node.
//! * **Whole-file caching with de-replication** — "uses whole files as the
//!   caching granularity, employing a custom de-replication algorithm instead
//!   of block replacement. This algorithm behaves like local LRU … and tries
//!   to keep at least one copy of each file in memory whenever possible":
//!   eviction prefers the oldest file that still has another in-memory copy.
//! * **Full disk replication** — L2S "assumes files are replicated
//!   everywhere" (§4.1), so its disk reads are always local.
//! * **TCP hand-off** — requests arriving at a non-serving node are handed
//!   off at a fixed CPU cost (the ≈ 7 % effect the paper cites); toggleable
//!   for the hand-off ablation.
//!
//! [`dispatch::L2sSystem`] is, like `ccm-core`'s [`ClusterCache`], a pure
//! state machine: it decides *what happens*; the simulator charges the time.
//!
//! [`ClusterCache`]: ccm_core::ClusterCache

#![warn(missing_docs)]

pub mod dispatch;
pub mod file_cache;
pub mod router;

pub use dispatch::{L2sConfig, L2sOutcome, L2sStats, L2sSystem};
pub use file_cache::FileCache;
pub use router::{L2sRouter, RouteDecision, RouterStats};
