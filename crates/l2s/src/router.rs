//! The L2S routing core, split from the cache so the live front tier can
//! run the *same* content-aware policy over real sockets.
//!
//! [`L2sRouter`] owns exactly the distribution state — per-file serving
//! sets, per-node outstanding-request loads, and the replication /
//! de-replication watermarks — and none of the cache. The simulator's
//! [`L2sSystem`](crate::L2sSystem) embeds one and adds whole-file caches;
//! `ccm-front`'s content-aware dispatch policy embeds one and lets the
//! backend (CCM or live L2S) do its own caching. Both therefore make
//! bit-identical routing decisions for the same request sequence.

use ccm_core::{FileId, NodeId};
use simcore::FxHashMap;

/// Routing-only counters (the cache-facing hit/miss counters live with
/// whoever owns the caches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests moved off their arrival node.
    pub handoffs: u64,
    /// Serving-set growths under load.
    pub replications: u64,
    /// Serving-set shrinks when load subsided.
    pub dereplications: u64,
}

/// One routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The node that should serve the request.
    pub target: NodeId,
    /// Set when the request was moved off its arrival node.
    pub moved_from: Option<NodeId>,
    /// True if this decision grew the file's serving set (the target is a
    /// fresh replica and will fault the file in locally).
    pub replicated: bool,
}

/// Content- and load-aware request routing: first-touch assignment to the
/// least-loaded node, migration of later requests to the assignment, and
/// watermark-driven replication / de-replication. See the crate docs for
/// the published behavior this implements.
pub struct L2sRouter {
    nodes: usize,
    t_low: u32,
    t_high: u32,
    max_replicas: u16,
    /// Serving set per file; element 0 is the primary assignment.
    serving: FxHashMap<FileId, Vec<NodeId>>,
    /// Outstanding requests per node (caller-maintained).
    loads: Vec<u32>,
    stats: RouterStats,
}

impl L2sRouter {
    /// A router for `nodes` nodes with the given watermarks.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(nodes: usize, t_low: u32, t_high: u32, max_replicas: u16) -> L2sRouter {
        assert!(nodes > 0, "empty cluster");
        L2sRouter {
            nodes,
            t_low,
            t_high,
            max_replicas,
            serving: FxHashMap::default(),
            loads: vec![0; nodes],
            stats: RouterStats::default(),
        }
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// A request was dispatched to `node` and is now in flight there.
    pub fn begin_request(&mut self, node: NodeId) {
        self.loads[node.index()] += 1;
    }

    /// A request at `node` completed.
    pub fn end_request(&mut self, node: NodeId) {
        debug_assert!(self.loads[node.index()] > 0, "load underflow");
        self.loads[node.index()] -= 1;
    }

    /// Current outstanding-request count at `node`.
    pub fn load(&self, node: NodeId) -> u32 {
        self.loads[node.index()]
    }

    /// The file's current serving set, if it has been assigned.
    pub fn serving_set(&self, file: FileId) -> Option<&[NodeId]> {
        self.serving.get(&file).map(|v| v.as_slice())
    }

    fn least_loaded(&self) -> NodeId {
        let mut best = 0usize;
        for i in 1..self.loads.len() {
            if self.loads[i] < self.loads[best] {
                best = i;
            }
        }
        NodeId(best as u16)
    }

    /// Route a request for `file` arriving (via round-robin DNS) at
    /// `initial`.
    ///
    /// The caller is responsible for the [`L2sRouter::begin_request`] /
    /// [`L2sRouter::end_request`] bracket around the request's lifetime.
    pub fn route(&mut self, initial: NodeId, file: FileId) -> RouteDecision {
        // Content-aware assignment: first touch goes to the least-loaded
        // node.
        if !self.serving.contains_key(&file) {
            let primary = self.least_loaded();
            self.serving.insert(file, vec![primary]);
        }

        // De-replicate routing when the whole serving set has gone quiet.
        {
            let set = self.serving.get_mut(&file).expect("just inserted");
            if set.len() > 1 {
                let t_low = self.t_low;
                let max_load = set.iter().map(|n| self.loads[n.index()]).max().unwrap_or(0);
                if max_load < t_low {
                    set.pop();
                    self.stats.dereplications += 1;
                }
            }
        }

        // Pick the least-loaded member of the serving set.
        let mut target = {
            let set = &self.serving[&file];
            *set.iter()
                .min_by_key(|n| (self.loads[n.index()], n.0))
                .expect("serving set non-empty")
        };

        // Load-aware replication: grow the set if the target is overloaded
        // while someone else is idle.
        let mut replicated = false;
        if self.loads[target.index()] >= self.t_high {
            let candidate = self.least_loaded();
            let set = self.serving.get_mut(&file).expect("present");
            if self.loads[candidate.index()] <= self.t_low
                && (set.len() as u16) < self.max_replicas
                && !set.contains(&candidate)
            {
                set.push(candidate);
                self.stats.replications += 1;
                target = candidate;
                replicated = true;
            }
        }

        let moved_from = (target != initial).then_some(initial);
        if moved_from.is_some() {
            self.stats.handoffs += 1;
        }

        RouteDecision {
            target,
            moved_from,
            replicated,
        }
    }

    /// Invariant check (tests): serving sets stay legal.
    pub fn check_invariants(&self) {
        for (file, set) in &self.serving {
            assert!(!set.is_empty(), "empty serving set for {file:?}");
            assert!(
                set.len() <= self.max_replicas as usize,
                "serving set exceeds max replicas"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_goes_to_least_loaded() {
        let mut r = L2sRouter::new(4, 25, 65, 4);
        r.begin_request(NodeId(0));
        r.begin_request(NodeId(1));
        let d = r.route(NodeId(0), FileId(9));
        assert_eq!(d.target, NodeId(2), "first idle node wins the assignment");
        assert_eq!(d.moved_from, Some(NodeId(0)));
        assert!(!d.replicated);
        assert_eq!(r.serving_set(FileId(9)), Some(&[NodeId(2)][..]));
    }

    #[test]
    fn later_requests_follow_the_assignment() {
        let mut r = L2sRouter::new(4, 25, 65, 4);
        let first = r.route(NodeId(3), FileId(1)).target;
        for arrival in 0..4u16 {
            assert_eq!(r.route(NodeId(arrival), FileId(1)).target, first);
        }
        assert_eq!(r.stats().handoffs, 1 + 3, "only arrivals at `first` stay");
    }

    #[test]
    fn replication_flag_marks_fresh_replicas() {
        let mut r = L2sRouter::new(2, 25, 65, 4);
        let primary = r.route(NodeId(0), FileId(0)).target;
        for _ in 0..70 {
            r.begin_request(primary);
        }
        let d = r.route(NodeId(0), FileId(0));
        assert_ne!(d.target, primary);
        assert!(d.replicated);
        assert_eq!(r.stats().replications, 1);
        // Quiet again: routing shrinks back.
        for _ in 0..70 {
            r.end_request(primary);
        }
        let d = r.route(NodeId(1), FileId(0));
        assert_eq!(d.target, primary);
        assert_eq!(r.stats().dereplications, 1);
        r.check_invariants();
    }
}
