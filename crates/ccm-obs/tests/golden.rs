//! Golden tests for the Prometheus text exposition: the rendered page is
//! part of the observable surface (scraped by `ccmtop`, curl, and any real
//! Prometheus), so its exact shape is pinned here. A formatting change —
//! bucket grid, label ordering, HELP/TYPE placement — must show up as a
//! deliberate diff to this file, not as a silent scrape break.

#![cfg(not(feature = "obs-off"))]

use ccm_obs::prom::{parse, render, LE_BOUNDS_NS};
use ccm_obs::Registry;

/// The exact page for a small registry covering all three metric kinds.
///
/// The two histogram samples pin the fine→coarse bucket condensation:
/// 5µs lives in fine bucket [4864, 5120), whose whole range first fits
/// under the 10µs bound; 2ms lives in [1966080, 2031616), which straddles
/// the 1ms..10ms decade and is therefore counted conservatively at 10ms.
#[test]
fn rendered_page_matches_golden() {
    let r = Registry::new();
    r.counter("demo_requests_total", "demo requests", &[("node", "0")])
        .add(7);
    r.counter("demo_requests_total", "demo requests", &[("node", "1")])
        .add(2);
    r.gauge("demo_inflight", "requests in flight", &[]).set(-3);
    let h = r.histogram("demo_latency_ns", "demo latency", &[("class", "hit")]);
    h.record(5_000);
    h.record(2_000_000);

    let golden = "\
# HELP demo_inflight requests in flight
# TYPE demo_inflight gauge
demo_inflight -3
# HELP demo_latency_ns demo latency
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{class=\"hit\",le=\"1000\"} 0
demo_latency_ns_bucket{class=\"hit\",le=\"10000\"} 1
demo_latency_ns_bucket{class=\"hit\",le=\"100000\"} 1
demo_latency_ns_bucket{class=\"hit\",le=\"1000000\"} 1
demo_latency_ns_bucket{class=\"hit\",le=\"10000000\"} 2
demo_latency_ns_bucket{class=\"hit\",le=\"100000000\"} 2
demo_latency_ns_bucket{class=\"hit\",le=\"1000000000\"} 2
demo_latency_ns_bucket{class=\"hit\",le=\"10000000000\"} 2
demo_latency_ns_bucket{class=\"hit\",le=\"+Inf\"} 2
demo_latency_ns_sum{class=\"hit\"} 2005000
demo_latency_ns_count{class=\"hit\"} 2
# HELP demo_requests_total demo requests
# TYPE demo_requests_total counter
demo_requests_total{node=\"0\"} 7
demo_requests_total{node=\"1\"} 2
";
    assert_eq!(render(&r.snapshot()), golden);

    // And the page must round-trip through the scrape-side parser.
    let samples = parse(golden).expect("golden page must parse");
    assert_eq!(samples.len(), 14);
}

/// Rendering is a pure function of the snapshot: registration order must
/// not leak into the page.
#[test]
fn render_is_independent_of_registration_order() {
    let build = |flip: bool| {
        let r = Registry::new();
        let nodes: [&str; 2] = if flip { ["1", "0"] } else { ["0", "1"] };
        for n in nodes {
            r.counter("demo_requests_total", "demo requests", &[("node", n)])
                .inc();
        }
        r.gauge("demo_inflight", "requests in flight", &[]).set(4);
        render(&r.snapshot())
    };
    assert_eq!(build(false), build(true));
}

/// An empty histogram still renders its full bucket grid (all zero), so a
/// scraper sees the family shape before the first sample arrives.
#[test]
fn empty_histogram_renders_full_zero_grid() {
    let r = Registry::new();
    r.histogram("quiet_ns", "never recorded", &[]);
    let text = render(&r.snapshot());
    let samples = parse(&text).expect("parse");
    let buckets: Vec<&ccm_obs::prom::Sample> = samples
        .iter()
        .filter(|s| s.name == "quiet_ns_bucket")
        .collect();
    assert_eq!(buckets.len(), LE_BOUNDS_NS.len() + 1, "decade grid + +Inf");
    assert!(buckets.iter().all(|s| s.value == 0.0));
    let count = samples.iter().find(|s| s.name == "quiet_ns_count").unwrap();
    assert_eq!(count.value, 0.0);
}

/// Edge cases of the conservative condensation. A zero-valued sample fits
/// under the smallest bound. A sample exactly *at* a coarse bound lands in
/// a fine bucket extending past it, so it is deferred to the next decade:
/// coarse buckets may undercount near their boundary but never overcount,
/// and `+Inf` is always exact.
#[test]
fn boundary_samples_are_counted_conservatively() {
    let r = Registry::new();
    let h = r.histogram("edge_ns", "edges", &[]);
    h.record(0);
    h.record(1_000); // exactly the first coarse bound
    let samples = parse(&render(&r.snapshot())).expect("parse");
    let at = |le: &str| {
        samples
            .iter()
            .find(|s| s.name == "edge_ns_bucket" && s.label("le") == Some(le))
            .unwrap_or_else(|| panic!("missing le={le}"))
            .value
    };
    assert_eq!(at("1000"), 1.0, "only the zero sample is provably ≤ 1µs");
    assert_eq!(at("10000"), 2.0, "the 1µs sample surfaces one decade up");
    assert_eq!(at("+Inf"), 2.0);
}
