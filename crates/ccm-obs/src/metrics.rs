//! The lock-free metrics core: counters, gauges, log-bucketed latency
//! histograms, and the [`Registry`] that owns their identities.
//!
//! Handles are cheap `Arc`s over atomics, created once at component startup
//! and then updated from the hot path without any lock: a counter increment
//! is one relaxed atomic add, a histogram record is three. The registry is
//! only locked at registration and scrape time, never per event.
//!
//! With the `obs-off` feature, gauges, histograms, stopwatches, and the
//! registry's bookkeeping compile to nothing — the overhead-guard bench
//! builds against it to measure the instrumentation delta. Counters stay
//! live even then: several are semantically load-bearing (the runtime's
//! store-fallback count feeds `CacheStats`), and their cost is exactly the
//! one relaxed atomic increment the design budgets for the hot path.

use simcore::sync::Mutex;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::AtomicI64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per power-of-two octave (same scheme as
/// `simcore::Histogram`): 16 gives ≤ ~6% relative quantile error.
const SUBBUCKET_BITS: u32 = 4;
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS;

/// Fixed bucket count. Indices saturate into the last bucket, which with 16
/// sub-buckets per octave covers values up to ~2^35 ns (≈ 34 s) exactly and
/// lumps everything larger together.
pub const HISTOGRAM_BUCKETS: usize = 512;

/// Fine-bucket index of `value` (monotonic, saturating).
#[cfg_attr(feature = "obs-off", allow(dead_code))]
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    let idx = if value < SUBBUCKETS {
        value as usize
    } else {
        let octave = 63 - value.leading_zeros() as u64;
        let sub = (value >> (octave - SUBBUCKET_BITS as u64)) - SUBBUCKETS;
        ((octave - SUBBUCKET_BITS as u64 + 1) * SUBBUCKETS + sub) as usize
    };
    idx.min(HISTOGRAM_BUCKETS - 1)
}

/// Lower bound of the value range covered by fine bucket `idx`.
#[inline]
pub(crate) fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBBUCKETS {
        return idx;
    }
    let octave = idx / SUBBUCKETS + SUBBUCKET_BITS as u64 - 1;
    let sub = idx % SUBBUCKETS;
    (SUBBUCKETS + sub) << (octave - SUBBUCKET_BITS as u64)
}

/// Smallest value that saturates into the final bucket (diagnostics/tests).
pub fn saturation_threshold() -> u64 {
    bucket_low(HISTOGRAM_BUCKETS - 1)
}

/// A monotonically increasing counter. One relaxed atomic add per event.
///
/// Counters are live in every build, including `obs-off` — see the module
/// docs for why.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (starts at zero).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (occupancies, depths, link states).
#[cfg(not(feature = "obs-off"))]
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

/// A settable signed gauge (`obs-off`: compiled to nothing).
#[cfg(feature = "obs-off")]
#[derive(Clone, Debug, Default)]
pub struct Gauge;

#[cfg(not(feature = "obs-off"))]
impl Gauge {
    /// A gauge not attached to any registry (starts at zero).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the gauge by `d` (may be negative).
    #[inline]
    pub fn adjust(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "obs-off")]
impl Gauge {
    /// A gauge not attached to any registry.
    pub fn new() -> Gauge {
        Gauge
    }

    /// No-op (`obs-off`).
    #[inline]
    pub fn set(&self, _v: i64) {}

    /// No-op (`obs-off`).
    #[inline]
    pub fn adjust(&self, _d: i64) {}

    /// Always zero (`obs-off`).
    #[inline]
    pub fn get(&self) -> i64 {
        0
    }
}

#[cfg(not(feature = "obs-off"))]
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>, // HISTOGRAM_BUCKETS long
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket, log-scale histogram recordable from any thread: three
/// relaxed atomic adds per sample, no allocation, no lock.
#[cfg(not(feature = "obs-off"))]
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// A fixed-bucket, log-scale histogram (`obs-off`: compiled to nothing).
#[cfg(feature = "obs-off")]
#[derive(Clone, Debug, Default)]
pub struct Histogram;

#[cfg(not(feature = "obs-off"))]
impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCore {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

#[cfg(not(feature = "obs-off"))]
impl Histogram {
    /// A histogram not attached to any registry (empty).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one value (nanoseconds, by convention).
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

#[cfg(feature = "obs-off")]
impl Histogram {
    /// A histogram not attached to any registry.
    pub fn new() -> Histogram {
        Histogram
    }

    /// No-op (`obs-off`).
    #[inline]
    pub fn record(&self, _value: u64) {}

    /// Always empty (`obs-off`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

/// A started latency measurement; `stop` records the elapsed nanoseconds.
/// Under `obs-off` no clock is read at all.
#[cfg(not(feature = "obs-off"))]
#[derive(Debug)]
pub struct Stopwatch(std::time::Instant);

/// A started latency measurement (`obs-off`: compiled to nothing).
#[cfg(feature = "obs-off")]
#[derive(Debug)]
pub struct Stopwatch;

#[cfg(not(feature = "obs-off"))]
impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch(std::time::Instant::now())
    }

    /// Record the elapsed nanoseconds into `h` and return them.
    #[inline]
    pub fn stop(self, h: &Histogram) -> u64 {
        let ns = self.0.elapsed().as_nanos() as u64;
        h.record(ns);
        ns
    }
}

#[cfg(feature = "obs-off")]
impl Stopwatch {
    /// Start timing (`obs-off`: reads no clock).
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch
    }

    /// No-op; returns zero (`obs-off`).
    #[inline]
    pub fn stop(self, _h: &Histogram) -> u64 {
        0
    }
}

/// A point-in-time copy of a [`Histogram`]'s distribution. Plain data:
/// mergeable across nodes, queryable for quantiles, serializable by the
/// exposition layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Fine bucket occupancy ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded values (saturating only at u64 range).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile as the lower bound of the bucket holding
    /// that rank (0 when empty; the final bucket also absorbs saturated
    /// samples, so its lower bound is the largest answer possible).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_low(idx);
            }
        }
        bucket_low(HISTOGRAM_BUCKETS - 1)
    }

    /// Merge another snapshot into this one (e.g. per-node distributions
    /// into a cluster-wide one).
    ///
    /// # Panics
    /// Panics if the bucket layouts differ (cannot happen between snapshots
    /// from this crate: the layout is a compile-time constant).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket layouts differ"
        );
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The value read from one metric at scrape time.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(i64),
    /// Latency/size distribution.
    Histogram(HistogramSnapshot),
}

/// One metric with its identity, read at scrape time.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (Prometheus conventions: `ccm_<area>_<what>`,
    /// counters suffixed `_total`, values in base units named in the
    /// suffix, e.g. `_ns`).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: Value,
}

/// A consistent scrape of a whole registry, sorted by `(name, labels)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All registered metrics.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// The sorted, deduplicated set of family names (diagnostics; parity
    /// tests compare these across transport backends).
    pub fn family_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.metrics.iter().map(|m| m.name.clone()).collect();
        names.dedup();
        names
    }

    /// Find one metric by family name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Sum every counter in the family `name` (0 if absent).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match m.value {
                Value::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Sum the counters in family `name` whose label set contains
    /// `key=value` (0 if none match). This is the per-class aggregation run
    /// reports use: e.g. all nodes' `ccm_rt_reads_total{class="remote"}`
    /// series folded into one number.
    pub fn counter_sum_where(&self, name: &str, key: &str, value: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name && m.labels.iter().any(|(k, v)| k == key && v == value))
            .filter_map(|m| match m.value {
                Value::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// Merge every histogram in family `name` whose label set contains
    /// `key=value` into one distribution (empty if none match) — per-node
    /// latency series folded into the cluster-wide distribution a run
    /// report quotes quantiles from.
    pub fn histogram_merged_where(&self, name: &str, key: &str, value: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for m in self
            .metrics
            .iter()
            .filter(|m| m.name == name && m.labels.iter().any(|(k, v)| k == key && v == value))
        {
            if let Value::Histogram(h) = &m.value {
                merged.merge(h);
            }
        }
        merged
    }
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// The metric registry: owns metric identities, hands out update handles,
/// and produces [`Snapshot`]s for exposition. Cheap to clone (shared
/// interior); one registry per process or per cluster is the intended
/// shape, with components labeling their series (`node`, `peer`, `class`).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} metrics)", self.inner.lock().len())
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    l
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels = sorted_labels(labels);
        let mut entries = self.inner.lock();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            let handle = match &e.handle {
                Handle::Counter(c) => Handle::Counter(c.clone()),
                Handle::Gauge(g) => Handle::Gauge(g.clone()),
                Handle::Histogram(h) => Handle::Histogram(h.clone()),
            };
            let wanted = make();
            assert_eq!(
                handle.kind(),
                wanted.kind(),
                "metric {name} re-registered as a different type"
            );
            return handle;
        }
        let handle = make();
        let clone = match &handle {
            Handle::Counter(c) => Handle::Counter(c.clone()),
            Handle::Gauge(g) => Handle::Gauge(g.clone()),
            Handle::Histogram(h) => Handle::Histogram(h.clone()),
        };
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            handle: clone,
        });
        handle
    }

    /// Register (or re-fetch) a counter.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as another type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Register (or re-fetch) a gauge.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as another type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Register (or re-fetch) a histogram.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as another type.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, || Handle::Histogram(Histogram::new())) {
            Handle::Histogram(h) => h,
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Read every metric. Sorted by `(name, labels)` so the output is
    /// deterministic regardless of registration order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.inner.lock();
        let mut metrics: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.handle {
                    Handle::Counter(c) => Value::Counter(c.get()),
                    Handle::Gauge(g) => Value::Gauge(g.get()),
                    Handle::Histogram(h) => Value::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { metrics }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let r = Registry::new();
        let c = r.counter("x_total", "x", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.metrics[0].value, Value::Counter(5));
    }

    #[test]
    fn reregistration_returns_the_same_series() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("node", "0")]);
        let b = r.counter("x_total", "x", &[("node", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().metrics.len(), 1);
        // A different label set is a different series.
        let c = r.counter("x_total", "x", &[("node", "1")]);
        c.inc();
        assert_eq!(r.snapshot().metrics.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "x", &[]);
        let _ = r.gauge("x", "x", &[]);
    }

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        g.set(7);
        g.adjust(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn snapshot_is_sorted_deterministically() {
        let r = Registry::new();
        r.counter("b_total", "b", &[]).inc();
        r.counter("a_total", "a", &[("node", "1")]).inc();
        r.counter("a_total", "a", &[("node", "0")]).inc();
        let names: Vec<(String, Vec<(String, String)>)> = r
            .snapshot()
            .metrics
            .into_iter()
            .map(|m| (m.name, m.labels))
            .collect();
        assert_eq!(names[0].0, "a_total");
        assert_eq!(names[0].1, vec![("node".to_string(), "0".to_string())]);
        assert_eq!(names[1].1, vec![("node".to_string(), "1".to_string())]);
        assert_eq!(names[2].0, "b_total");
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let med = s.quantile(0.5) as f64;
        assert!((med - 500.0).abs() / 500.0 < 0.07, "median={med}");
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn filtered_sums_and_merges() {
        let r = Registry::new();
        r.counter("reads_total", "r", &[("node", "0"), ("class", "local")])
            .add(3);
        r.counter("reads_total", "r", &[("node", "1"), ("class", "local")])
            .add(4);
        r.counter("reads_total", "r", &[("node", "0"), ("class", "remote")])
            .add(5);
        let snap = r.snapshot();
        assert_eq!(snap.counter_sum_where("reads_total", "class", "local"), 7);
        assert_eq!(snap.counter_sum_where("reads_total", "class", "remote"), 5);
        assert_eq!(snap.counter_sum_where("reads_total", "class", "nope"), 0);
        assert_eq!(snap.counter_sum("reads_total"), 12);

        let h0 = r.histogram("lat_ns", "l", &[("node", "0"), ("phase", "measure")]);
        let h1 = r.histogram("lat_ns", "l", &[("node", "1"), ("phase", "measure")]);
        h0.record(10);
        h0.record(20);
        h1.record(30);
        let merged = r
            .snapshot()
            .histogram_merged_where("lat_ns", "phase", "measure");
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum, 60);
    }

    #[test]
    fn bucket_index_is_monotonic_and_saturates() {
        let mut last = 0;
        for v in 0..200_000u64 {
            let i = bucket_index(v);
            assert!(i >= last);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(saturation_threshold()), HISTOGRAM_BUCKETS - 1);
    }
}
