//! Prometheus text exposition (format version 0.0.4) and the minimal
//! parser `ccmtop` uses to read it back.
//!
//! Rendering works from a [`Snapshot`], so a scrape is one registry read
//! plus string formatting — no locks held across I/O. Histograms are
//! emitted as the conventional cumulative `_bucket{le=...}` series over a
//! coarse decade grid (1µs … 10s in nanoseconds, plus `+Inf`), condensing
//! the fine log-scale buckets; a fine bucket that straddles a boundary is
//! counted at the next-larger bound, so bucket counts stay conservative
//! and `+Inf` always equals `_count`.

use crate::metrics::{bucket_low, MetricSnapshot, Snapshot, Value, HISTOGRAM_BUCKETS};

/// Upper bounds (nanoseconds) of the exposed histogram buckets. The
/// in-memory histograms stay fine-grained; this grid is only the wire
/// rendering.
pub const LE_BOUNDS_NS: [u64; 8] = [
    1_000,          // 1µs
    10_000,         // 10µs
    100_000,        // 100µs
    1_000_000,      // 1ms
    10_000_000,     // 10ms
    100_000_000,    // 100ms
    1_000_000_000,  // 1s
    10_000_000_000, // 10s
];

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn type_of(m: &MetricSnapshot) -> &'static str {
    match m.value {
        Value::Counter(_) => "counter",
        Value::Gauge(_) => "gauge",
        Value::Histogram(_) => "histogram",
    }
}

/// Render a snapshot as Prometheus text format. Deterministic for a given
/// snapshot (families sorted by name, series by label set).
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for m in &snapshot.metrics {
        if last_family != Some(m.name.as_str()) {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            out.push_str(&format!("# TYPE {} {}\n", m.name, type_of(m)));
            last_family = Some(m.name.as_str());
        }
        match &m.value {
            Value::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", m.name, label_block(&m.labels, None)));
            }
            Value::Gauge(v) => {
                out.push_str(&format!("{}{} {v}\n", m.name, label_block(&m.labels, None)));
            }
            Value::Histogram(h) => {
                // Walk the fine buckets once, emitting the cumulative count
                // at each coarse bound. Fine bucket `i` covers values in
                // [bucket_low(i), bucket_low(i+1)); it is counted at bound B
                // only when that whole range is ≤ B. The final fine bucket
                // is open-ended (saturation), so it lands in +Inf only.
                let mut fine = 0usize;
                let mut cumulative = 0u64;
                for &bound in &LE_BOUNDS_NS {
                    while fine < HISTOGRAM_BUCKETS - 1 && bucket_low(fine + 1) <= bound + 1 {
                        cumulative += h.buckets[fine];
                        fine += 1;
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        m.name,
                        label_block(&m.labels, Some(("le", &bound.to_string()))),
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    m.name,
                    label_block(&m.labels, Some(("le", "+Inf"))),
                    h.count,
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    m.name,
                    label_block(&m.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    m.name,
                    label_block(&m.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sample name as written (histogram series keep their `_bucket`/
    /// `_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse Prometheus text format into samples. Comment (`#`) and blank
/// lines are skipped; malformed lines yield an error naming the line.
/// Handles everything [`render`] emits (it is not a full OpenMetrics
/// parser).
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (name_part, value_part) = if let Some(close) = line.find('}') {
            (&line[..close + 1], line[close + 1..].trim())
        } else {
            let sp = line.find(' ').ok_or_else(|| err("no value"))?;
            (&line[..sp], line[sp + 1..].trim())
        };
        let (name, labels) = match name_part.find('{') {
            None => (name_part.to_string(), Vec::new()),
            Some(open) => {
                let name = name_part[..open].to_string();
                let inner = name_part[open + 1..name_part.len() - 1].trim();
                let mut labels = Vec::new();
                if !inner.is_empty() {
                    for pair in split_label_pairs(inner).map_err(|e| err(&e))? {
                        labels.push(pair);
                    }
                }
                (name, labels)
            }
        };
        let value: f64 = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| err("bad value"))?,
        };
        if name.is_empty() {
            return Err(err("empty name"));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Split `k1="v1",k2="v2"` respecting escaped quotes inside values.
fn split_label_pairs(inner: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let eq = inner[i..]
            .find('=')
            .map(|o| i + o)
            .ok_or("label without '='")?;
        let key = inner[i..eq].trim().to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err("label value not quoted".to_string());
        }
        let mut j = eq + 2;
        let mut value = String::new();
        loop {
            match bytes.get(j) {
                None => return Err("unterminated label value".to_string()),
                Some(b'\\') => {
                    match bytes.get(j + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".to_string()),
                    }
                    j += 2;
                }
                Some(b'"') => {
                    j += 1;
                    break;
                }
                Some(&c) => {
                    value.push(c as char);
                    j += 1;
                }
            }
        }
        pairs.push((key, value));
        i = j;
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Ok(pairs)
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn render_parse_round_trip() {
        let r = Registry::new();
        r.counter("ccm_x_total", "things", &[("node", "0")]).add(3);
        r.counter("ccm_x_total", "things", &[("node", "1")]).add(5);
        r.gauge("ccm_depth", "queue depth", &[]).set(-2);
        let h = r.histogram("ccm_lat_ns", "latency", &[("class", "local")]);
        h.record(500);
        h.record(2_000_000);
        let text = render(&r.snapshot());
        let samples = parse(&text).expect("parse own output");
        let find = |name: &str, labels: &[(&str, &str)]| {
            samples
                .iter()
                .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
                .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
                .value
        };
        assert_eq!(find("ccm_x_total", &[("node", "0")]), 3.0);
        assert_eq!(find("ccm_x_total", &[("node", "1")]), 5.0);
        assert_eq!(find("ccm_depth", &[]), -2.0);
        assert_eq!(find("ccm_lat_ns_count", &[("class", "local")]), 2.0);
        assert_eq!(find("ccm_lat_ns_sum", &[("class", "local")]), 2_000_500.0);
        // 500ns sample is ≤ the 1µs bound; the 2ms sample only at ≥10ms.
        assert_eq!(find("ccm_lat_ns_bucket", &[("le", "1000")]), 1.0);
        assert_eq!(find("ccm_lat_ns_bucket", &[("le", "10000000")]), 2.0);
        assert_eq!(find("ccm_lat_ns_bucket", &[("le", "+Inf")]), 2.0);
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let r = Registry::new();
        r.counter("a_total", "a", &[("node", "0")]).inc();
        r.counter("a_total", "a", &[("node", "1")]).inc();
        let text = render(&r.snapshot());
        assert_eq!(text.matches("# HELP a_total").count(), 1);
        assert_eq!(text.matches("# TYPE a_total counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("x_total", "x", &[("path", "a\"b\\c\nd")]).inc();
        let text = render(&r.snapshot());
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
        let samples = parse(&text).expect("parse escaped");
        assert_eq!(samples[0].label("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no_value_here").is_err());
        assert!(parse("x{unquoted=3} 1").is_err());
        assert!(parse("x 1").unwrap().len() == 1);
    }

    #[test]
    fn inf_bucket_equals_count_even_when_saturated() {
        let r = Registry::new();
        let h = r.histogram("big_ns", "big", &[]);
        h.record(u64::MAX); // saturates into the final fine bucket
        h.record(1);
        let text = render(&r.snapshot());
        let samples = parse(&text).expect("parse");
        let inf = samples
            .iter()
            .find(|s| s.name == "big_ns_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        let ten_s = samples
            .iter()
            .find(|s| s.name == "big_ns_bucket" && s.label("le") == Some("10000000000"))
            .expect("10s bucket");
        assert_eq!(ten_s.value, 1.0, "saturated sample must not land under 10s");
    }
}
