//! `ccmtop`: scrape every node of a running cluster's `/metrics` endpoint
//! and render a per-node live table — hit-class breakdown, eviction and
//! forwarding activity, HTTP load, and fetch-latency quantiles.
//!
//! Usage:
//!   ccmtop [--watch <secs>] <host:port> [<host:port> ...]
//!
//! Addresses are the HTTP listeners printed by `socket_cluster --serve`.
//! Without `--watch` it scrapes once and exits (scriptable); with it, the
//! table refreshes in place until interrupted. The scraper is std-only:
//! one short-lived TCP connection and a plain HTTP/1.1 GET per node.

use ccm_obs::prom::{parse, Sample};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: ccmtop [--watch <secs>] <host:port> [<host:port> ...]");
    std::process::exit(2);
}

/// GET `path` from `addr`, returning the body. Plain HTTP/1.1, one
/// connection per request.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!("{addr}: HTTP {status}"));
    }
    Ok(body.to_string())
}

type SeriesKey = (String, Vec<(String, String)>);

/// Scrape every address and merge the samples by series identity (last
/// scrape wins). In the single-process `socket_cluster` every node serves
/// the same cluster-wide registry, so merging rather than summing is what
/// keeps the numbers honest; with one process per node the node labels
/// keep the series disjoint and the merge is a plain union.
fn scrape(addrs: &[String]) -> (BTreeMap<SeriesKey, f64>, Vec<String>) {
    let mut merged = BTreeMap::new();
    let mut errors = Vec::new();
    for addr in addrs {
        match http_get(addr, "/metrics").and_then(|body| parse(&body)) {
            Ok(samples) => {
                for Sample {
                    name,
                    mut labels,
                    value,
                } in samples
                {
                    labels.sort();
                    merged.insert((name, labels), value);
                }
            }
            Err(e) => errors.push(e),
        }
    }
    (merged, errors)
}

fn get(series: &BTreeMap<SeriesKey, f64>, name: &str, labels: &[(&str, &str)]) -> f64 {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    series.get(&(name.to_string(), key)).copied().unwrap_or(0.0)
}

/// Distinct values of `label` across all series of family `name`, sorted.
fn label_values(series: &BTreeMap<SeriesKey, f64>, name: &str, label: &str) -> Vec<String> {
    let mut vals: Vec<String> = series
        .keys()
        .filter(|(n, _)| n == name)
        .filter_map(|(_, ls)| ls.iter().find(|(k, _)| k == label).map(|(_, v)| v.clone()))
        .collect();
    vals.sort();
    vals.dedup();
    vals
}

/// Approximate quantile from the exposed cumulative `_bucket` series:
/// the smallest `le` bound whose cumulative count reaches the rank.
fn bucket_quantile(
    series: &BTreeMap<SeriesKey, f64>,
    family: &str,
    fixed: &[(&str, &str)],
    q: f64,
) -> Option<f64> {
    let bucket = format!("{family}_bucket");
    let mut bounds: Vec<(f64, f64)> = series
        .iter()
        .filter(|((n, ls), _)| {
            n == &bucket
                && fixed
                    .iter()
                    .all(|(k, v)| ls.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .filter_map(|((_, ls), &c)| {
            let le = ls.iter().find(|(k, _)| k == "le")?.1.clone();
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, c))
        })
        .collect();
    bounds.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN bounds"));
    let total = bounds.last()?.1;
    if total == 0.0 {
        return None;
    }
    let target = (q * total).ceil().max(1.0);
    bounds
        .iter()
        .find(|&&(_, c)| c >= target)
        .map(|&(bound, _)| bound)
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_infinite() {
        ">10s".to_string()
    } else if ns >= 1e9 {
        format!("{:.1}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.0}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn render(series: &BTreeMap<SeriesKey, f64>, errors: &[String]) {
    let nodes = label_values(series, "ccm_rt_reads_total", "node");
    println!(
        "{:<5} {:>9} {:>9} {:>9} {:>9} {:>6} {:>8} {:>8} {:>7} {:>9} {:>9}",
        "node",
        "local",
        "remote",
        "disk",
        "fallbk",
        "hit%",
        "evict",
        "fwd",
        "store",
        "http",
        "inflight"
    );
    for node in &nodes {
        let n = node.as_str();
        let class = |c: &str| get(series, "ccm_rt_reads_total", &[("node", n), ("class", c)]);
        let (local, remote, disk, fb) = (
            class("local"),
            class("remote"),
            class("disk"),
            class("fallback"),
        );
        let total = local + remote + disk;
        let hit = if total > 0.0 {
            100.0 * (local + remote) / total
        } else {
            0.0
        };
        let http = get(
            series,
            "ccm_http_responses_total",
            &[("node", n), ("status", "2xx")],
        ) + get(
            series,
            "ccm_http_responses_total",
            &[("node", n), ("status", "4xx")],
        ) + get(
            series,
            "ccm_http_responses_total",
            &[("node", n), ("status", "5xx")],
        );
        println!(
            "{:<5} {:>9} {:>9} {:>9} {:>9} {:>6.1} {:>8} {:>8} {:>7} {:>9} {:>9}",
            n,
            local,
            remote,
            disk,
            fb,
            hit,
            get(series, "ccm_rt_evictions_total", &[("node", n)]),
            get(series, "ccm_rt_forwards_total", &[("node", n)]),
            get(series, "ccm_rt_store_blocks", &[("node", n)]),
            http,
            get(series, "ccm_http_inflight", &[("node", n)]),
        );
    }
    if nodes.is_empty() {
        println!("(no ccm_rt_reads_total series yet — is the cluster serving /metrics?)");
    }

    let classes = label_values(series, "ccm_rt_fetch_latency_ns_count", "class");
    if !classes.is_empty() {
        let line: Vec<String> = classes
            .iter()
            .filter_map(|c| {
                let p50 = bucket_quantile(series, "ccm_rt_fetch_latency_ns", &[("class", c)], 0.5)?;
                let p99 =
                    bucket_quantile(series, "ccm_rt_fetch_latency_ns", &[("class", c)], 0.99)?;
                Some(format!("{c} p50≤{} p99≤{}", fmt_ns(p50), fmt_ns(p99)))
            })
            .collect();
        println!("fetch latency: {}", line.join("  |  "));
    }
    let dropped = get(series, "ccm_chaos_dropped_total", &[]);
    let duplicated = get(series, "ccm_chaos_duplicated_total", &[]);
    let delayed = get(series, "ccm_chaos_delayed_total", &[]);
    if dropped + duplicated + delayed > 0.0 {
        println!("chaos: {dropped} dropped, {duplicated} duplicated, {delayed} delayed");
    }
    let frames_out = series
        .iter()
        .filter(|((n, _), _)| n == "ccm_net_frames_out_total")
        .map(|(_, v)| v)
        .sum::<f64>();
    let bytes_out = series
        .iter()
        .filter(|((n, _), _)| n == "ccm_net_bytes_out_total")
        .map(|(_, v)| v)
        .sum::<f64>();
    if frames_out > 0.0 {
        println!(
            "wire: {frames_out} frames / {:.1} MB sent across all peer links",
            bytes_out / (1 << 20) as f64
        );
    }
    for e in errors {
        eprintln!("scrape error: {e}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut watch: Option<u64> = None;
    if let Some(pos) = args.iter().position(|a| a == "--watch") {
        if pos + 1 >= args.len() {
            usage();
        }
        watch = Some(args[pos + 1].parse().unwrap_or_else(|_| usage()));
        args.drain(pos..=pos + 1);
    }
    if args.is_empty() || args.iter().any(|a| a.starts_with('-')) {
        usage();
    }

    loop {
        let (series, errors) = scrape(&args);
        if let Some(secs) = watch {
            // Clear and home, terminal-style.
            print!("\x1b[2J\x1b[H");
            println!(
                "ccmtop — {} node endpoint(s), refresh {}s\n",
                args.len(),
                secs
            );
            render(&series, &errors);
            std::io::stdout().flush().ok();
            std::thread::sleep(Duration::from_secs(secs));
        } else {
            render(&series, &errors);
            if series.is_empty() && !errors.is_empty() {
                std::process::exit(1);
            }
            return;
        }
    }
}
