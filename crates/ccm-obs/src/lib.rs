//! Observability for the cooperative caching runtime.
//!
//! Three small pieces, designed so the hot block path pays one relaxed
//! atomic increment and nothing else:
//!
//! - [`metrics`]: a lock-free [`Registry`] of [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket log-scale [`Histogram`]s (the bucketing scheme is
//!   `simcore::Histogram`'s, frozen at 512 buckets so snapshots from
//!   different nodes always merge).
//! - [`trace`]: a bounded per-cluster [`TraceRing`] of structured
//!   block-path hops (dispatch → peer fetch → disk fallback → serve),
//!   dumpable as JSON on demand or on chaos-invariant failure.
//! - [`prom`]: Prometheus text exposition of a registry [`Snapshot`], and
//!   the minimal parser the `ccmtop` scraper uses.
//!
//! Building with `--features obs-off` compiles gauges, histograms,
//! stopwatches, and trace rings down to nothing (counters stay live; see
//! [`metrics`] for why) — the overhead-guard bench compares the two
//! builds.

#![warn(missing_docs)]

pub mod metrics;
pub mod prom;
pub mod report;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, Registry, Snapshot, Stopwatch,
    Value, HISTOGRAM_BUCKETS,
};
pub use report::LatencySummary;
pub use trace::{Hop, TraceEvent, TraceRing};
