//! Block-path trace events: a bounded per-node ring buffer of structured
//! hops, so a failing chaos run (or a curious operator) can reconstruct
//! exactly what one request did — dispatch, peer fetch, disk fallback,
//! serve — with monotonic timestamps, instead of printf archaeology.
//!
//! Pushes are cheap: one relaxed atomic to claim a slot plus one
//! uncontended-in-practice slot lock (writers only collide on wrap-around).
//! Under `obs-off` the whole ring compiles to nothing.

#[cfg(not(feature = "obs-off"))]
use simcore::sync::Mutex;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::Arc;

/// One hop in a block request's life. Variants mirror the runtime's read
/// path; `node`/`from`/`to` are raw node indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hop {
    /// A request entered the middleware for `(file, block)`.
    Dispatch {
        /// File the block belongs to.
        file: u32,
        /// Block index within the file.
        block: u32,
    },
    /// The block was resident in the local store.
    LocalHit,
    /// The directory said `from` holds the block; a peer fetch was issued.
    PeerFetch {
        /// Node the fetch was sent to.
        from: u16,
    },
    /// The peer fetch came back with `bytes` bytes.
    PeerReply {
        /// Payload size of the reply.
        bytes: u64,
    },
    /// The peer fetch failed (timeout/crash/drop); degrading to disk — the
    /// paper's §3 "eventual disk read" escape hatch.
    DiskFallback,
    /// The directory had no cached copy; read from the backing store.
    DiskRead,
    /// An eviction forwarded this block to `to` (second-chance hop).
    Forward {
        /// Node the evicted block was forwarded to.
        to: u16,
    },
    /// The request completed; `bytes` returned to the caller.
    Serve {
        /// Bytes handed back.
        bytes: u64,
    },
}

impl Hop {
    /// Short machine-readable name (JSON `hop` field).
    pub fn name(&self) -> &'static str {
        match self {
            Hop::Dispatch { .. } => "dispatch",
            Hop::LocalHit => "local_hit",
            Hop::PeerFetch { .. } => "peer_fetch",
            Hop::PeerReply { .. } => "peer_reply",
            Hop::DiskFallback => "disk_fallback",
            Hop::DiskRead => "disk_read",
            Hop::Forward { .. } => "forward",
            Hop::Serve { .. } => "serve",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Request id (from [`TraceRing::next_req_id`]); groups hops.
    pub req_id: u64,
    /// Node index the hop happened on.
    pub node: u16,
    /// Monotonic nanoseconds since the ring was created.
    pub at_ns: u64,
    /// What happened.
    pub hop: Hop,
}

impl TraceEvent {
    /// Render as a single flat JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"req_id\":{},\"node\":{},\"at_ns\":{},\"hop\":\"{}\"",
            self.req_id,
            self.node,
            self.at_ns,
            self.hop.name()
        );
        match &self.hop {
            Hop::Dispatch { file, block } => {
                s.push_str(&format!(",\"file\":{file},\"block\":{block}"));
            }
            Hop::PeerFetch { from } => s.push_str(&format!(",\"from\":{from}")),
            Hop::PeerReply { bytes } | Hop::Serve { bytes } => {
                s.push_str(&format!(",\"bytes\":{bytes}"));
            }
            Hop::Forward { to } => s.push_str(&format!(",\"to\":{to}")),
            Hop::LocalHit | Hop::DiskFallback | Hop::DiskRead => {}
        }
        s.push('}');
        s
    }
}

#[cfg(not(feature = "obs-off"))]
struct RingInner {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    next: AtomicU64,
    next_req: AtomicU64,
    epoch: std::time::Instant,
}

/// A bounded, overwrite-oldest ring of [`TraceEvent`]s. Cheap to clone
/// (shared interior); the runtime keeps one per cluster with events
/// labeled by node.
#[cfg(not(feature = "obs-off"))]
#[derive(Clone)]
pub struct TraceRing(Arc<RingInner>);

/// A bounded trace ring (`obs-off`: compiled to nothing).
#[cfg(feature = "obs-off")]
#[derive(Clone)]
pub struct TraceRing;

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceRing(cap={})", self.capacity())
    }
}

#[cfg(not(feature = "obs-off"))]
impl TraceRing {
    /// A ring holding the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing(Arc::new(RingInner {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            next_req: AtomicU64::new(0),
            epoch: std::time::Instant::now(),
        }))
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.0.slots.len()
    }

    /// A fresh, ring-unique request id (starts at 1; 0 is never issued, so
    /// callers can use it as "untraced").
    pub fn next_req_id(&self) -> u64 {
        self.0.next_req.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Monotonic nanoseconds since the ring was created.
    pub fn now_ns(&self) -> u64 {
        self.0.epoch.elapsed().as_nanos() as u64
    }

    /// Record a hop for `req_id` on `node`, timestamped now.
    pub fn push(&self, req_id: u64, node: u16, hop: Hop) {
        let at_ns = self.now_ns();
        let idx = self.0.next.fetch_add(1, Ordering::Relaxed) as usize % self.0.slots.len();
        *self.0.slots[idx].lock() = Some(TraceEvent {
            req_id,
            node,
            at_ns,
            hop,
        });
    }

    /// All retained events, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .0
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .collect();
        events.sort_by_key(|e| (e.at_ns, e.req_id));
        events
    }

    /// Retained events for one request id, oldest first.
    pub fn dump_for(&self, req_id: u64) -> Vec<TraceEvent> {
        let mut events = self.dump();
        events.retain(|e| e.req_id == req_id);
        events
    }

    /// The whole retained ring as a JSON document:
    /// `{"capacity":N,"events":[...]}`.
    pub fn dump_json(&self) -> String {
        let events = self.dump();
        let mut s = format!("{{\"capacity\":{},\"events\":[", self.capacity());
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.to_json());
        }
        s.push_str("]}");
        s
    }
}

#[cfg(feature = "obs-off")]
impl TraceRing {
    /// A ring (`obs-off`: retains nothing).
    pub fn new(_capacity: usize) -> TraceRing {
        TraceRing
    }

    /// Always zero (`obs-off`).
    pub fn capacity(&self) -> usize {
        0
    }

    /// Always zero, the "untraced" id (`obs-off`).
    pub fn next_req_id(&self) -> u64 {
        0
    }

    /// Always zero (`obs-off`).
    pub fn now_ns(&self) -> u64 {
        0
    }

    /// No-op (`obs-off`).
    pub fn push(&self, _req_id: u64, _node: u16, _hop: Hop) {}

    /// Always empty (`obs-off`).
    pub fn dump(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always empty (`obs-off`).
    pub fn dump_for(&self, _req_id: u64) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// An empty document (`obs-off`).
    pub fn dump_json(&self) -> String {
        "{\"capacity\":0,\"events\":[]}".to_string()
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn push_and_dump_round_trips() {
        let ring = TraceRing::new(16);
        let id = ring.next_req_id();
        assert_eq!(id, 1);
        ring.push(id, 0, Hop::Dispatch { file: 3, block: 1 });
        ring.push(id, 0, Hop::PeerFetch { from: 2 });
        ring.push(id, 0, Hop::DiskFallback);
        ring.push(id, 0, Hop::Serve { bytes: 4096 });
        let events = ring.dump_for(id);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].hop, Hop::Dispatch { file: 3, block: 1 });
        assert_eq!(events[3].hop, Hop::Serve { bytes: 4096 });
        // Timestamps are monotone within a single-threaded pusher.
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push(i, 0, Hop::LocalHit);
        }
        let events = ring.dump();
        assert_eq!(events.len(), 4);
        let ids: Vec<u64> = events.iter().map(|e| e.req_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn json_is_flat_and_tagged() {
        let ring = TraceRing::new(4);
        ring.push(7, 1, Hop::PeerFetch { from: 0 });
        let json = ring.dump_json();
        assert!(json.starts_with("{\"capacity\":4,\"events\":["));
        assert!(json.contains("\"req_id\":7"));
        assert!(json.contains("\"hop\":\"peer_fetch\""));
        assert!(json.contains("\"from\":0"));
    }
}
