//! Run-report rendering over metric snapshots.
//!
//! The load generator (and any future benchmark) quotes latency from
//! [`Histogram`](crate::Histogram) snapshots; [`LatencySummary`] is the
//! fixed set of figures a report cell carries — count, mean, p50/p95/p99 —
//! with a hand-rolled JSON rendering matching the repo's `BENCH_*.json`
//! convention (no serde in the workspace).

use crate::metrics::HistogramSnapshot;

/// Count, mean, and tail quantiles of one latency distribution, in
/// nanoseconds. Quantiles carry the histogram's log-bucket resolution
/// (≤ ~6% relative error), which is what a throughput report needs.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
}

impl LatencySummary {
    /// Summarize a histogram snapshot (all-zero when empty).
    pub fn of(h: &HistogramSnapshot) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
        }
    }

    /// One JSON object, e.g.
    /// `{ "count": 800, "mean_ns": 8123.4, "p50_ns": 7680, ... }`.
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {} }}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns
        )
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn summarizes_a_distribution() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let s = LatencySummary::of(&h.snapshot());
        assert_eq!(s.count, 1_000);
        assert!((s.mean_ns - 500.5).abs() < 1e-9);
        let p50 = s.p50_ns as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50={p50}");
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
    }

    #[test]
    fn empty_is_all_zero() {
        let s = LatencySummary::of(&HistogramSnapshot::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ns, 0.0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let h = Histogram::new();
        h.record(8);
        let json = LatencySummary::of(&h.snapshot()).to_json();
        assert_eq!(
            json,
            "{ \"count\": 1, \"mean_ns\": 8.0, \"p50_ns\": 8, \"p95_ns\": 8, \"p99_ns\": 8 }"
        );
    }
}
