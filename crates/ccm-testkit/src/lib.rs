//! Shared fixtures for tests that drive a *live* `ccm-rt` cluster.
//!
//! Before this crate, the cluster spin-up, the torture driver, and the
//! deterministic trace-feed/digest driver were copy-pasted across
//! `tests/chaos.rs`, `ccm-net/tests/socket_chaos.rs`, and
//! `ccm-net/tests/socket_cluster.rs`, drifting in small ways (only the
//! channel harness dumped block-path traces; only the TCP harness checked
//! wire stats). This crate is the single copy, parameterized by
//! [`Backend`]:
//!
//! * [`start_cluster`] — a middleware cluster on either LAN backend, with
//!   the `TcpLan` handle kept reachable for wire assertions.
//! * [`fixture`] — the seeded catalog + synthetic store the chaos suites
//!   share.
//! * [`run_torture`] — the fault-injection driver with both oracles
//!   (integrity vs. ground truth on every read, bit-identical replay when
//!   quiesced), now with trace-ring dumps and repair-counter
//!   reconciliation on *both* backends.
//! * [`drive`] — the deterministic single-threaded trace feed folding
//!   every delivered byte into an FNV-1a digest (the cross-backend
//!   acceptance oracle).
//!
//! This is a dev-dependency crate: it links `ccm-net` so one enum can
//! start either transport, and the resulting dev-dep cycles are fine —
//! Cargo builds libs without dev-dependencies.

#![warn(missing_docs)]

use ccm_core::{CacheStats, DirectoryKind, FileId, HintStats, NodeId, ReplacementPolicy};
use ccm_net::TcpLan;
use ccm_rt::store::read_file_direct;
use ccm_rt::{
    BlockStore, Catalog, ChaosStats, DiskFaults, FaultPlan, Lan, Membership, Middleware, RtConfig,
    SyntheticStore,
};
use ccm_traces::Workload;
use simcore::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Which LAN carries the cluster's peer traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The in-process channel LAN (`ccm-rt`'s built-in transport).
    Channel,
    /// Real loopback TCP via `ccm-net`.
    Tcp,
}

impl Backend {
    /// Both backends, channel first.
    pub fn all() -> [Backend; 2] {
        [Backend::Channel, Backend::Tcp]
    }

    /// Label used in reports and assertion messages.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Channel => "channel",
            Backend::Tcp => "tcp",
        }
    }

    /// The fetch timeout the torture harness uses on this backend: short
    /// on the channel LAN so a dropped request degrades to disk quickly,
    /// wider over TCP so a real loopback round trip plus scheduling noise
    /// is never mistaken for a lost message.
    pub fn torture_fetch_timeout(self) -> Duration {
        match self {
            Backend::Channel => Duration::from_millis(25),
            Backend::Tcp => Duration::from_millis(100),
        }
    }
}

/// A running cluster plus (for TCP) the transport handle, so tests can
/// assert on wire statistics.
pub struct Cluster {
    /// The running middleware.
    pub mw: Middleware,
    /// The socket transport underneath, when `Backend::Tcp`.
    pub lan: Option<Arc<TcpLan>>,
}

impl Cluster {
    /// Stop all service threads and join them.
    pub fn shutdown(self) {
        self.mw.shutdown();
    }
}

impl std::ops::Deref for Cluster {
    type Target = Middleware;

    fn deref(&self) -> &Middleware {
        &self.mw
    }
}

/// Start a cluster on the chosen backend.
///
/// # Panics
/// Panics if the TCP backend cannot bind its loopback listeners.
pub fn start_cluster(
    backend: Backend,
    cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
) -> Cluster {
    match backend {
        Backend::Channel => Cluster {
            mw: Middleware::start(cfg, catalog, store),
            lan: None,
        },
        Backend::Tcp => {
            let lan = Arc::new(TcpLan::loopback(cfg.nodes).expect("bind loopback listeners"));
            Cluster {
                mw: Middleware::start_on(cfg, catalog, store, lan.clone()),
                lan: Some(lan),
            }
        }
    }
}

/// Start a cluster with an explicit membership table and directory choice
/// (the churn suites' entry point): `cfg.nodes` slots are provisioned on
/// the chosen backend, slots `>= membership`'s initial member count start
/// cold, and the hint directory can be selected in place of the paper's
/// perfect one.
///
/// # Panics
/// Panics if the TCP backend cannot bind its loopback listeners.
pub fn start_member_cluster(
    backend: Backend,
    cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
    membership: Membership,
    directory: DirectoryKind,
) -> Cluster {
    match backend {
        Backend::Channel => {
            let lan = Arc::new(Lan::with_nodes(cfg.nodes));
            Cluster {
                mw: Middleware::start_member(cfg, catalog, store, lan, membership, directory),
                lan: None,
            }
        }
        Backend::Tcp => {
            let lan = Arc::new(TcpLan::loopback(cfg.nodes).expect("bind loopback listeners"));
            Cluster {
                mw: Middleware::start_member(
                    cfg,
                    catalog,
                    store,
                    lan.clone(),
                    membership,
                    directory,
                ),
                lan: Some(lan),
            }
        }
    }
}

/// Build a chaos run's fixture deterministically from `seed`: a catalog of
/// small files and a synthetic store holding their ground-truth bytes.
pub fn fixture(seed: u64) -> (Catalog, Arc<SyntheticStore>) {
    let mut rng = Rng::new(seed).substream(1);
    let sizes: Vec<u64> = (0..40).map(|_| 1 + rng.next_below(24_000)).collect();
    let catalog = Catalog::new(sizes);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), seed));
    (catalog, store)
}

/// On an integrity failure, print the block-path trace ring entries for
/// the offending request ids before panicking — the hop sequence (dispatch
/// → peer fetch → fallback → serve) is the first thing a diagnosis needs.
/// Under `obs-off` the ring is compiled out and this prints nothing.
pub fn dump_trace(mw: &Middleware, reqs: &[u64]) {
    for &req in reqs {
        for ev in mw.trace().dump_for(req) {
            eprintln!("trace: {}", ev.to_json());
        }
    }
}

/// Everything observable from one torture run.
#[derive(Debug, PartialEq)]
pub struct TortureOutcome {
    /// Protocol counters at the end of the run.
    pub stats: CacheStats,
    /// Injected link faults.
    pub chaos: ChaosStats,
    /// Crash events executed.
    pub crashes: usize,
    /// Restart events executed.
    pub restarts: usize,
    /// Injected disk I/O errors absorbed by the synchronous store retry.
    pub disk_fallbacks: u64,
}

/// Drive `ops` single-threaded file reads through a faulted cluster on
/// `backend`, executing the plan's crash schedule and asserting the
/// integrity oracle on every read. With `quiesce_each_op` the data plane
/// is drained after every operation, which makes the statistics a
/// deterministic function of the seed (the replayability mode).
///
/// Every crash is reconciled against the repair counters: one
/// `node_repairs` tick, and the repair report's remaster/lost-master split
/// must match the stats delta exactly.
pub fn run_torture(
    backend: Backend,
    seed: u64,
    nodes: usize,
    ops: u64,
    quiesce_each_op: bool,
    disk: DiskFaults,
) -> TortureOutcome {
    let (catalog, store) = fixture(seed);
    let n_files = catalog.num_files() as u64;
    let plan = FaultPlan::torture(seed, nodes, ops).with_disk(disk);
    let crashes_planned = plan.crashes.clone();
    let cluster = start_cluster(
        backend,
        RtConfig {
            nodes,
            capacity_blocks: 24,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: backend.torture_fetch_timeout(),
            faults: Some(plan),
            ..RtConfig::default()
        },
        catalog.clone(),
        store.clone(),
    );
    let mw = &cluster.mw;

    let mut op_rng = Rng::new(seed).substream(2);
    let mut down = vec![false; nodes];
    let (mut crashes, mut restarts) = (0usize, 0usize);
    for op in 0..ops {
        for ev in &crashes_planned {
            if ev.at_op == op {
                let before = mw.stats();
                let report = mw.crash_node(ev.node);
                down[ev.node.index()] = true;
                crashes += 1;
                mw.check_invariants();
                let after = mw.stats();
                assert_eq!(after.node_repairs, before.node_repairs + 1);
                assert_eq!(
                    after.remasters + after.lost_masters,
                    before.remasters
                        + before.lost_masters
                        + (report.remastered + report.lost_masters) as u64,
                );
            }
            if ev.restart_at_op == Some(op) {
                mw.restart_node(ev.node);
                down[ev.node.index()] = false;
                restarts += 1;
                mw.check_invariants();
            }
        }
        // Route the read through a deterministic live node.
        let live: Vec<NodeId> = (0..nodes)
            .filter(|&i| !down[i])
            .map(|i| NodeId(i as u16))
            .collect();
        let node = live[op_rng.next_below(live.len() as u64) as usize];
        let file = FileId(op_rng.next_below(n_files) as u32);
        let (got, reqs) = mw.handle(node).read_file_traced(file);
        let want = read_file_direct(&*store, &catalog, file);
        if got != want {
            dump_trace(mw, &reqs);
            panic!(
                "{} seed {seed} op {op}: file {file:?} corrupted under faults \
                 (block-path trace for request ids {reqs:?} dumped above)",
                backend.name()
            );
        }
        if quiesce_each_op {
            mw.quiesce();
        }
    }
    mw.quiesce();
    mw.check_invariants();
    let out = TortureOutcome {
        stats: mw.stats(),
        chaos: mw.chaos_stats(),
        crashes,
        restarts,
        disk_fallbacks: mw.disk_error_fallbacks(),
    };
    cluster.shutdown();
    out
}

/// The shared acceptance workload: small Zipf-popular files sized so a few
/// span multiple blocks, total comfortably above one node's cache
/// capacity.
pub fn acceptance_workload() -> Workload {
    ccm_traces::SynthConfig {
        name: "socket-acceptance".into(),
        n_files: 48,
        mean_size: 9_000.0,
        total_bytes: Some(1 << 20),
        seed: 42,
        ..ccm_traces::SynthConfig::default()
    }
    .build()
}

/// The FNV-1a offset basis (the digest accumulator's initial value).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a digest accumulator.
#[inline]
pub fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Everything observable from one deterministic drive.
#[derive(Debug, PartialEq, Eq)]
pub struct DriveOutcome {
    /// FNV-1a digest over every delivered byte, in op order.
    pub digest: u64,
    /// Protocol counters at the end of the drive.
    pub stats: CacheStats,
    /// Store fallbacks (must be 0 for a quiesced single-threaded drive to
    /// count as deterministic).
    pub fallbacks: u64,
}

/// Drive `ops` deterministic single-threaded reads (same seed → same node
/// and file sequence, drawn from `wl`'s popularity), asserting the
/// integrity oracle on every read and folding all delivered bytes into an
/// FNV-1a digest. Quiesces after every operation so the statistics are a
/// pure function of the op history.
pub fn drive(
    mw: &Middleware,
    store: &dyn BlockStore,
    catalog: &Catalog,
    wl: &Workload,
    nodes: usize,
    ops: u64,
    seed: u64,
) -> DriveOutcome {
    let mut rng = Rng::new(seed).substream(3);
    let mut digest = FNV_OFFSET;
    for op in 0..ops {
        let node = NodeId(rng.next_below(nodes as u64) as u16);
        let file = FileId(wl.sample(&mut rng).0);
        let got = mw.handle(node).read_file(file);
        let want = read_file_direct(store, catalog, file);
        assert_eq!(got, want, "op {op}: file {file:?} corrupted");
        fnv1a(&mut digest, &got);
        mw.quiesce();
    }
    mw.check_invariants();
    DriveOutcome {
        digest,
        stats: mw.stats(),
        fallbacks: mw.store_fallbacks(),
    }
}

/// One scheduled membership transition in a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A provisioned (or previously departed) slot joins the cluster and
    /// absorbs a re-mastered share of the resident blocks.
    Join(NodeId),
    /// A member announces departure and hands its masters off first.
    Leave(NodeId),
    /// A member dies without warning; the directory is repaired around it.
    Crash(NodeId),
}

/// A seeded join/leave/crash schedule over a pre-provisioned slot table.
///
/// Slots `0..initial` start as members; `events` holds `(at_op, event)`
/// pairs in non-decreasing operation order. The derivation keeps the
/// schedule executable by construction: it never drops below two live
/// members and never removes slot 0, so the churn driver always has a
/// serving cluster to route through.
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    /// Provisioned slot count (the transport size).
    pub slots: usize,
    /// Slots `0..initial` start as `Up` members.
    pub initial: usize,
    /// `(at_op, event)` pairs, sorted by operation index.
    pub events: Vec<(u64, ChurnEvent)>,
}

impl ChurnPlan {
    /// Derive a schedule from `seed`: `n_events` transitions spread across
    /// the middle of an `ops`-operation run. Joins and removals are drawn
    /// uniformly wherever both are legal; removals split evenly between
    /// graceful leaves and crashes.
    pub fn seeded(seed: u64, slots: usize, initial: usize, ops: u64, n_events: usize) -> ChurnPlan {
        assert!(slots >= 4, "churn needs headroom: at least 4 slots");
        assert!((2..=slots).contains(&initial), "2 <= initial <= slots");
        let mut rng = Rng::new(seed).substream(7);
        let mut member: Vec<bool> = (0..slots).map(|i| i < initial).collect();
        let mut live = initial;
        let window = ops / (n_events as u64 + 2);
        let mut events = Vec::new();
        for k in 0..n_events as u64 {
            // Window k starts where window k-1 can no longer reach, so the
            // generated order survives the stable sort below even at ties.
            let at_op = window * (k + 1) + rng.next_below(window + 1);
            let joinable: Vec<usize> = (1..slots).filter(|&i| !member[i]).collect();
            let removable: Vec<usize> = (1..slots).filter(|&i| member[i]).collect();
            let can_remove = live > 2 && !removable.is_empty();
            let ev = if !joinable.is_empty() && (!can_remove || rng.next_below(2) == 0) {
                let node = joinable[rng.next_below(joinable.len() as u64) as usize];
                member[node] = true;
                live += 1;
                ChurnEvent::Join(NodeId(node as u16))
            } else {
                let node = removable[rng.next_below(removable.len() as u64) as usize];
                member[node] = false;
                live -= 1;
                if rng.next_below(2) == 0 {
                    ChurnEvent::Crash(NodeId(node as u16))
                } else {
                    ChurnEvent::Leave(NodeId(node as u16))
                }
            };
            events.push((at_op, ev));
        }
        events.sort_by_key(|&(op, _)| op);
        ChurnPlan {
            slots,
            initial,
            events,
        }
    }
}

/// Map a slot draw onto the nearest member at or after it (wrapping), so a
/// driver consumes an *identical* rng stream regardless of the membership
/// history — the key to comparing digests across static and churned runs.
///
/// # Panics
/// Panics if no slot is a member.
pub fn remap_to_member(members: &Membership, slots: usize, draw: usize) -> NodeId {
    for k in 0..slots {
        let node = NodeId(((draw + k) % slots) as u16);
        if members.is_member(node) {
            return node;
        }
    }
    panic!("no live members to route through");
}

/// Everything observable from one churn-torture run. `PartialEq` so the
/// same-seed replay oracle can demand bit-identical reruns.
#[derive(Debug, PartialEq)]
pub struct ChurnOutcome {
    /// FNV-1a digest over every delivered byte, in op order.
    pub digest: u64,
    /// Protocol counters at the end of the run.
    pub stats: CacheStats,
    /// Hint-directory accuracy counters (correct/stale/wasted hops).
    pub hints: HintStats,
    /// Final membership epoch — one bump per executed transition.
    pub epoch: u64,
    /// Join events executed.
    pub joins: usize,
    /// Graceful-leave events executed.
    pub leaves: usize,
    /// Crash events executed.
    pub crashes: usize,
}

/// Drive `ops` deterministic single-threaded reads from `wl` through a
/// hint-directory cluster while executing `plan`'s membership schedule,
/// asserting the byte-integrity oracle on every read and the quiescent
/// hint-convergence audit at the end. Quiesces after every operation so
/// the outcome is a pure function of `(backend, seed, plan, wl, ops)` —
/// the bit-identical-replay mode.
pub fn run_churn_torture(
    backend: Backend,
    seed: u64,
    plan: &ChurnPlan,
    wl: &Workload,
    ops: u64,
    capacity_blocks: usize,
) -> ChurnOutcome {
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), seed));
    let cluster = start_member_cluster(
        backend,
        RtConfig {
            nodes: plan.slots,
            capacity_blocks,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: backend.torture_fetch_timeout(),
            faults: None,
            ..RtConfig::default()
        },
        catalog.clone(),
        store.clone(),
        Membership::with_initial(plan.slots, plan.initial),
        DirectoryKind::Hint,
    );
    let mw = &cluster.mw;
    let members = mw.membership();
    let mut rng = Rng::new(seed).substream(3);
    let mut digest = FNV_OFFSET;
    let (mut joins, mut leaves, mut crashes) = (0usize, 0usize, 0usize);
    let mut next_event = 0usize;
    for op in 0..ops {
        while next_event < plan.events.len() && plan.events[next_event].0 == op {
            match plan.events[next_event].1 {
                ChurnEvent::Join(node) => {
                    mw.join_node(node);
                    joins += 1;
                }
                ChurnEvent::Leave(node) => {
                    mw.leave_node(node);
                    leaves += 1;
                }
                ChurnEvent::Crash(node) => {
                    mw.crash_node(node);
                    crashes += 1;
                }
            }
            mw.check_invariants();
            next_event += 1;
        }
        let node = remap_to_member(
            &members,
            plan.slots,
            rng.next_below(plan.slots as u64) as usize,
        );
        let file = FileId(wl.sample(&mut rng).0);
        let (got, reqs) = mw.handle(node).read_file_traced(file);
        let want = read_file_direct(&*store, &catalog, file);
        if got != want {
            dump_trace(mw, &reqs);
            panic!(
                "{} seed {seed} op {op}: file {file:?} corrupted under churn \
                 (block-path trace for request ids {reqs:?} dumped above)",
                backend.name()
            );
        }
        fnv1a(&mut digest, &got);
        mw.quiesce();
    }
    mw.quiesce();
    mw.check_invariants();
    mw.audit_quiescent();
    let out = ChurnOutcome {
        digest,
        stats: mw.stats(),
        hints: mw.hint_stats(),
        epoch: mw.epoch(),
        joins,
        leaves,
        crashes,
    };
    cluster.shutdown();
    out
}

/// Which cache architecture sits behind a front-tier fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontBackendKind {
    /// The cooperative caching middleware on the given LAN backend.
    Ccm(Backend),
    /// The live L2S baseline (whole-file per-node LRU, no cooperation).
    L2s,
}

impl FrontBackendKind {
    /// Every backend: CCM on both transports, then L2S.
    pub fn all() -> [FrontBackendKind; 3] {
        [
            FrontBackendKind::Ccm(Backend::Channel),
            FrontBackendKind::Ccm(Backend::Tcp),
            FrontBackendKind::L2s,
        ]
    }

    /// Label used in reports and assertion messages.
    pub fn name(self) -> &'static str {
        match self {
            FrontBackendKind::Ccm(Backend::Channel) => "ccm/channel",
            FrontBackendKind::Ccm(Backend::Tcp) => "ccm/tcp",
            FrontBackendKind::L2s => "l2s",
        }
    }
}

/// A running front tier plus whatever backend lifecycle it must tear
/// down: the middleware cluster for CCM kinds, nothing extra for L2S.
pub struct FrontFixture {
    /// The running front tier (listeners, dispatch, metrics).
    pub front: ccm_front::FrontTier,
    /// The backend behind the dispatch seam.
    pub backend: Arc<dyn ccm_front::FrontBackend>,
    /// The shared metric registry (`ccm_front_*` plus, for CCM kinds,
    /// the full `ccm_rt_*` family).
    pub registry: ccm_obs::Registry,
    middleware: Option<Arc<Middleware>>,
}

impl FrontFixture {
    /// Stop the front tier, then the cluster underneath (if any).
    pub fn shutdown(self) {
        let FrontFixture {
            front, middleware, ..
        } = self;
        front.shutdown();
        if let Some(mw) = middleware {
            match Arc::try_unwrap(mw) {
                Ok(mw) => mw.shutdown(),
                Err(_) => { /* a handle outlived us; Drop will clean up */ }
            }
        }
    }
}

/// Start a front tier over the chosen backend and dispatch policy.
///
/// Capacity parity across backends: the L2S whole-file caches get exactly
/// the CCM per-node budget, `cfg.capacity_blocks × BLOCK_SIZE` bytes.
///
/// # Panics
/// Panics if listeners cannot bind loopback sockets.
pub fn start_front(
    kind: FrontBackendKind,
    policy: ccm_front::PolicyKind,
    mut cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
) -> FrontFixture {
    use ccm_front::{CcmBackend, FrontBackend, FrontTier, L2sBackend};
    let registry = cfg.obs.clone().unwrap_or_default();
    cfg.obs = Some(registry.clone());
    let (backend, middleware): (Arc<dyn FrontBackend>, Option<Arc<Middleware>>) = match kind {
        FrontBackendKind::Ccm(lan) => {
            let cluster = start_cluster(lan, cfg, catalog, store);
            let mw = Arc::new(cluster.mw);
            (Arc::new(CcmBackend::new(mw.clone())), Some(mw))
        }
        FrontBackendKind::L2s => {
            let capacity_bytes = cfg.capacity_blocks as u64 * ccm_core::BLOCK_SIZE;
            (
                Arc::new(L2sBackend::new(catalog, store, cfg.nodes, capacity_bytes)),
                None,
            )
        }
    };
    let dispatch = policy.build(&registry, backend.nodes());
    let front = FrontTier::start(backend.clone(), dispatch, registry.clone());
    FrontFixture {
        front,
        backend,
        registry,
        middleware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_fnv_matches_reference() {
        let (c1, _) = fixture(5);
        let (c2, _) = fixture(5);
        assert_eq!(c1.sizes(), c2.sizes());
        // FNV-1a of "a" is the classic reference value.
        let mut d = FNV_OFFSET;
        fnv1a(&mut d, b"a");
        assert_eq!(d, 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn churn_plans_are_deterministic_and_legal() {
        for seed in 0..16u64 {
            let a = ChurnPlan::seeded(seed, 8, 4, 400, 6);
            let b = ChurnPlan::seeded(seed, 8, 4, 400, 6);
            assert_eq!(a.events, b.events, "seed {seed}: plan not deterministic");
            // Replay the schedule against a model member table: every event
            // must be legal at its point in the sequence.
            let mut member: Vec<bool> = (0..8).map(|i| i < 4).collect();
            let mut prev = 0;
            for &(op, ev) in &a.events {
                assert!(op >= prev, "seed {seed}: events out of order");
                assert!(op < 400, "seed {seed}: event past the end of the run");
                prev = op;
                match ev {
                    ChurnEvent::Join(n) => {
                        assert!(!member[n.index()], "seed {seed}: joining a member");
                        member[n.index()] = true;
                    }
                    ChurnEvent::Leave(n) | ChurnEvent::Crash(n) => {
                        assert_ne!(n.index(), 0, "seed {seed}: slot 0 must stay up");
                        assert!(member[n.index()], "seed {seed}: removing a non-member");
                        member[n.index()] = false;
                    }
                }
                assert!(
                    member.iter().filter(|&&m| m).count() >= 2,
                    "seed {seed}: fewer than two live members"
                );
            }
        }
    }

    #[test]
    fn both_backends_spin_up_and_serve() {
        let (catalog, store) = fixture(1);
        for backend in Backend::all() {
            let cluster = start_cluster(
                backend,
                RtConfig {
                    nodes: 2,
                    capacity_blocks: 24,
                    ..RtConfig::default()
                },
                catalog.clone(),
                store.clone(),
            );
            let got = cluster.handle(NodeId(0)).read_file(FileId(0));
            assert_eq!(got, read_file_direct(&*store, &catalog, FileId(0)));
            assert_eq!(cluster.lan.is_some(), backend == Backend::Tcp);
            cluster.shutdown();
        }
    }
}
