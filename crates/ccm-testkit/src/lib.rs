//! Shared fixtures for tests that drive a *live* `ccm-rt` cluster.
//!
//! Before this crate, the cluster spin-up, the torture driver, and the
//! deterministic trace-feed/digest driver were copy-pasted across
//! `tests/chaos.rs`, `ccm-net/tests/socket_chaos.rs`, and
//! `ccm-net/tests/socket_cluster.rs`, drifting in small ways (only the
//! channel harness dumped block-path traces; only the TCP harness checked
//! wire stats). This crate is the single copy, parameterized by
//! [`Backend`]:
//!
//! * [`start_cluster`] — a middleware cluster on either LAN backend, with
//!   the `TcpLan` handle kept reachable for wire assertions.
//! * [`fixture`] — the seeded catalog + synthetic store the chaos suites
//!   share.
//! * [`run_torture`] — the fault-injection driver with both oracles
//!   (integrity vs. ground truth on every read, bit-identical replay when
//!   quiesced), now with trace-ring dumps and repair-counter
//!   reconciliation on *both* backends.
//! * [`drive`] — the deterministic single-threaded trace feed folding
//!   every delivered byte into an FNV-1a digest (the cross-backend
//!   acceptance oracle).
//!
//! This is a dev-dependency crate: it links `ccm-net` so one enum can
//! start either transport, and the resulting dev-dep cycles are fine —
//! Cargo builds libs without dev-dependencies.

#![warn(missing_docs)]

use ccm_core::{CacheStats, FileId, NodeId, ReplacementPolicy};
use ccm_net::TcpLan;
use ccm_rt::store::read_file_direct;
use ccm_rt::{
    BlockStore, Catalog, ChaosStats, DiskFaults, FaultPlan, Middleware, RtConfig, SyntheticStore,
};
use ccm_traces::Workload;
use simcore::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Which LAN carries the cluster's peer traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The in-process channel LAN (`ccm-rt`'s built-in transport).
    Channel,
    /// Real loopback TCP via `ccm-net`.
    Tcp,
}

impl Backend {
    /// Both backends, channel first.
    pub fn all() -> [Backend; 2] {
        [Backend::Channel, Backend::Tcp]
    }

    /// Label used in reports and assertion messages.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Channel => "channel",
            Backend::Tcp => "tcp",
        }
    }

    /// The fetch timeout the torture harness uses on this backend: short
    /// on the channel LAN so a dropped request degrades to disk quickly,
    /// wider over TCP so a real loopback round trip plus scheduling noise
    /// is never mistaken for a lost message.
    pub fn torture_fetch_timeout(self) -> Duration {
        match self {
            Backend::Channel => Duration::from_millis(25),
            Backend::Tcp => Duration::from_millis(100),
        }
    }
}

/// A running cluster plus (for TCP) the transport handle, so tests can
/// assert on wire statistics.
pub struct Cluster {
    /// The running middleware.
    pub mw: Middleware,
    /// The socket transport underneath, when `Backend::Tcp`.
    pub lan: Option<Arc<TcpLan>>,
}

impl Cluster {
    /// Stop all service threads and join them.
    pub fn shutdown(self) {
        self.mw.shutdown();
    }
}

impl std::ops::Deref for Cluster {
    type Target = Middleware;

    fn deref(&self) -> &Middleware {
        &self.mw
    }
}

/// Start a cluster on the chosen backend.
///
/// # Panics
/// Panics if the TCP backend cannot bind its loopback listeners.
pub fn start_cluster(
    backend: Backend,
    cfg: RtConfig,
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
) -> Cluster {
    match backend {
        Backend::Channel => Cluster {
            mw: Middleware::start(cfg, catalog, store),
            lan: None,
        },
        Backend::Tcp => {
            let lan = Arc::new(TcpLan::loopback(cfg.nodes).expect("bind loopback listeners"));
            Cluster {
                mw: Middleware::start_on(cfg, catalog, store, lan.clone()),
                lan: Some(lan),
            }
        }
    }
}

/// Build a chaos run's fixture deterministically from `seed`: a catalog of
/// small files and a synthetic store holding their ground-truth bytes.
pub fn fixture(seed: u64) -> (Catalog, Arc<SyntheticStore>) {
    let mut rng = Rng::new(seed).substream(1);
    let sizes: Vec<u64> = (0..40).map(|_| 1 + rng.next_below(24_000)).collect();
    let catalog = Catalog::new(sizes);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), seed));
    (catalog, store)
}

/// On an integrity failure, print the block-path trace ring entries for
/// the offending request ids before panicking — the hop sequence (dispatch
/// → peer fetch → fallback → serve) is the first thing a diagnosis needs.
/// Under `obs-off` the ring is compiled out and this prints nothing.
pub fn dump_trace(mw: &Middleware, reqs: &[u64]) {
    for &req in reqs {
        for ev in mw.trace().dump_for(req) {
            eprintln!("trace: {}", ev.to_json());
        }
    }
}

/// Everything observable from one torture run.
#[derive(Debug, PartialEq)]
pub struct TortureOutcome {
    /// Protocol counters at the end of the run.
    pub stats: CacheStats,
    /// Injected link faults.
    pub chaos: ChaosStats,
    /// Crash events executed.
    pub crashes: usize,
    /// Restart events executed.
    pub restarts: usize,
    /// Injected disk I/O errors absorbed by the synchronous store retry.
    pub disk_fallbacks: u64,
}

/// Drive `ops` single-threaded file reads through a faulted cluster on
/// `backend`, executing the plan's crash schedule and asserting the
/// integrity oracle on every read. With `quiesce_each_op` the data plane
/// is drained after every operation, which makes the statistics a
/// deterministic function of the seed (the replayability mode).
///
/// Every crash is reconciled against the repair counters: one
/// `node_repairs` tick, and the repair report's remaster/lost-master split
/// must match the stats delta exactly.
pub fn run_torture(
    backend: Backend,
    seed: u64,
    nodes: usize,
    ops: u64,
    quiesce_each_op: bool,
    disk: DiskFaults,
) -> TortureOutcome {
    let (catalog, store) = fixture(seed);
    let n_files = catalog.num_files() as u64;
    let plan = FaultPlan::torture(seed, nodes, ops).with_disk(disk);
    let crashes_planned = plan.crashes.clone();
    let cluster = start_cluster(
        backend,
        RtConfig {
            nodes,
            capacity_blocks: 24,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: backend.torture_fetch_timeout(),
            faults: Some(plan),
            disk: Default::default(),
            obs: None,
        },
        catalog.clone(),
        store.clone(),
    );
    let mw = &cluster.mw;

    let mut op_rng = Rng::new(seed).substream(2);
    let mut down = vec![false; nodes];
    let (mut crashes, mut restarts) = (0usize, 0usize);
    for op in 0..ops {
        for ev in &crashes_planned {
            if ev.at_op == op {
                let before = mw.stats();
                let report = mw.crash_node(ev.node);
                down[ev.node.index()] = true;
                crashes += 1;
                mw.check_invariants();
                let after = mw.stats();
                assert_eq!(after.node_repairs, before.node_repairs + 1);
                assert_eq!(
                    after.remasters + after.lost_masters,
                    before.remasters
                        + before.lost_masters
                        + (report.remastered + report.lost_masters) as u64,
                );
            }
            if ev.restart_at_op == Some(op) {
                mw.restart_node(ev.node);
                down[ev.node.index()] = false;
                restarts += 1;
                mw.check_invariants();
            }
        }
        // Route the read through a deterministic live node.
        let live: Vec<NodeId> = (0..nodes)
            .filter(|&i| !down[i])
            .map(|i| NodeId(i as u16))
            .collect();
        let node = live[op_rng.next_below(live.len() as u64) as usize];
        let file = FileId(op_rng.next_below(n_files) as u32);
        let (got, reqs) = mw.handle(node).read_file_traced(file);
        let want = read_file_direct(&*store, &catalog, file);
        if got != want {
            dump_trace(mw, &reqs);
            panic!(
                "{} seed {seed} op {op}: file {file:?} corrupted under faults \
                 (block-path trace for request ids {reqs:?} dumped above)",
                backend.name()
            );
        }
        if quiesce_each_op {
            mw.quiesce();
        }
    }
    mw.quiesce();
    mw.check_invariants();
    let out = TortureOutcome {
        stats: mw.stats(),
        chaos: mw.chaos_stats(),
        crashes,
        restarts,
        disk_fallbacks: mw.disk_error_fallbacks(),
    };
    cluster.shutdown();
    out
}

/// The shared acceptance workload: small Zipf-popular files sized so a few
/// span multiple blocks, total comfortably above one node's cache
/// capacity.
pub fn acceptance_workload() -> Workload {
    ccm_traces::SynthConfig {
        name: "socket-acceptance".into(),
        n_files: 48,
        mean_size: 9_000.0,
        total_bytes: Some(1 << 20),
        seed: 42,
        ..ccm_traces::SynthConfig::default()
    }
    .build()
}

/// The FNV-1a offset basis (the digest accumulator's initial value).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an FNV-1a digest accumulator.
#[inline]
pub fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Everything observable from one deterministic drive.
#[derive(Debug, PartialEq, Eq)]
pub struct DriveOutcome {
    /// FNV-1a digest over every delivered byte, in op order.
    pub digest: u64,
    /// Protocol counters at the end of the drive.
    pub stats: CacheStats,
    /// Store fallbacks (must be 0 for a quiesced single-threaded drive to
    /// count as deterministic).
    pub fallbacks: u64,
}

/// Drive `ops` deterministic single-threaded reads (same seed → same node
/// and file sequence, drawn from `wl`'s popularity), asserting the
/// integrity oracle on every read and folding all delivered bytes into an
/// FNV-1a digest. Quiesces after every operation so the statistics are a
/// pure function of the op history.
pub fn drive(
    mw: &Middleware,
    store: &dyn BlockStore,
    catalog: &Catalog,
    wl: &Workload,
    nodes: usize,
    ops: u64,
    seed: u64,
) -> DriveOutcome {
    let mut rng = Rng::new(seed).substream(3);
    let mut digest = FNV_OFFSET;
    for op in 0..ops {
        let node = NodeId(rng.next_below(nodes as u64) as u16);
        let file = FileId(wl.sample(&mut rng).0);
        let got = mw.handle(node).read_file(file);
        let want = read_file_direct(store, catalog, file);
        assert_eq!(got, want, "op {op}: file {file:?} corrupted");
        fnv1a(&mut digest, &got);
        mw.quiesce();
    }
    mw.check_invariants();
    DriveOutcome {
        digest,
        stats: mw.stats(),
        fallbacks: mw.store_fallbacks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic_and_fnv_matches_reference() {
        let (c1, _) = fixture(5);
        let (c2, _) = fixture(5);
        assert_eq!(c1.sizes(), c2.sizes());
        // FNV-1a of "a" is the classic reference value.
        let mut d = FNV_OFFSET;
        fnv1a(&mut d, b"a");
        assert_eq!(d, 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn both_backends_spin_up_and_serve() {
        let (catalog, store) = fixture(1);
        for backend in Backend::all() {
            let cluster = start_cluster(
                backend,
                RtConfig {
                    nodes: 2,
                    capacity_blocks: 24,
                    ..RtConfig::default()
                },
                catalog.clone(),
                store.clone(),
            );
            let got = cluster.handle(NodeId(0)).read_file(FileId(0));
            assert_eq!(got, read_file_direct(&*store, &catalog, FileId(0)));
            assert_eq!(cluster.lan.is_some(), backend == Backend::Tcp);
            cluster.shutdown();
        }
    }
}
