//! Edge-of-the-block-math serving tests, on both LAN backends: a zero-byte
//! file, a file of exactly one block, an exact multiple of the block size,
//! a one-byte tail block, and a one-byte file. Every serve must be
//! byte-identical to the backing store and account for exactly the number
//! of block accesses the catalog math predicts.

use ccm_core::block::{blocks_of_file, BLOCK_SIZE};
use ccm_core::{FileId, NodeId};
use ccm_rt::store::read_file_direct;
use ccm_rt::{Catalog, RtConfig, SyntheticStore};
use ccm_testkit::{start_cluster, Backend};
use std::sync::Arc;

/// The corner catalog: sizes chosen to sit exactly on the block-math
/// boundaries. A zero-byte file still occupies one (empty) block frame.
fn edge_sizes() -> Vec<u64> {
    vec![0, BLOCK_SIZE, 3 * BLOCK_SIZE, BLOCK_SIZE + 1, 1]
}

#[test]
fn edge_files_serve_byte_identical_on_both_backends() {
    let catalog = Catalog::new(edge_sizes());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 99));
    for backend in Backend::all() {
        let cluster = start_cluster(
            backend,
            RtConfig {
                nodes: 3,
                capacity_blocks: 16,
                ..RtConfig::default()
            },
            catalog.clone(),
            store.clone(),
        );
        for f in 0..catalog.num_files() {
            let file = FileId(f as u32);
            let want = read_file_direct(&*store, &catalog, file);
            assert_eq!(want.len() as u64, catalog.size_of(file));
            // Through every node: miss, then local or remote hit paths.
            for n in 0..3 {
                let got = cluster.handle(NodeId(n)).read_file(file);
                assert_eq!(
                    got,
                    want,
                    "{}: file {f} ({} bytes) corrupted via node {n}",
                    backend.name(),
                    want.len()
                );
            }
        }
        cluster.shutdown();
    }
}

#[test]
fn edge_files_account_for_the_exact_block_counts() {
    let catalog = Catalog::new(edge_sizes());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 99));
    // blocks_of_file is the contract the accounting must follow: an empty
    // file still has one frame, a tail byte adds a whole block.
    let expected: Vec<u64> = edge_sizes()
        .iter()
        .map(|&s| blocks_of_file(s) as u64)
        .collect();
    assert_eq!(expected, [1, 1, 3, 2, 1]);

    for backend in Backend::all() {
        let cluster = start_cluster(
            backend,
            RtConfig {
                nodes: 3,
                capacity_blocks: 16,
                ..RtConfig::default()
            },
            catalog.clone(),
            store.clone(),
        );
        for (f, want_blocks) in expected.iter().enumerate() {
            let file = FileId(f as u32);
            let before = cluster.stats().accesses();
            let got = cluster.handle(NodeId(0)).read_file(file);
            cluster.quiesce();
            assert_eq!(
                cluster.stats().accesses() - before,
                *want_blocks,
                "{}: file {f} must cost exactly {want_blocks} block accesses",
                backend.name()
            );
            assert_eq!(got.len() as u64, catalog.size_of(file));
        }
        assert_eq!(cluster.store_fallbacks(), 0);
        cluster.check_invariants();
        cluster.shutdown();
    }
}
