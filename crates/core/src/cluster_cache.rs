//! The whole-cluster cooperative cache: access, eviction, and forwarding.
//!
//! [`ClusterCache`] holds every node's cache, the global directory, and the
//! global logical clock, and implements the paper's algorithm (§3) as one
//! atomic state machine:
//!
//! 1. A request for block `b` at node `n` is a **local hit** if `n` caches a
//!    copy (master or replica).
//! 2. Otherwise the directory locates the master `bₘ`. If some peer `m`
//!    holds it, `n` fetches a non-master copy from `m` (**remote hit**).
//! 3. If no master is in memory, `n` reads `b` from its home node's disk and
//!    becomes the new master holder (**disk read**).
//! 4. Inserting into a full cache evicts one block chosen by the
//!    [`ReplacementPolicy`]. An evicted replica is dropped. An evicted master
//!    is dropped if it is the oldest block in the system; otherwise it is
//!    **forwarded** to the peer holding the system's oldest block, which
//!    drops its own oldest block to make room. "(1) blocks forwarded to
//!    peers do not cause cascaded evictions, and (2) … a forwarded block
//!    [younger than everything at its destination] is dropped."
//!
//! State changes are applied at decision time, matching the paper's
//! optimistic assumptions (perfect, free, instantaneous directory and
//! global-age knowledge). The *costs* of what happened are returned to the
//! caller as an [`AccessOutcome`], which the simulator converts into CPU,
//! network, and disk events, and the threaded runtime converts into real
//! messages.

use crate::admission::{Admission, AdmissionConfig, AdmissionStats};
use crate::block::{BlockId, NodeId};
use crate::directory::{DirectoryKind, HintDirectory, HintStats, PerfectDirectory};
use crate::node_cache::{CopyKind, NodeCache};
use crate::policy::ReplacementPolicy;
use crate::stats::CacheStats;
use simcore::FxHashMap;

/// Configuration of a cluster cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Per-node capacity in 8 KB block frames.
    pub capacity_blocks: usize,
    /// Replacement policy (the paper's -Basic vs. master-preserving).
    pub policy: ReplacementPolicy,
    /// Perfect directory (paper's assumption) or hint-based (§6).
    pub directory: DirectoryKind,
    /// Serving a peer's fetch refreshes the master's age (true matches the
    /// global-LRU reading of "age of last access"; setting false ages masters
    /// by *local* use only — an ablation knob).
    pub touch_master_on_remote: bool,
    /// Extension (not in the paper): when a globally-oldest master would be
    /// dropped while replicas of it survive elsewhere, promote one replica to
    /// master instead of losing memory residency.
    pub promote_on_master_drop: bool,
    /// With a hint directory: how many wasted hops a request may chase
    /// through stale hint chains before falling back to the authoritative
    /// home-node path (Sarkar & Hartman forwarding bound).
    pub hint_max_hops: usize,
    /// Replica-admission filter for scan resistance (`None` — the paper's
    /// behavior — admits every remote hit as a replica). See
    /// [`AdmissionConfig`].
    pub admission: Option<AdmissionConfig>,
}

impl CacheConfig {
    /// The paper's configuration for a given cluster size, per-node memory,
    /// and policy.
    pub fn paper(nodes: usize, capacity_blocks: usize, policy: ReplacementPolicy) -> CacheConfig {
        CacheConfig {
            nodes,
            capacity_blocks,
            policy,
            directory: DirectoryKind::Perfect,
            touch_master_on_remote: true,
            promote_on_master_drop: false,
            hint_max_hops: 3,
            admission: None,
        }
    }
}

/// What happened to the block a node had to evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The victim was dropped from cluster memory (replica, or globally
    /// oldest master).
    Dropped,
    /// A dropped master was rescued by promoting a surviving replica at
    /// `holder` (extension; see [`CacheConfig::promote_on_master_drop`]).
    DroppedWithPromotion {
        /// The node whose replica became the new master.
        holder: NodeId,
    },
    /// The victim master was forwarded to `to`.
    Forwarded {
        /// The peer holding the system's oldest block.
        to: NodeId,
        /// The block the destination dropped to make room (never causes a
        /// further eviction), if it was full.
        displaced: Option<(BlockId, CopyKind)>,
        /// True if the destination already held a replica of the forwarded
        /// block and promoted it in place instead of storing a second copy.
        merged_with_replica: bool,
    },
}

/// Effects of a whole-block write (§6 extension); see
/// [`ClusterCache::write`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Nodes whose replica copies were invalidated (one message each).
    pub invalidated: Vec<NodeId>,
    /// The node whose master copy was superseded, if the writer was not
    /// already the master holder and a master existed.
    pub superseded_master: Option<NodeId>,
    /// Eviction at the writer to make room, if the block was not resident.
    pub eviction: Option<EvictionEffect>,
    /// What the writer held before the write.
    pub prior: Option<CopyKind>,
}

/// Result of offering a read-ahead block to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// An in-memory copy already existed; the disk need not read this block
    /// (it also ends the contiguous read-ahead run).
    AlreadyPresent,
    /// Installed as a master at the requester.
    Installed {
        /// Eviction performed to make room, if any.
        eviction: Option<EvictionEffect>,
    },
}

/// What a directory repair after a node failure did; see
/// [`ClusterCache::fail_node`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Masters of the failed node re-mastered from a surviving replica.
    pub remastered: usize,
    /// Masters of the failed node lost from cluster memory entirely (no
    /// surviving replica); the blocks degrade to disk-only.
    pub lost_masters: usize,
    /// Replica copies held by the failed node purged from the holder lists.
    pub replicas_purged: usize,
}

/// Side effects of making room for one incoming block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEffect {
    /// The evicted block.
    pub victim: BlockId,
    /// What kind of copy it was at the evictor.
    pub victim_kind: CopyKind,
    /// Where it went.
    pub disposition: Disposition,
}

/// The result of one block access, with everything the caller must charge
/// time for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The requesting node already cached the block.
    LocalHit {
        /// Master or replica.
        kind: CopyKind,
    },
    /// Fetched a copy from the master holder `from`.
    RemoteHit {
        /// The peer that served the block.
        from: NodeId,
        /// Eviction performed at the requester to make room, if any.
        eviction: Option<EvictionEffect>,
        /// With a hint directory: a stale hint sent us to this node first
        /// (one wasted round trip).
        wasted_hop: Option<NodeId>,
        /// False if the admission filter served the block without caching a
        /// replica (always true with admission off).
        admitted: bool,
    },
    /// No master in memory: the block must be read from its home disk; the
    /// requester becomes the new master holder.
    DiskRead {
        /// Eviction performed at the requester to make room, if any.
        eviction: Option<EvictionEffect>,
        /// With a hint directory: a stale hint cost one wasted round trip.
        wasted_hop: Option<NodeId>,
    },
}

impl AccessOutcome {
    /// The eviction side effect, if any.
    pub fn eviction(&self) -> Option<EvictionEffect> {
        match self {
            AccessOutcome::LocalHit { .. } => None,
            AccessOutcome::RemoteHit { eviction, .. }
            | AccessOutcome::DiskRead { eviction, .. } => *eviction,
        }
    }
}

enum Directory {
    Perfect(PerfectDirectory),
    Hint(HintDirectory),
}

/// The cluster-wide cooperative cache state machine.
///
/// ```
/// use ccm_core::{AccessOutcome, BlockId, CacheConfig, ClusterCache, FileId,
///                NodeId, ReplacementPolicy};
///
/// let mut cache = ClusterCache::new(CacheConfig::paper(
///     2, 16, ReplacementPolicy::MasterPreserving));
/// let block = BlockId::new(FileId(7), 0);
///
/// // First access anywhere: a disk read; node 0 becomes the master holder.
/// assert!(matches!(cache.access(NodeId(0), block),
///                  AccessOutcome::DiskRead { .. }));
/// // A peer's access is served from node 0's memory.
/// assert!(matches!(cache.access(NodeId(1), block),
///                  AccessOutcome::RemoteHit { from: NodeId(0), .. }));
/// // And the peer now holds its own (non-master) copy.
/// assert!(matches!(cache.access(NodeId(1), block),
///                  AccessOutcome::LocalHit { .. }));
/// ```
pub struct ClusterCache {
    cfg: CacheConfig,
    nodes: Vec<NodeCache>,
    dir: Directory,
    /// Replica locations per block; maintained for the promotion extension
    /// and for invariant checking. Entries are kept sorted by node id.
    replica_holders: FxHashMap<BlockId, Vec<NodeId>>,
    /// Forwards each master has survived without being referenced (only
    /// maintained under an N-chance policy; Dahlin's recirculation count).
    recirculation: FxHashMap<BlockId, u32>,
    /// Nodes currently crashed: excluded from forwarding targets and kept
    /// empty until [`ClusterCache::revive_node`].
    down: Vec<bool>,
    /// Wasted hops of the most recent hint-chain resolution (empty under a
    /// perfect directory or after a correct/missing hint). The runtime
    /// drains this with [`ClusterCache::take_hint_trail`] to perform the
    /// real wasted round trips; `AccessOutcome` stays `Copy` and carries
    /// only the first hop.
    hint_trail: Vec<NodeId>,
    /// Replica-admission filter, if configured (see [`AdmissionConfig`]).
    admission: Option<Admission>,
    tick: u64,
    stats: CacheStats,
}

impl ClusterCache {
    /// Build an empty cluster cache.
    ///
    /// # Panics
    /// Panics if the cluster has no nodes or nodes have no capacity.
    pub fn new(cfg: CacheConfig) -> ClusterCache {
        assert!(cfg.nodes > 0, "empty cluster");
        let nodes = (0..cfg.nodes)
            .map(|_| NodeCache::new(cfg.capacity_blocks))
            .collect();
        let dir = match cfg.directory {
            DirectoryKind::Perfect => Directory::Perfect(PerfectDirectory::new()),
            DirectoryKind::Hint => Directory::Hint(HintDirectory::new(cfg.nodes)),
        };
        let down = vec![false; cfg.nodes];
        let admission = cfg.admission.map(|a| Admission::new(a, cfg.nodes));
        ClusterCache {
            cfg,
            nodes,
            dir,
            replica_holders: FxHashMap::default(),
            recirculation: FxHashMap::default(),
            down,
            hint_trail: Vec::new(),
            admission,
            tick: 0,
            stats: CacheStats::new(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Admission-filter decision counters (zeroes with admission off).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission
            .as_ref()
            .map(|a| a.stats())
            .unwrap_or_default()
    }

    /// Hint-directory accuracy statistics (zeroes under a perfect directory).
    pub fn hint_stats(&self) -> HintStats {
        match &self.dir {
            Directory::Perfect(_) => HintStats::default(),
            Directory::Hint(h) => h.stats(),
        }
    }

    /// One node's cache (read-only view).
    pub fn node(&self, n: NodeId) -> &NodeCache {
        &self.nodes[n.index()]
    }

    /// The current logical tick (advances once per access).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Where the master of `block` lives right now, if anywhere (truth,
    /// regardless of directory kind).
    pub fn master_location(&self, block: BlockId) -> Option<NodeId> {
        match &self.dir {
            Directory::Perfect(d) => d.lookup(block),
            Directory::Hint(h) => h.truth(block),
        }
    }

    fn dir_set(&mut self, block: BlockId, node: NodeId) {
        match &mut self.dir {
            Directory::Perfect(d) => d.set(block, node),
            Directory::Hint(h) => h.set(block, node),
        }
    }

    fn dir_clear(&mut self, block: BlockId, witness: NodeId) {
        match &mut self.dir {
            Directory::Perfect(d) => d.clear(block),
            Directory::Hint(h) => h.clear(block, witness),
        }
    }

    fn dir_gossip(&mut self, learner: NodeId, block: BlockId, holder: NodeId) {
        if let Directory::Hint(h) = &mut self.dir {
            h.gossip(learner, block, holder);
        }
    }

    fn holders_add(&mut self, block: BlockId, node: NodeId) {
        let v = self.replica_holders.entry(block).or_default();
        match v.binary_search(&node) {
            Ok(_) => debug_assert!(false, "duplicate replica holder"),
            Err(pos) => v.insert(pos, node),
        }
    }

    fn holders_remove(&mut self, block: BlockId, node: NodeId) {
        if let Some(v) = self.replica_holders.get_mut(&block) {
            if let Ok(pos) = v.binary_search(&node) {
                v.remove(pos);
            }
            if v.is_empty() {
                self.replica_holders.remove(&block);
            }
        }
    }

    /// Access `block` from `node`, mutating cluster state and reporting what
    /// the caller must charge for. Each call advances the global LRU clock.
    pub fn access(&mut self, node: NodeId, block: BlockId) -> AccessOutcome {
        debug_assert!(!self.down[node.index()], "access through a down node");
        self.tick += 1;
        self.hint_trail.clear();
        let tick = self.tick;
        let n = node.index();

        let limited = self.cfg.policy.forward_limit() != u32::MAX;

        // 1. Local hit?
        if let Some(kind) = self.nodes[n].touch(block, tick) {
            self.stats.local_hits += 1;
            if limited {
                // A reference resets the N-chance recirculation count.
                self.recirculation.remove(&block);
            }
            return AccessOutcome::LocalHit { kind };
        }

        // 2. Consult the directory. Under hints this chases a bounded chain
        // of possibly-stale hints (charging one wasted hop per wrong node)
        // before falling back to the authoritative path; the full trail is
        // parked in `hint_trail` for the runtime to replay as real messages.
        let max_hops = self.cfg.hint_max_hops;
        let (master_at, wasted_hop) = match &mut self.dir {
            Directory::Perfect(d) => (d.lookup(block), None),
            Directory::Hint(h) => {
                let r = h.resolve_from(node, block, max_hops);
                let first = r.hops.first().copied();
                self.hint_trail = r.hops;
                (r.master, first)
            }
        };

        match master_at {
            Some(m) => {
                debug_assert_ne!(m, node, "master here should have been a local hit");
                self.stats.remote_hits += 1;
                // The fetch is a message pair: piggyback hint exchange on it.
                if let Directory::Hint(h) = &mut self.dir {
                    h.exchange(node, m);
                }
                if self.cfg.touch_master_on_remote {
                    let touched = self.nodes[m.index()].touch(block, tick);
                    debug_assert_eq!(touched, Some(CopyKind::Master));
                }
                if limited {
                    self.recirculation.remove(&block);
                }
                // Replica-admission seam: a one-touch block is served but
                // not cached, so a sequential scan cannot displace the warm
                // set. Protocol state other than the requester's replica is
                // untouched either way.
                let admitted = match &mut self.admission {
                    Some(a) => a.admit(n, block),
                    None => true,
                };
                let eviction = if admitted {
                    let eviction = self.make_room(node);
                    self.nodes[n].insert(block, CopyKind::Replica, tick);
                    self.holders_add(block, node);
                    eviction
                } else {
                    None
                };
                AccessOutcome::RemoteHit {
                    from: m,
                    eviction,
                    wasted_hop,
                    admitted,
                }
            }
            None => {
                self.stats.disk_reads += 1;
                let eviction = self.make_room(node);
                self.nodes[n].insert(block, CopyKind::Master, tick);
                self.dir_set(block, node);
                AccessOutcome::DiskRead {
                    eviction,
                    wasted_hop,
                }
            }
        }
    }

    /// The peer (≠ `exclude`) holding the system's oldest block, with that
    /// age. Ties break toward the lowest node id, deterministically.
    fn peer_with_oldest(&self, exclude: usize) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, cache) in self.nodes.iter().enumerate() {
            if i == exclude || self.down[i] {
                continue;
            }
            let age = cache.oldest_age();
            if age == u64::MAX {
                continue; // empty node: nothing older there
            }
            if best.is_none_or(|(_, a)| age < a) {
                best = Some((i, age));
            }
        }
        best
    }

    /// Free one frame at `node` if it is full. At most one block moves and at
    /// most one further block is dropped (no cascaded evictions).
    fn make_room(&mut self, node: NodeId) -> Option<EvictionEffect> {
        let n = node.index();
        if !self.nodes[n].is_full() {
            return None;
        }
        let (victim, kind, age) = self
            .cfg
            .policy
            .victim(&self.nodes[n])
            .expect("full cache has a victim");

        match kind {
            CopyKind::Replica => {
                self.nodes[n].remove(victim);
                self.holders_remove(victim, node);
                self.stats.evict_drops += 1;
                Some(EvictionEffect {
                    victim,
                    victim_kind: kind,
                    disposition: Disposition::Dropped,
                })
            }
            CopyKind::Master => {
                // Second chance: forward unless globally oldest — and, under
                // N-chance, unless the block has exhausted its recirculation
                // count without being referenced.
                let limit = self.cfg.policy.forward_limit();
                let exhausted = limit != u32::MAX
                    && self.recirculation.get(&victim).copied().unwrap_or(0) >= limit;
                match self.peer_with_oldest(n) {
                    Some((peer, peer_age)) if peer_age < age && !exhausted => {
                        self.nodes[n].remove(victim);
                        if limit != u32::MAX {
                            *self.recirculation.entry(victim).or_insert(0) += 1;
                        }
                        let disposition = self.deliver_forward(victim, age, peer, node);
                        self.stats.forwards += 1;
                        Some(EvictionEffect {
                            victim,
                            victim_kind: kind,
                            disposition,
                        })
                    }
                    _ => {
                        // Globally oldest (or out of chances): leaves memory.
                        self.nodes[n].remove(victim);
                        self.recirculation.remove(&victim);
                        self.stats.evict_drops += 1;
                        self.stats.master_drops += 1;
                        let disposition = if self.cfg.promote_on_master_drop {
                            self.try_promote_survivor(victim, node)
                        } else {
                            self.dir_clear(victim, node);
                            Disposition::Dropped
                        };
                        Some(EvictionEffect {
                            victim,
                            victim_kind: kind,
                            disposition,
                        })
                    }
                }
            }
        }
    }

    /// Deliver a forwarded master (with its original `age`) to `peer`.
    /// `evictor` learns the new location (it performed the send), keeping
    /// hint-directory staleness to third parties only.
    fn deliver_forward(
        &mut self,
        block: BlockId,
        age: u64,
        peer: usize,
        evictor: NodeId,
    ) -> Disposition {
        let peer_id = NodeId(peer as u16);

        // Destination already holds a replica: merge instead of duplicating.
        if self.nodes[peer].lookup(block) == Some(CopyKind::Replica) {
            self.nodes[peer].promote_replica(block, age);
            self.holders_remove(block, peer_id);
            self.dir_set(block, peer_id);
            self.dir_gossip(evictor, block, peer_id);
            self.stats.promotions += 1;
            return Disposition::Forwarded {
                to: peer_id,
                displaced: None,
                merged_with_replica: true,
            };
        }

        // Paper rule (2): if everything at the destination is now younger,
        // the forwarded block is dropped. (Cannot fire in the atomic model —
        // the peer was chosen for holding an older block — but the
        // message-passing runtime can race into it.)
        if self.nodes[peer].oldest_age() >= age {
            self.dir_clear(block, peer_id);
            self.stats.forward_drops += 1;
            self.stats.master_drops += 1;
            return Disposition::Dropped;
        }

        // Paper rule (1): make room by dropping the destination's oldest —
        // never triggering another forward (no cascades).
        let displaced = if self.nodes[peer].is_full() {
            let (d_block, d_kind, _) = self.nodes[peer].oldest().expect("full cache non-empty");
            self.nodes[peer].remove(d_block);
            self.stats.destination_drops += 1;
            match d_kind {
                CopyKind::Master => {
                    self.stats.master_drops += 1;
                    self.recirculation.remove(&d_block);
                    self.dir_clear(d_block, peer_id);
                }
                CopyKind::Replica => self.holders_remove(d_block, peer_id),
            }
            Some((d_block, d_kind))
        } else {
            None
        };

        self.nodes[peer].insert_forwarded_master(block, age);
        self.dir_set(block, peer_id);
        self.dir_gossip(evictor, block, peer_id);
        Disposition::Forwarded {
            to: peer_id,
            displaced,
            merged_with_replica: false,
        }
    }

    /// Extension: rescue a dropped master by promoting a surviving replica.
    fn try_promote_survivor(&mut self, block: BlockId, witness: NodeId) -> Disposition {
        let holder = self
            .replica_holders
            .get(&block)
            .and_then(|v| v.first().copied());
        match holder {
            Some(h) => {
                let age = self.nodes[h.index()]
                    .age_of(block)
                    .expect("holder list out of sync");
                self.nodes[h.index()].promote_replica(block, age);
                self.holders_remove(block, h);
                self.dir_set(block, h);
                self.stats.promotions += 1;
                Disposition::DroppedWithPromotion { holder: h }
            }
            None => {
                self.dir_clear(block, witness);
                Disposition::Dropped
            }
        }
    }

    /// Perform a whole-block write at `node` — the write protocol the paper
    /// leaves as future work (§6), in its simplest coherent form for a
    /// single-writer-at-a-time block:
    ///
    /// 1. every replica of the block at other nodes is **invalidated**;
    /// 2. the old master copy (wherever it is) is superseded — the writer
    ///    becomes the new master holder (a whole-block overwrite needs no
    ///    old data, so nothing is fetched);
    /// 3. the directory moves to the writer.
    ///
    /// Returns what the caller must pay for: invalidation messages, the
    /// superseded master's location, and any eviction at the writer.
    /// Dirty-block write-back policy is the caller's concern (the threaded
    /// runtime writes through to its backing store).
    pub fn write(&mut self, node: NodeId, block: BlockId) -> WriteOutcome {
        debug_assert!(!self.down[node.index()], "write through a down node");
        self.tick += 1;
        let tick = self.tick;
        let n = node.index();
        self.stats.writes += 1;

        // 1. Invalidate replicas everywhere else.
        let holders = self.replica_holders.remove(&block).unwrap_or_default();
        let mut invalidated = Vec::new();
        for h in holders {
            if h == node {
                // The writer's own replica is upgraded below, not invalidated;
                // put it back in the holder map until then.
                let v = self.replica_holders.entry(block).or_default();
                v.push(h);
                continue;
            }
            let removed = self.nodes[h.index()].remove(block);
            debug_assert_eq!(removed.map(|(k, _)| k), Some(CopyKind::Replica));
            self.stats.invalidations += 1;
            invalidated.push(h);
        }

        // 2. Supersede the old master and install the writer's copy.
        let prior = self.nodes[n].lookup(block);
        let old_master = self.master_location(block);
        let superseded_master = match prior {
            Some(CopyKind::Master) => {
                // In-place overwrite; refresh recency.
                self.nodes[n].touch(block, tick);
                None
            }
            Some(CopyKind::Replica) => {
                // Upgrade our replica: it becomes the (fresh) master.
                self.nodes[n].remove(block);
                self.holders_remove(block, node);
                if let Some(m) = old_master {
                    self.nodes[m.index()].remove(block);
                    self.stats.invalidations += 1;
                }
                self.nodes[n].insert(block, CopyKind::Master, tick);
                self.dir_set(block, node);
                old_master
            }
            None => {
                if let Some(m) = old_master {
                    self.nodes[m.index()].remove(block);
                    self.stats.invalidations += 1;
                }
                let eviction = self.make_room(node);
                self.nodes[n].insert(block, CopyKind::Master, tick);
                self.dir_set(block, node);
                return WriteOutcome {
                    invalidated,
                    superseded_master: old_master,
                    eviction,
                    prior: None,
                };
            }
        };
        if self.cfg.policy.forward_limit() != u32::MAX {
            self.recirculation.remove(&block);
        }
        WriteOutcome {
            invalidated,
            superseded_master,
            eviction: None,
            prior,
        }
    }

    /// Install a block read by extent read-ahead: the home disk read past the
    /// demanded block to the end of its 64 KB extent ("a reasonable system
    /// would likely implement some form of … caching, and/or prefetching",
    /// paper §5), and the requester becomes master holder of the extra
    /// blocks too. No-op (returns `None` with no state change) if the block
    /// already has an in-memory master anywhere or is resident at `node`;
    /// otherwise behaves like the tail of a disk-read access: evict if full,
    /// insert as master at the current tick, update the directory. Not
    /// counted as an access.
    pub fn install_prefetched(&mut self, node: NodeId, block: BlockId) -> PrefetchOutcome {
        if self.master_location(block).is_some() || self.nodes[node.index()].lookup(block).is_some()
        {
            return PrefetchOutcome::AlreadyPresent;
        }
        let eviction = self.make_room(node);
        self.nodes[node.index()].insert(block, CopyKind::Master, self.tick);
        self.dir_set(block, node);
        self.stats.prefetch_installs += 1;
        PrefetchOutcome::Installed { eviction }
    }

    /// Drain the wasted-hop trail of the most recent access (hint
    /// directories only; empty otherwise). Each listed node was visited on
    /// a stale hint's say-so and did not hold the master.
    pub fn take_hint_trail(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.hint_trail)
    }

    /// True if `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()]
    }

    /// Mark a pre-provisioned slot as not (yet) a cluster member: it is
    /// excluded from forwarding like a crashed node, but no repair happens
    /// and no failure statistics are charged. Used by dynamic membership to
    /// size the cluster at capacity while starting with a smaller active
    /// set; [`ClusterCache::revive_node`] activates the slot later.
    ///
    /// # Panics
    /// Panics if the slot is already down or holds blocks.
    pub fn deactivate_slot(&mut self, node: NodeId) {
        let n = node.index();
        assert!(!self.down[n], "slot {node:?} is already down");
        assert!(self.nodes[n].is_empty(), "deactivating a non-empty slot");
        self.down[n] = true;
    }

    /// Repair the cluster state after `node` crashed, losing its memory.
    ///
    /// Every copy the node held vanishes. Its replicas are purged from the
    /// holder lists. Each of its masters is re-mastered onto the first
    /// surviving replica holder (deterministic: lowest node id) or, with no
    /// surviving replica, cleared from the directory — the block degrades to
    /// disk-only until the next read re-creates a master. Until
    /// [`ClusterCache::revive_node`], the node is excluded from forwarding
    /// so no new state accrues at it.
    ///
    /// # Panics
    /// Panics if the node is already down.
    pub fn fail_node(&mut self, node: NodeId) -> RepairReport {
        self.fail_node_with_moves(node).0
    }

    /// Like [`ClusterCache::fail_node`], additionally reporting where each
    /// of the failed node's masters was re-mastered: `(block, survivor)`
    /// pairs, in the failed node's iteration order. Write-back recovery uses
    /// this to find which survivor holds the bytes of a dirty block.
    pub fn fail_node_with_moves(&mut self, node: NodeId) -> (RepairReport, Vec<(BlockId, NodeId)>) {
        let n = node.index();
        assert!(!self.down[n], "node {node:?} is already down");
        self.down[n] = true;
        let contents: Vec<(BlockId, CopyKind)> = self.nodes[n]
            .iter()
            .map(|(block, kind, _)| (block, kind))
            .collect();
        let mut report = RepairReport::default();
        let mut moves = Vec::new();
        for (block, kind) in contents {
            self.nodes[n].remove(block);
            match kind {
                CopyKind::Replica => {
                    self.holders_remove(block, node);
                    report.replicas_purged += 1;
                }
                CopyKind::Master => {
                    self.recirculation.remove(&block);
                    // Down nodes hold nothing (purged when they failed), so
                    // every listed holder is a live candidate.
                    let survivor = self
                        .replica_holders
                        .get(&block)
                        .and_then(|v| v.first().copied());
                    match survivor {
                        Some(h) => {
                            let age = self.nodes[h.index()]
                                .age_of(block)
                                .expect("holder list out of sync");
                            self.nodes[h.index()].promote_replica(block, age);
                            self.holders_remove(block, h);
                            self.dir_set(block, h);
                            self.stats.promotions += 1;
                            report.remastered += 1;
                            moves.push((block, h));
                        }
                        None => {
                            self.dir_clear(block, node);
                            report.lost_masters += 1;
                        }
                    }
                }
            }
        }
        self.stats.node_repairs += 1;
        self.stats.remasters += report.remastered as u64;
        self.stats.lost_masters += report.lost_masters as u64;
        (report, moves)
    }

    /// Rejoin a previously failed node with a cold cache.
    ///
    /// # Panics
    /// Panics if the node is not down.
    pub fn revive_node(&mut self, node: NodeId) {
        let n = node.index();
        assert!(self.down[n], "node {node:?} is not down");
        debug_assert!(self.nodes[n].is_empty(), "down node accrued state");
        self.down[n] = false;
    }

    /// Deterministic hash used to shard blocks over the live set for
    /// re-mastering on membership changes (FNV-1a over the block id).
    fn block_shard(block: BlockId) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in block
            .file
            .0
            .to_le_bytes()
            .into_iter()
            .chain(block.index.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Live (up) nodes in ascending id order.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| !self.down[i])
            .map(|i| NodeId(i as u16))
            .collect()
    }

    /// Re-master a deterministic ~1/n share of the cluster's blocks onto a
    /// freshly joined (live, cold) node: every master whose shard hash maps
    /// to the joiner under the new live set moves there, keeping its age,
    /// until the joiner is full. Returns the moved blocks with their *old*
    /// holders so the runtime can ship the bytes after them.
    ///
    /// # Panics
    /// Panics if the joiner is down or not cold.
    pub fn rebalance_on_join(&mut self, joiner: NodeId) -> Vec<(BlockId, NodeId)> {
        assert!(!self.down[joiner.index()], "joiner must be revived first");
        assert!(self.nodes[joiner.index()].is_empty(), "joiner must be cold");
        let live = self.live_nodes();
        let rank = live
            .iter()
            .position(|&n| n == joiner)
            .expect("joiner is live");
        // Snapshot all masters in deterministic (block) order.
        let mut masters: Vec<(BlockId, NodeId)> = match &self.dir {
            Directory::Perfect(d) => d.iter().collect(),
            Directory::Hint(_) => (0..self.nodes.len())
                .flat_map(|i| {
                    self.nodes[i]
                        .iter()
                        .filter(|(_, k, _)| *k == CopyKind::Master)
                        .map(move |(b, _, _)| (b, NodeId(i as u16)))
                })
                .collect(),
        };
        masters.sort_unstable_by_key(|&(b, _)| b);
        let mut moved = Vec::new();
        for (block, holder) in masters {
            if holder == joiner {
                continue;
            }
            if self.nodes[joiner.index()].is_full() {
                break;
            }
            if Self::block_shard(block) % live.len() as u64 != rank as u64 {
                continue;
            }
            // The joiner is cold, so it cannot hold a replica to merge with;
            // move the master keeping its age (it must not look fresh).
            let (kind, age) = self.nodes[holder.index()]
                .remove(block)
                .expect("directory points at a non-resident master");
            debug_assert_eq!(kind, CopyKind::Master);
            self.nodes[joiner.index()].insert_forwarded_master(block, age);
            self.dir_set(block, joiner);
            self.dir_gossip(holder, block, joiner);
            self.stats.remasters += 1;
            moved.push((block, holder));
        }
        moved
    }

    /// Gracefully retire `node` from the cluster (planned leave, as opposed
    /// to [`ClusterCache::fail_node`]'s crash): its replicas are purged, and
    /// each of its masters is preserved — promoted onto a surviving replica
    /// holder when one exists, otherwise handed off (with its age) to the
    /// live peer with the most free frames, displacing that peer's oldest
    /// block if it is full (never cascading). The node ends down and empty.
    /// Returns the handed-off blocks with their new holders so the runtime
    /// can ship the bytes; promoted masters need no byte movement.
    ///
    /// # Panics
    /// Panics if the node is already down or is the last live node.
    pub fn retire_node(&mut self, node: NodeId) -> Vec<(BlockId, NodeId)> {
        let n = node.index();
        assert!(!self.down[n], "node {node:?} is already down");
        self.down[n] = true;
        assert!(
            self.down.iter().any(|&d| !d),
            "cannot retire the last live node"
        );
        let contents: Vec<(BlockId, CopyKind, u64)> = self.nodes[n].iter().collect();
        let mut moved = Vec::new();
        for (block, kind, age) in contents {
            self.nodes[n].remove(block);
            match kind {
                CopyKind::Replica => {
                    self.holders_remove(block, node);
                }
                CopyKind::Master => {
                    self.recirculation.remove(&block);
                    let survivor = self
                        .replica_holders
                        .get(&block)
                        .and_then(|v| v.first().copied());
                    if let Some(h) = survivor {
                        let age = self.nodes[h.index()]
                            .age_of(block)
                            .expect("holder list out of sync");
                        self.nodes[h.index()].promote_replica(block, age);
                        self.holders_remove(block, h);
                        self.dir_set(block, h);
                        self.stats.promotions += 1;
                        self.stats.remasters += 1;
                        continue;
                    }
                    // No surviving replica: hand the master off to the live
                    // peer with the most free room (ties to the lowest id).
                    let peer = self
                        .live_nodes()
                        .into_iter()
                        .max_by_key(|p| {
                            let c = &self.nodes[p.index()];
                            (c.capacity() - c.len(), std::cmp::Reverse(p.index()))
                        })
                        .expect("a live peer exists");
                    let p = peer.index();
                    if self.nodes[p].is_full() {
                        let (d_block, d_kind, _) =
                            self.nodes[p].oldest().expect("full cache non-empty");
                        self.nodes[p].remove(d_block);
                        self.stats.destination_drops += 1;
                        match d_kind {
                            CopyKind::Master => {
                                self.stats.master_drops += 1;
                                self.recirculation.remove(&d_block);
                                self.dir_clear(d_block, peer);
                            }
                            CopyKind::Replica => self.holders_remove(d_block, peer),
                        }
                    }
                    self.nodes[p].insert_forwarded_master(block, age);
                    self.dir_set(block, peer);
                    self.dir_gossip(node, block, peer);
                    self.stats.remasters += 1;
                    moved.push((block, peer));
                }
            }
        }
        moved
    }

    /// Total blocks resident across the cluster.
    pub fn resident_blocks(&self) -> usize {
        self.nodes.iter().map(|c| c.len()).sum()
    }

    /// Total master copies resident across the cluster.
    pub fn resident_masters(&self) -> usize {
        self.nodes.iter().map(|c| c.num_masters()).sum()
    }

    /// Full-state invariant check (O(cluster contents); tests only).
    ///
    /// Verifies: per-node structural invariants; at most one master per
    /// block, consistent with the directory in both directions; replica
    /// holder lists exact.
    pub fn check_invariants(&self) {
        let mut seen_masters: FxHashMap<BlockId, NodeId> = FxHashMap::default();
        let mut seen_replicas: FxHashMap<BlockId, Vec<NodeId>> = FxHashMap::default();
        for (i, cache) in self.nodes.iter().enumerate() {
            cache.check_invariants();
            assert!(
                !self.down[i] || cache.is_empty(),
                "down node {i} still holds blocks"
            );
            for (block, kind, _) in cache.iter() {
                match kind {
                    CopyKind::Master => {
                        let prev = seen_masters.insert(block, NodeId(i as u16));
                        assert!(prev.is_none(), "two masters for {block:?}");
                    }
                    CopyKind::Replica => {
                        seen_replicas
                            .entry(block)
                            .or_default()
                            .push(NodeId(i as u16));
                    }
                }
            }
        }
        for (&block, &holder) in seen_masters.iter() {
            assert_eq!(
                self.master_location(block),
                Some(holder),
                "directory missing/incorrect for {block:?}"
            );
        }
        // Directory must not point at phantom masters.
        let dir_len = match &self.dir {
            Directory::Perfect(d) => d.len(),
            Directory::Hint(h) => h.len(),
        };
        assert_eq!(dir_len, seen_masters.len(), "directory has phantom entries");
        // Replica holder lists exact.
        assert_eq!(
            self.replica_holders.len(),
            seen_replicas.len(),
            "replica holder key mismatch"
        );
        for (block, mut nodes) in seen_replicas {
            nodes.sort();
            assert_eq!(
                self.replica_holders.get(&block),
                Some(&nodes),
                "holder list mismatch for {block:?}"
            );
        }
    }

    /// Quiescent-state convergence audit (tests; O(masters × live nodes)).
    ///
    /// On top of [`ClusterCache::check_invariants`], verifies the hint
    /// directory's headline property at a quiescent point: every live node
    /// can locate every resident master through at most one bounded
    /// forwarding chain, and — because lazy correction rode that chain's
    /// reply — a second resolution from the same node is hint-exact (zero
    /// wasted hops). Under the perfect directory this is just the invariant
    /// check.
    ///
    /// Mutates hint tables and accuracy statistics (every resolution
    /// teaches its participants), so callers comparing [`HintStats`] across
    /// runs must capture them *before* auditing.
    pub fn audit_hint_convergence(&mut self) {
        self.check_invariants();
        let masters: Vec<(BlockId, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, cache)| {
                cache
                    .iter()
                    .filter(|&(_, kind, _)| kind == CopyKind::Master)
                    .map(|(block, _, _)| (block, NodeId(i as u16)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let live = self.live_nodes();
        let max_hops = self.cfg.hint_max_hops;
        if let Directory::Hint(h) = &mut self.dir {
            for &(block, master) in &masters {
                for &node in &live {
                    let first = h.resolve_from(node, block, max_hops);
                    assert_eq!(
                        first.master,
                        Some(master),
                        "hint resolution diverged from truth for {block:?} at {node:?}"
                    );
                    let second = h.resolve_from(node, block, max_hops);
                    assert_eq!(second.master, Some(master));
                    assert!(
                        second.hops.is_empty(),
                        "stale hint for {block:?} at {node:?} survived a forwarding chain"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    fn cluster(nodes: usize, cap: usize, policy: ReplacementPolicy) -> ClusterCache {
        ClusterCache::new(CacheConfig::paper(nodes, cap, policy))
    }

    #[test]
    fn first_access_is_disk_read_and_creates_master() {
        let mut c = cluster(2, 4, ReplacementPolicy::GlobalLru);
        match c.access(NodeId(0), b(1)) {
            AccessOutcome::DiskRead { eviction: None, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.master_location(b(1)), Some(NodeId(0)));
        assert_eq!(c.node(NodeId(0)).lookup(b(1)), Some(CopyKind::Master));
        assert_eq!(c.stats().disk_reads, 1);
        c.check_invariants();
    }

    #[test]
    fn second_access_same_node_is_local_hit() {
        let mut c = cluster(2, 4, ReplacementPolicy::GlobalLru);
        c.access(NodeId(0), b(1));
        match c.access(NodeId(0), b(1)) {
            AccessOutcome::LocalHit {
                kind: CopyKind::Master,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().local_hits, 1);
    }

    #[test]
    fn peer_access_is_remote_hit_and_creates_replica() {
        let mut c = cluster(2, 4, ReplacementPolicy::GlobalLru);
        c.access(NodeId(0), b(1));
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::RemoteHit {
                from,
                eviction: None,
                ..
            } => {
                assert_eq!(from, NodeId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), Some(CopyKind::Replica));
        // Master stays where it was.
        assert_eq!(c.master_location(b(1)), Some(NodeId(0)));
        assert_eq!(c.stats().remote_hits, 1);
        c.check_invariants();
    }

    #[test]
    fn replica_hit_is_local() {
        let mut c = cluster(2, 4, ReplacementPolicy::GlobalLru);
        c.access(NodeId(0), b(1));
        c.access(NodeId(1), b(1)); // replica at node 1
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::LocalHit {
                kind: CopyKind::Replica,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eviction_drops_replica_first_under_master_preserving() {
        let mut c = cluster(2, 2, ReplacementPolicy::MasterPreserving);
        // Node 0: master b1 (via disk), replica b2 (master made at node 1).
        c.access(NodeId(0), b(1));
        c.access(NodeId(1), b(2));
        c.access(NodeId(0), b(2)); // replica of b2 at node 0; cache now full
                                   // New block: must evict. Master-preserving drops the replica b2 even
                                   // though the master b1 is older.
        let out = c.access(NodeId(0), b(3));
        let ev = out.eviction().expect("eviction expected");
        assert_eq!(ev.victim, b(2));
        assert_eq!(ev.victim_kind, CopyKind::Replica);
        assert_eq!(ev.disposition, Disposition::Dropped);
        assert_eq!(c.node(NodeId(0)).lookup(b(1)), Some(CopyKind::Master));
        c.check_invariants();
    }

    #[test]
    fn global_lru_evicts_oldest_master_and_forwards() {
        let mut c = cluster(2, 2, ReplacementPolicy::GlobalLru);
        // Node 1 gets an old block so it is the forward target.
        c.access(NodeId(1), b(9)); // tick 1: node 1 master b9 (oldest in system)
        c.access(NodeId(0), b(1)); // tick 2: node 0 master b1
        c.access(NodeId(0), b(2)); // tick 3: node 0 master b2; node 0 full
                                   // tick 4: node 0 needs room; victim = b1 (master, age 2). Node 1's
                                   // oldest (age 1) is older, so b1 is forwarded to node 1.
        let out = c.access(NodeId(0), b(3));
        let ev = out.eviction().expect("eviction");
        assert_eq!(ev.victim, b(1));
        assert_eq!(ev.victim_kind, CopyKind::Master);
        match ev.disposition {
            Disposition::Forwarded {
                to,
                displaced,
                merged_with_replica,
            } => {
                assert_eq!(to, NodeId(1));
                assert_eq!(displaced, None, "node 1 had spare room");
                assert!(!merged_with_replica);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.master_location(b(1)), Some(NodeId(1)));
        assert_eq!(c.stats().forwards, 1);
        c.check_invariants();
    }

    #[test]
    fn forward_displaces_destinations_oldest_without_cascade() {
        let mut c = cluster(2, 2, ReplacementPolicy::GlobalLru);
        c.access(NodeId(1), b(9)); // tick 1 (will be displaced)
        c.access(NodeId(1), b(8)); // tick 2; node 1 now full
        c.access(NodeId(0), b(1)); // tick 3
        c.access(NodeId(0), b(2)); // tick 4; node 0 full
        let out = c.access(NodeId(0), b(3)); // evict b1 (age 3) -> forward to node 1
        let ev = out.eviction().unwrap();
        match ev.disposition {
            Disposition::Forwarded { to, displaced, .. } => {
                assert_eq!(to, NodeId(1));
                // Node 1's oldest (b9, master) is dropped — even though it is
                // a master, per the no-cascade rule.
                assert_eq!(displaced, Some((b(9), CopyKind::Master)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            c.master_location(b(9)),
            None,
            "displaced master left memory"
        );
        assert_eq!(c.master_location(b(1)), Some(NodeId(1)));
        assert_eq!(c.stats().destination_drops, 1);
        c.check_invariants();
    }

    #[test]
    fn globally_oldest_master_is_dropped_not_forwarded() {
        let mut c = cluster(2, 2, ReplacementPolicy::GlobalLru);
        c.access(NodeId(0), b(1)); // tick 1: oldest in system
        c.access(NodeId(0), b(2)); // tick 2
        c.access(NodeId(1), b(3)); // tick 3 (peer holds only younger blocks)
        let out = c.access(NodeId(0), b(4)); // victim b1 age 1; peer oldest age 3
        let ev = out.eviction().unwrap();
        assert_eq!(ev.victim, b(1));
        assert_eq!(ev.disposition, Disposition::Dropped);
        assert_eq!(c.master_location(b(1)), None);
        assert_eq!(c.stats().master_drops, 1);
        // A later access anywhere must go to disk again.
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::DiskRead { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn forward_onto_existing_replica_merges() {
        let mut c = cluster(2, 3, ReplacementPolicy::GlobalLru);
        c.access(NodeId(0), b(1)); // t1: master b1 at node 0
        c.access(NodeId(1), b(1)); // t2: replica b1 at node 1
                                   // Age node 1's replica below node 0's later blocks, then force node 0
                                   // to forward master b1 to node 1.
        c.access(NodeId(0), b(2)); // t3
        c.access(NodeId(0), b(3)); // t4; node 0 full: b1(t2-touch? no: master touched at t2), b2, b3
                                   // Node 0's LRU: b1 was touched at t2 (remote serve touches master).
        let out = c.access(NodeId(0), b(4)); // victim = b1 (master, age t2); peer oldest = replica b1 age t2
                                             // Peer's oldest age == victim age → NOT older → drop instead of forward.
        let ev = out.eviction().unwrap();
        assert_eq!(ev.victim, b(1));
        // With equal ages the master is globally oldest-tied; it must drop.
        assert_eq!(ev.disposition, Disposition::Dropped);
        c.check_invariants();

        // Now construct a true merge: rebuild with distinct ages.
        let mut c = cluster(2, 3, ReplacementPolicy::GlobalLru);
        c.access(NodeId(1), b(7)); // t1: node 1 old block
        c.access(NodeId(0), b(1)); // t2: master b1 at 0
        c.access(NodeId(1), b(1)); // t3: replica b1 at 1; master age now t3
        c.access(NodeId(0), b(2)); // t4
        c.access(NodeId(0), b(3)); // t5; node 0 full (b1@t3, b2, b3)
        let out = c.access(NodeId(0), b(4)); // victim b1 master age t3; peer oldest b7@t1 older → forward
        let ev = out.eviction().unwrap();
        match ev.disposition {
            Disposition::Forwarded {
                to,
                merged_with_replica,
                displaced,
            } => {
                assert_eq!(to, NodeId(1));
                assert!(merged_with_replica, "should merge with resident replica");
                assert_eq!(displaced, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), Some(CopyKind::Master));
        assert_eq!(c.master_location(b(1)), Some(NodeId(1)));
        assert_eq!(c.stats().promotions, 1);
        c.check_invariants();
    }

    #[test]
    fn promotion_extension_rescues_dropped_master() {
        let mut cfg = CacheConfig::paper(2, 2, ReplacementPolicy::GlobalLru);
        cfg.promote_on_master_drop = true;
        let mut c = ClusterCache::new(cfg);
        c.access(NodeId(0), b(1)); // t1 master at 0
        c.access(NodeId(1), b(1)); // t2 replica at 1 (master touched t2)
        c.access(NodeId(1), b(2)); // t3: node 1 full (replica b1, master b2)
        c.access(NodeId(0), b(3)); // t4: node 0 full (master b1@t2, master b3)
                                   // Force node 0 to evict b1: is it globally oldest? node 1 oldest =
                                   // replica b1 @ t2 — ages tie, so b1 drops... to get a strict drop we
                                   // need victim to be globally oldest. It ties; peer_age < age is false
                                   // → drop path → promotion extension fires on surviving replica at 1.
        let out = c.access(NodeId(0), b(4));
        let ev = out.eviction().unwrap();
        assert_eq!(ev.victim, b(1));
        match ev.disposition {
            Disposition::DroppedWithPromotion { holder } => assert_eq!(holder, NodeId(1)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.master_location(b(1)), Some(NodeId(1)));
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), Some(CopyKind::Master));
        c.check_invariants();
    }

    #[test]
    fn master_preserving_fills_memory_with_distinct_masters() {
        // 4 nodes x 8 frames; 32 distinct blocks touched round-robin from
        // different nodes, then re-touched. Under master-preserving, all 32
        // masters must be resident (memory first holds the working set).
        let mut c = cluster(4, 8, ReplacementPolicy::MasterPreserving);
        for round in 0..4 {
            for i in 0..32 {
                let node = NodeId((i % 4) as u16);
                let _ = c.access(node, b(i));
                let _ = round;
            }
        }
        assert_eq!(c.resident_masters(), 32, "all masters resident");
        assert_eq!(c.resident_blocks(), 32, "no room wasted on replicas");
        c.check_invariants();
    }

    #[test]
    fn stats_accumulate_consistently() {
        let mut c = cluster(3, 4, ReplacementPolicy::MasterPreserving);
        for i in 0..50u32 {
            c.access(NodeId((i % 3) as u16), b(i % 10));
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 50);
        assert!(s.local_hits + s.remote_hits + s.disk_reads == 50);
        c.check_invariants();
    }

    #[test]
    fn hint_directory_reports_wasted_hops() {
        let mut cfg = CacheConfig::paper(3, 2, ReplacementPolicy::GlobalLru);
        cfg.directory = DirectoryKind::Hint;
        let mut c = ClusterCache::new(cfg);
        // Node 2 learns b1 is at node 0.
        c.access(NodeId(0), b(1)); // t1 master at 0
        c.access(NodeId(2), b(1)); // t2: NoHint lookup; learns at 0
                                   // Meanwhile make the master move to node 1 via forwarding.
        c.access(NodeId(1), b(9)); // t3 old block at node 1
        c.access(NodeId(0), b(2)); // t4 node 0 full (b1@t2, b2@t4)
        let _ = c.access(NodeId(0), b(3)); // evict b1 → forwarded to node 1? b1 age t2 vs node1 oldest t3 — t3 > t2 so b1 is globally oldest → dropped.
                                           // Accept either path; what we test is that a stale hint eventually
                                           // yields a wasted hop:
        let loc = c.master_location(b(1));
        // Evict node 2's replica of b1 so its next access is not a local hit.
        c.access(NodeId(2), b(5)); // fills node 2
        let _ = c.access(NodeId(2), b(6)); // evicts oldest at node 2 (replica b1)
        assert_eq!(c.node(NodeId(2)).lookup(b(1)), None);
        match c.access(NodeId(2), b(1)) {
            AccessOutcome::DiskRead { wasted_hop, .. } => {
                if loc.is_none() {
                    assert_eq!(wasted_hop, Some(NodeId(0)), "stale hint should cost a hop");
                }
            }
            AccessOutcome::RemoteHit { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.hint_stats().lookups > 0);
        c.check_invariants();
    }

    #[test]
    fn nchance_drops_master_after_exhausting_chances() {
        // chances = 1: a master may be forwarded once; the next eviction
        // without an intervening reference drops it.
        let mut c = cluster(3, 1, ReplacementPolicy::NChance { chances: 1 });
        c.access(NodeId(2), b(9)); // t1: node 2 holds the system's oldest
        c.access(NodeId(0), b(1)); // t2: master b1 at node 0 (cap 1: full)
                                   // t3: new block at node 0 evicts b1 -> forwarded (chance 1 used).
        let out = c.access(NodeId(0), b(2));
        match out.eviction().unwrap().disposition {
            Disposition::Forwarded { .. } => {}
            other => panic!("expected first forward, got {other:?}"),
        }
        // b1 now sits wherever it was forwarded. Force another eviction of
        // it without referencing it: fill its holder again.
        let holder = c.master_location(b(1)).expect("b1 still in memory");
        let out = c.access(holder, b(3)); // holder evicts b1 again
        let ev = out.eviction().unwrap();
        assert_eq!(ev.victim, b(1));
        assert_eq!(
            ev.disposition,
            Disposition::Dropped,
            "second unreferenced eviction must drop under 1-chance"
        );
        assert_eq!(c.master_location(b(1)), None);
        c.check_invariants();
    }

    #[test]
    fn nchance_reference_resets_the_count() {
        let mut c = cluster(3, 1, ReplacementPolicy::NChance { chances: 1 });
        c.access(NodeId(2), b(9)); // old block at node 2
        c.access(NodeId(0), b(1)); // master b1 at node 0
        c.access(NodeId(0), b(2)); // forwards b1 (chance used)
        let holder = c.master_location(b(1)).expect("in memory");
        // Reference b1 remotely: resets its recirculation count...
        let other = NodeId(if holder == NodeId(1) { 0 } else { 1 });
        c.access(other, b(1));
        // ...so the next eviction may forward it again rather than drop.
        let out = c.access(holder, b(4));
        if out.eviction().map(|e| e.victim) == Some(b(1)) {
            // Only assert when b1 was indeed the victim at the holder.
            match out.eviction().unwrap().disposition {
                Disposition::Forwarded { .. } | Disposition::Dropped => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        c.check_invariants();
    }

    #[test]
    fn write_to_unseen_block_creates_master() {
        let mut c = cluster(2, 4, ReplacementPolicy::MasterPreserving);
        let out = c.write(NodeId(1), b(5));
        assert_eq!(out.prior, None);
        assert_eq!(out.superseded_master, None);
        assert!(out.invalidated.is_empty());
        assert_eq!(c.master_location(b(5)), Some(NodeId(1)));
        assert_eq!(c.stats().writes, 1);
        c.check_invariants();
    }

    #[test]
    fn write_invalidates_replicas_and_supersedes_master() {
        let mut c = cluster(3, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1)); // master at 0
        c.access(NodeId(1), b(1)); // replica at 1
        c.access(NodeId(2), b(1)); // replica at 2
                                   // Node 2 writes: its replica upgrades; 0's master superseded; 1's
                                   // replica invalidated.
        let out = c.write(NodeId(2), b(1));
        assert_eq!(out.prior, Some(CopyKind::Replica));
        assert_eq!(out.superseded_master, Some(NodeId(0)));
        assert_eq!(out.invalidated, vec![NodeId(1)]);
        assert_eq!(c.master_location(b(1)), Some(NodeId(2)));
        assert_eq!(c.node(NodeId(0)).lookup(b(1)), None);
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), None);
        assert_eq!(c.node(NodeId(2)).lookup(b(1)), Some(CopyKind::Master));
        assert_eq!(c.stats().invalidations, 2);
        c.check_invariants();
    }

    #[test]
    fn write_by_master_holder_is_in_place() {
        let mut c = cluster(2, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1));
        c.access(NodeId(1), b(1)); // replica at 1
        let out = c.write(NodeId(0), b(1));
        assert_eq!(out.prior, Some(CopyKind::Master));
        assert_eq!(out.superseded_master, None);
        assert_eq!(out.invalidated, vec![NodeId(1)]);
        assert_eq!(c.master_location(b(1)), Some(NodeId(0)));
        c.check_invariants();
    }

    #[test]
    fn read_after_write_hits_the_new_master() {
        let mut c = cluster(3, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1));
        c.write(NodeId(2), b(1));
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::RemoteHit { from, .. } => assert_eq!(from, NodeId(2)),
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn fail_node_remasters_from_surviving_replica() {
        let mut c = cluster(3, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1)); // master at 0
        c.access(NodeId(1), b(1)); // replica at 1
        c.access(NodeId(0), b(2)); // master at 0, no replica anywhere
        let report = c.fail_node(NodeId(0));
        assert_eq!(report.remastered, 1, "b1 re-mastered at node 1");
        assert_eq!(report.lost_masters, 1, "b2 lost with node 0");
        assert_eq!(report.replicas_purged, 0);
        assert!(c.is_down(NodeId(0)));
        assert_eq!(c.master_location(b(1)), Some(NodeId(1)));
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), Some(CopyKind::Master));
        assert_eq!(c.master_location(b(2)), None);
        assert!(c.node(NodeId(0)).is_empty());
        let s = c.stats();
        assert_eq!(s.node_repairs, 1);
        assert_eq!(s.remasters, 1);
        assert_eq!(s.lost_masters, 1);
        c.check_invariants();
        // A lost block reads from disk again, mastered by the reader.
        match c.access(NodeId(2), b(2)) {
            AccessOutcome::DiskRead { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn fail_node_purges_its_replicas() {
        let mut c = cluster(3, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1)); // master at 0
        c.access(NodeId(1), b(1)); // replica at 1
        c.access(NodeId(2), b(1)); // replica at 2
        let report = c.fail_node(NodeId(1));
        assert_eq!(report.replicas_purged, 1);
        assert_eq!(report.remastered, 0);
        assert_eq!(report.lost_masters, 0);
        // Master untouched; node 2's replica still valid.
        assert_eq!(c.master_location(b(1)), Some(NodeId(0)));
        assert_eq!(c.node(NodeId(2)).lookup(b(1)), Some(CopyKind::Replica));
        c.check_invariants();
    }

    #[test]
    fn down_node_is_not_a_forward_target() {
        let mut c = cluster(2, 2, ReplacementPolicy::GlobalLru);
        c.access(NodeId(1), b(9)); // t1: node 1 holds the system's oldest
        c.access(NodeId(0), b(1)); // t2
        c.access(NodeId(0), b(2)); // t3; node 0 full
        c.fail_node(NodeId(1));
        // Without the down-check, b1 (not globally oldest on ages alone)
        // would forward to node 1; it must drop instead.
        let out = c.access(NodeId(0), b(3));
        let ev = out.eviction().expect("eviction");
        assert_eq!(ev.victim, b(1));
        assert_eq!(ev.disposition, Disposition::Dropped);
        assert!(c.node(NodeId(1)).is_empty());
        c.check_invariants();
    }

    #[test]
    fn revived_node_rejoins_cold_and_works() {
        let mut c = cluster(2, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(1), b(1));
        c.fail_node(NodeId(1));
        c.revive_node(NodeId(1));
        assert!(!c.is_down(NodeId(1)));
        assert!(c.node(NodeId(1)).is_empty(), "rejoin must be cold");
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::DiskRead { .. } => {} // its old master died with it
            other => panic!("unexpected {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_panics() {
        let mut c = cluster(2, 4, ReplacementPolicy::MasterPreserving);
        c.fail_node(NodeId(1));
        c.fail_node(NodeId(1));
    }

    #[test]
    fn join_rebalances_a_deterministic_share() {
        let mut c = cluster(4, 16, ReplacementPolicy::MasterPreserving);
        c.deactivate_slot(NodeId(3)); // slot 3 provisioned but not a member
        for i in 0..24 {
            c.access(NodeId((i % 3) as u16), b(i));
        }
        assert!(c.node(NodeId(3)).is_empty());
        c.revive_node(NodeId(3));
        let moved = c.rebalance_on_join(NodeId(3));
        assert!(!moved.is_empty(), "joiner must absorb some masters");
        for &(block, old) in &moved {
            assert_eq!(c.master_location(block), Some(NodeId(3)));
            assert_ne!(old, NodeId(3));
        }
        assert_eq!(c.node(NodeId(3)).num_masters(), moved.len());
        c.check_invariants();
        // Re-running the same history yields the same move set.
        let mut c2 = cluster(4, 16, ReplacementPolicy::MasterPreserving);
        c2.deactivate_slot(NodeId(3));
        for i in 0..24 {
            c2.access(NodeId((i % 3) as u16), b(i));
        }
        c2.revive_node(NodeId(3));
        assert_eq!(c2.rebalance_on_join(NodeId(3)), moved);
    }

    #[test]
    fn retire_preserves_masters() {
        let mut c = cluster(3, 8, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(2), b(1)); // master at 2, no replica
        c.access(NodeId(2), b(2)); // master at 2
        c.access(NodeId(0), b(2)); // replica of b2 at 0
        c.access(NodeId(0), b(3)); // master at 0 (stays put)
        let before = c.resident_masters();
        let moved = c.retire_node(NodeId(2));
        assert!(c.is_down(NodeId(2)));
        assert!(c.node(NodeId(2)).is_empty());
        // b2 re-mastered from node 0's replica (no bytes move); b1 handed
        // off to a live peer (bytes must follow).
        assert_eq!(c.master_location(b(2)), Some(NodeId(0)));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, b(1));
        assert_eq!(c.master_location(b(1)), Some(moved[0].1));
        assert_eq!(c.resident_masters(), before, "no master lost on leave");
        c.check_invariants();
    }

    #[test]
    fn hint_trail_is_exposed_and_bounded() {
        let mut cfg = CacheConfig::paper(4, 8, ReplacementPolicy::MasterPreserving);
        cfg.directory = DirectoryKind::Hint;
        cfg.hint_max_hops = 2;
        let mut c = ClusterCache::new(cfg);
        c.access(NodeId(0), b(1)); // master at 0
        c.access(NodeId(2), b(1)); // node 2 learns: at 0 (replica installed)
        assert!(c.take_hint_trail().is_empty(), "no stale hint yet");
        c.check_invariants();
    }

    #[test]
    fn audit_passes_after_arbitrary_churn() {
        let mut cfg = CacheConfig::paper(5, 8, ReplacementPolicy::MasterPreserving);
        cfg.directory = DirectoryKind::Hint;
        let mut c = ClusterCache::new(cfg);
        let mut rng = simcore::Rng::new(31);
        for _ in 0..2_000 {
            let node = NodeId(rng.next_below(5) as u16);
            let block = b(rng.next_below(60) as u32);
            c.access(node, block);
            c.take_hint_trail();
        }
        // Churn the membership through the audit as well.
        c.audit_hint_convergence();
        let moved = c.retire_node(NodeId(4));
        let _ = moved;
        c.audit_hint_convergence();
        c.revive_node(NodeId(4));
        c.rebalance_on_join(NodeId(4));
        c.audit_hint_convergence();
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut c = cluster(4, 16, ReplacementPolicy::MasterPreserving);
            let mut rng = simcore::Rng::new(77);
            for _ in 0..5_000 {
                let node = NodeId(rng.next_below(4) as u16);
                let block = b(rng.next_below(100) as u32);
                c.access(node, block);
            }
            (c.stats(), c.resident_blocks(), c.resident_masters())
        };
        assert_eq!(run(), run());
    }

    fn admission_cluster(nodes: usize, cap: usize, ghost: usize) -> ClusterCache {
        let mut cfg = CacheConfig::paper(nodes, cap, ReplacementPolicy::MasterPreserving);
        cfg.admission = Some(AdmissionConfig::new(ghost));
        ClusterCache::new(cfg)
    }

    #[test]
    fn admission_rejects_first_touch_then_admits() {
        let mut c = admission_cluster(2, 4, 8);
        c.access(NodeId(0), b(1)); // disk read at node 0: never gated
        assert_eq!(c.node(NodeId(0)).lookup(b(1)), Some(CopyKind::Master));

        // First remote hit at node 1: served, not cached.
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::RemoteHit {
                from,
                eviction: None,
                admitted: false,
                ..
            } => assert_eq!(from, NodeId(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), None);
        c.check_invariants();

        // Second remote hit: ghost hit, replica admitted.
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::RemoteHit { admitted: true, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.node(NodeId(1)).lookup(b(1)), Some(CopyKind::Replica));
        let s = c.admission_stats();
        assert_eq!((s.admitted, s.rejected, s.ghost_hits), (1, 1, 1));
        c.check_invariants();
    }

    #[test]
    fn admission_off_admits_everything() {
        let mut c = cluster(2, 4, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1));
        match c.access(NodeId(1), b(1)) {
            AccessOutcome::RemoteHit { admitted: true, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.admission_stats(), AdmissionStats::default());
    }

    #[test]
    fn scan_does_not_displace_warm_set_under_admission() {
        // Node 1's cache is full of warm replicas (masters at node 0); a
        // one-touch scan of blocks mastered at node 2 passes through node 1.
        // With admission on nothing at node 1 is displaced; with admission
        // off the same scan evicts warm replicas.
        let warm = |c: &mut ClusterCache| {
            for i in 0..8 {
                c.access(NodeId(0), b(i)); // masters at node 0
                c.access(NodeId(1), b(i)); // (rejected under admission)
                c.access(NodeId(1), b(i)); // node 1 holds a replica
            }
            for i in 100..108 {
                c.access(NodeId(2), b(i)); // scan masters at node 2
                c.access(NodeId(1), b(i)); // one-touch scan through node 1
            }
        };

        let mut on = admission_cluster(3, 8, 4);
        warm(&mut on);
        for i in 0..8 {
            assert_eq!(
                on.node(NodeId(1)).lookup(b(i)),
                Some(CopyKind::Replica),
                "scan displaced warm replica {i}"
            );
        }
        assert_eq!(on.admission_stats().rejected, 8 + 8);
        assert_eq!(on.admission_stats().ghost_hits, 8);
        on.check_invariants();

        let mut off = cluster(3, 8, ReplacementPolicy::MasterPreserving);
        warm(&mut off);
        let displaced = (0..8)
            .filter(|&i| off.node(NodeId(1)).lookup(b(i)).is_none())
            .count();
        assert!(displaced > 0, "admission-off scan should displace warm set");
        off.check_invariants();
    }

    #[test]
    fn admission_deterministic_replay() {
        let run = || {
            let mut c = admission_cluster(4, 16, 32);
            let mut rng = simcore::Rng::new(78);
            for _ in 0..5_000 {
                let node = NodeId(rng.next_below(4) as u16);
                let block = b(rng.next_below(100) as u32);
                c.access(node, block);
            }
            c.check_invariants();
            (c.stats(), c.admission_stats(), c.resident_blocks())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fail_node_with_moves_reports_remaster_targets() {
        let mut c = cluster(3, 8, ReplacementPolicy::MasterPreserving);
        c.access(NodeId(0), b(1)); // master at 0
        c.access(NodeId(1), b(1)); // replica at 1
        c.access(NodeId(0), b(2)); // master at 0, no replica
        let (report, moves) = c.fail_node_with_moves(NodeId(0));
        assert_eq!(report.remastered, 1);
        assert_eq!(report.lost_masters, 1);
        assert_eq!(moves, vec![(b(1), NodeId(1))]);
        assert_eq!(c.master_location(b(1)), Some(NodeId(1)));
        c.check_invariants();
    }
}
