//! Replica-admission control: a ghost-LRU doorkeeper for scan resistance.
//!
//! The paper's protocol admits a replica on *every* remote hit, so a
//! sequential one-touch scan (a backup, a crawler, a table walk) installs a
//! replica per scanned block and flushes the warm set out of every cache it
//! touches. The classic fix (ARC's B1 ghost list, TinyLFU's doorkeeper) is
//! to require *two* touches before a block may displace resident state:
//!
//! * The first remote hit for a block is **served but not cached** — the
//!   block id is recorded in a small per-node *ghost list* (ids only, no
//!   data, bounded FIFO).
//! * A second remote hit while the id is still in the ghost list is a
//!   **ghost hit**: the block has proven reuse, the replica is admitted,
//!   and the ghost entry is consumed.
//!
//! One-touch scan blocks never return before their ghost entry ages out, so
//! they never evict anything; genuinely re-used blocks pay one extra remote
//! fetch and are then cached as before. Master creation on a disk read is
//! *never* gated — the protocol requires a master holder for every
//! in-memory block, and filtering it would turn cluster memory off.
//!
//! The filter is deterministic (pure FIFO over the access order), so the
//! bit-identical same-seed replay oracle extends to admission-enabled runs
//! unchanged.

use crate::block::BlockId;
use simcore::FxHashMap;
use std::collections::VecDeque;

/// Configuration of the replica-admission filter (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Ghost-list capacity per node, in block ids. A scan longer than this
    /// between two touches of the same block demotes the second touch back
    /// to a first touch; sizing it at a small multiple of the node's frame
    /// count covers the reuse distances the cache itself could serve.
    pub ghost_capacity: usize,
}

impl AdmissionConfig {
    /// A filter whose per-node ghost list holds `ghost_capacity` ids.
    pub fn new(ghost_capacity: usize) -> AdmissionConfig {
        AdmissionConfig { ghost_capacity }
    }
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            ghost_capacity: 256,
        }
    }
}

/// Admission-decision counters (monotonic). Kept separate from
/// [`CacheStats`](crate::CacheStats) so protocol statistics stay
/// bit-comparable between admission-on and admission-off runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Replica admissions granted (ghost hits plus filter-off passthroughs
    /// never count here — the filter was consulted and said yes).
    pub admitted: u64,
    /// First-touch replica candidates rejected (served, not cached).
    pub rejected: u64,
    /// Admissions granted because the block was found in the ghost list.
    pub ghost_hits: u64,
}

/// One node's ghost list: a bounded FIFO of recently rejected block ids.
struct GhostList {
    present: FxHashMap<BlockId, ()>,
    order: VecDeque<BlockId>,
    capacity: usize,
}

impl GhostList {
    fn new(capacity: usize) -> GhostList {
        GhostList {
            present: FxHashMap::default(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Consume a ghost entry if present.
    fn take(&mut self, block: BlockId) -> bool {
        // The FIFO keeps a lazy tombstone: stale ids are skipped at
        // eviction time (each id is pushed at most once while present, so
        // the queue never exceeds capacity + consumed entries).
        self.present.remove(&block).is_some()
    }

    /// Record a rejected candidate, aging out the oldest beyond capacity.
    fn record(&mut self, block: BlockId) {
        if self.capacity == 0 || self.present.contains_key(&block) {
            return;
        }
        while self.present.len() >= self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.present.remove(&old);
                }
                None => break,
            }
        }
        // Drop consumed tombstones so the deque stays bounded.
        while self.order.len() >= 2 * self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.present.remove(&old);
            }
        }
        self.present.insert(block, ());
        self.order.push_back(block);
    }
}

/// The admission seam [`ClusterCache`](crate::ClusterCache) consults at
/// replica-admission time. Holds one ghost list per node plus the decision
/// counters.
pub(crate) struct Admission {
    ghosts: Vec<GhostList>,
    stats: AdmissionStats,
}

impl Admission {
    pub(crate) fn new(cfg: AdmissionConfig, nodes: usize) -> Admission {
        Admission {
            ghosts: (0..nodes)
                .map(|_| GhostList::new(cfg.ghost_capacity))
                .collect(),
            stats: AdmissionStats::default(),
        }
    }

    /// Decide whether `node` may install a replica of `block`; updates the
    /// ghost list and counters either way.
    pub(crate) fn admit(&mut self, node: usize, block: BlockId) -> bool {
        let ghost = &mut self.ghosts[node];
        if ghost.take(block) {
            self.stats.ghost_hits += 1;
            self.stats.admitted += 1;
            true
        } else {
            ghost.record(block);
            self.stats.rejected += 1;
            false
        }
    }

    pub(crate) fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    #[test]
    fn first_touch_rejected_second_touch_admitted() {
        let mut a = Admission::new(AdmissionConfig::new(4), 1);
        assert!(!a.admit(0, b(1)));
        assert!(a.admit(0, b(1)));
        let s = a.stats();
        assert_eq!((s.admitted, s.rejected, s.ghost_hits), (1, 1, 1));
        // The ghost entry was consumed: a third (post-eviction) candidacy
        // starts over.
        assert!(!a.admit(0, b(1)));
    }

    #[test]
    fn ghost_lists_are_per_node() {
        let mut a = Admission::new(AdmissionConfig::new(4), 2);
        assert!(!a.admit(0, b(1)));
        // Node 1 never saw the block: its own first touch is rejected.
        assert!(!a.admit(1, b(1)));
        assert!(a.admit(0, b(1)));
        assert!(a.admit(1, b(1)));
    }

    #[test]
    fn scan_ages_ghosts_out() {
        let mut a = Admission::new(AdmissionConfig::new(2), 1);
        assert!(!a.admit(0, b(1)));
        // Two younger rejects evict b1's ghost entry...
        assert!(!a.admit(0, b(2)));
        assert!(!a.admit(0, b(3)));
        // ...so b1's second touch is a first touch again.
        assert!(!a.admit(0, b(1)));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut a = Admission::new(AdmissionConfig::new(0), 1);
        for i in 0..10 {
            assert!(!a.admit(0, b(i)));
        }
        assert_eq!(a.stats().rejected, 10);
        assert_eq!(a.stats().admitted, 0);
    }

    #[test]
    fn ghost_memory_stays_bounded() {
        let mut a = Admission::new(AdmissionConfig::new(8), 1);
        for i in 0..10_000u32 {
            a.admit(0, b(i));
        }
        assert!(a.ghosts[0].present.len() <= 8);
        assert!(a.ghosts[0].order.len() <= 16);
    }
}
