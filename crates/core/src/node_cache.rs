//! One node's block cache.
//!
//! A node cache is a fixed number of 8 KB block frames holding a mix of
//! **master** copies (the cluster's authoritative in-memory copy, tracked by
//! the global directory) and **replica** (non-master) copies fetched from
//! peers. Masters and replicas live on separate age-ordered LRU lists so that
//! every replacement-policy question the protocol asks — "what is my oldest
//! block?", "what is my oldest replica?", "do I hold any replicas at all?" —
//! is O(1).

use crate::block::BlockId;
use crate::lru::LruList;

/// Whether a cached copy is the cluster's master copy or a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// The authoritative in-memory copy; its location is in the directory.
    Master,
    /// A non-master copy fetched from a peer.
    Replica,
}

/// A single node's cache state.
#[derive(Debug, Clone)]
pub struct NodeCache {
    capacity: usize,
    masters: LruList<BlockId>,
    replicas: LruList<BlockId>,
}

impl NodeCache {
    /// A cache with room for `capacity` blocks.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — the protocol needs at least one frame.
    pub fn new(capacity: usize) -> NodeCache {
        assert!(capacity > 0, "zero-capacity node cache");
        NodeCache {
            capacity,
            masters: LruList::new(),
            replicas: LruList::new(),
        }
    }

    /// Frame capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently resident.
    pub fn len(&self) -> usize {
        self.masters.len() + self.replicas.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if every frame is occupied.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Resident master count.
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// Resident replica count.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The kind of the resident copy of `block`, if any.
    pub fn lookup(&self, block: BlockId) -> Option<CopyKind> {
        if self.masters.contains(block) {
            Some(CopyKind::Master)
        } else if self.replicas.contains(block) {
            Some(CopyKind::Replica)
        } else {
            None
        }
    }

    /// Age of the resident copy of `block`, if any.
    pub fn age_of(&self, block: BlockId) -> Option<u64> {
        self.masters
            .age_of(block)
            .or_else(|| self.replicas.age_of(block))
    }

    /// Refresh `block`'s recency to `age`. Returns the copy kind, or `None`
    /// if not resident.
    pub fn touch(&mut self, block: BlockId, age: u64) -> Option<CopyKind> {
        if self.masters.touch(block, age) {
            Some(CopyKind::Master)
        } else if self.replicas.touch(block, age) {
            Some(CopyKind::Replica)
        } else {
            None
        }
    }

    /// Insert a block at the MRU end.
    ///
    /// # Panics
    /// Panics if the cache is full (callers must evict first — eviction is a
    /// protocol decision, not a cache-local one) or the block is resident.
    pub fn insert(&mut self, block: BlockId, kind: CopyKind, age: u64) {
        assert!(!self.is_full(), "insert into full cache");
        assert!(self.lookup(block).is_none(), "double insert of {block:?}");
        match kind {
            CopyKind::Master => self.masters.push_mru(block, age),
            CopyKind::Replica => self.replicas.push_mru(block, age),
        }
    }

    /// Insert a *forwarded* master, preserving its original age (it arrives
    /// old and must not look freshly used).
    ///
    /// # Panics
    /// Panics if full or already resident as a master.
    pub fn insert_forwarded_master(&mut self, block: BlockId, age: u64) {
        assert!(!self.is_full(), "forwarded insert into full cache");
        assert!(
            !self.masters.contains(block),
            "forwarded master already resident"
        );
        self.masters.insert_by_age(block, age);
    }

    /// Remove `block`; returns `(kind, age)` if it was resident.
    pub fn remove(&mut self, block: BlockId) -> Option<(CopyKind, u64)> {
        if let Some(age) = self.masters.remove(block) {
            Some((CopyKind::Master, age))
        } else {
            self.replicas
                .remove(block)
                .map(|age| (CopyKind::Replica, age))
        }
    }

    /// Upgrade a resident replica to a master in place (used when a master is
    /// forwarded to a node that already holds a replica of the same block,
    /// and by the replica-promotion extension policy). Keeps the *newer* of
    /// the two ages.
    ///
    /// # Panics
    /// Panics if no replica of `block` is resident.
    pub fn promote_replica(&mut self, block: BlockId, forwarded_age: u64) {
        let age = self
            .replicas
            .remove(block)
            .expect("promote of non-resident replica");
        let new_age = age.max(forwarded_age);
        // Splice at age position: promotion must not refresh recency.
        self.masters.insert_by_age(block, new_age);
    }

    /// The node's oldest block across both lists: `(block, kind, age)`.
    pub fn oldest(&self) -> Option<(BlockId, CopyKind, u64)> {
        match (self.masters.peek_oldest(), self.replicas.peek_oldest()) {
            (None, None) => None,
            (Some((b, a)), None) => Some((b, CopyKind::Master, a)),
            (None, Some((b, a))) => Some((b, CopyKind::Replica, a)),
            (Some((mb, ma)), Some((rb, ra))) => {
                // Tie goes to the replica: dropping a replica is always the
                // cheaper outcome, and ties are common right after a fetch
                // (master touched and replica created on the same tick).
                if ma < ra {
                    Some((mb, CopyKind::Master, ma))
                } else {
                    Some((rb, CopyKind::Replica, ra))
                }
            }
        }
    }

    /// Age of the node's oldest block (`u64::MAX` when empty, so an empty
    /// node never looks like the global LRU victim).
    pub fn oldest_age(&self) -> u64 {
        self.oldest().map_or(u64::MAX, |(_, _, a)| a)
    }

    /// The oldest replica, if any.
    pub fn oldest_replica(&self) -> Option<(BlockId, u64)> {
        self.replicas.peek_oldest()
    }

    /// The oldest master, if any.
    pub fn oldest_master(&self) -> Option<(BlockId, u64)> {
        self.masters.peek_oldest()
    }

    /// Iterate all resident blocks (tests/diagnostics): `(block, kind, age)`.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, CopyKind, u64)> + '_ {
        self.masters
            .iter()
            .map(|(b, a)| (b, CopyKind::Master, a))
            .chain(self.replicas.iter().map(|(b, a)| (b, CopyKind::Replica, a)))
    }

    /// Structural invariants: capacity respected, no block on both lists,
    /// each list age-ordered.
    pub fn check_invariants(&self) {
        assert!(self.len() <= self.capacity, "over capacity");
        self.masters.check_invariants();
        self.replicas.check_invariants();
        for (b, _) in self.masters.iter() {
            assert!(
                !self.replicas.contains(b),
                "{b:?} resident as both master and replica"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Master, 1);
        c.insert(b(2), CopyKind::Replica, 2);
        assert_eq!(c.lookup(b(1)), Some(CopyKind::Master));
        assert_eq!(c.lookup(b(2)), Some(CopyKind::Replica));
        assert_eq!(c.lookup(b(3)), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.num_masters(), 1);
        assert_eq!(c.num_replicas(), 1);
        assert_eq!(c.remove(b(1)), Some((CopyKind::Master, 1)));
        assert_eq!(c.remove(b(1)), None);
        c.check_invariants();
    }

    #[test]
    fn oldest_spans_both_lists() {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Master, 5);
        c.insert(b(2), CopyKind::Replica, 3);
        assert_eq!(c.oldest(), Some((b(2), CopyKind::Replica, 3)));
        assert_eq!(c.oldest_age(), 3);
        c.touch(b(2), 9);
        assert_eq!(c.oldest(), Some((b(1), CopyKind::Master, 5)));
    }

    #[test]
    fn oldest_tie_prefers_replica() {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Master, 7);
        c.insert(b(2), CopyKind::Replica, 7);
        assert_eq!(c.oldest(), Some((b(2), CopyKind::Replica, 7)));
    }

    #[test]
    fn empty_cache_oldest_age_is_max() {
        let c = NodeCache::new(2);
        assert_eq!(c.oldest_age(), u64::MAX);
        assert_eq!(c.oldest(), None);
    }

    #[test]
    fn touch_reports_kind() {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Master, 1);
        assert_eq!(c.touch(b(1), 2), Some(CopyKind::Master));
        assert_eq!(c.touch(b(9), 2), None);
        assert_eq!(c.age_of(b(1)), Some(2));
    }

    #[test]
    fn forwarded_master_keeps_age_order() {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Master, 10);
        c.insert(b(2), CopyKind::Master, 20);
        c.insert_forwarded_master(b(3), 15);
        c.check_invariants();
        assert_eq!(c.oldest_master(), Some((b(1), 10)));
        // b(3) sits between 10 and 20.
        let ages: Vec<u64> = c
            .iter()
            .filter(|(_, k, _)| *k == CopyKind::Master)
            .map(|(_, _, a)| a)
            .collect();
        assert_eq!(ages, vec![20, 15, 10]);
    }

    #[test]
    fn promote_replica_moves_lists_without_refreshing() {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Replica, 8);
        c.insert(b(2), CopyKind::Master, 20);
        c.promote_replica(b(1), 5);
        assert_eq!(c.lookup(b(1)), Some(CopyKind::Master));
        assert_eq!(c.age_of(b(1)), Some(8), "keeps newer of the two ages");
        assert_eq!(c.oldest_master(), Some((b(1), 8)));
        c.check_invariants();
    }

    #[test]
    #[should_panic(expected = "full cache")]
    fn insert_into_full_panics() {
        let mut c = NodeCache::new(1);
        c.insert(b(1), CopyKind::Master, 1);
        c.insert(b(2), CopyKind::Master, 2);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        NodeCache::new(0);
    }

    #[test]
    fn fill_and_cycle() {
        let mut c = NodeCache::new(8);
        for i in 0..8 {
            c.insert(
                b(i),
                if i % 2 == 0 {
                    CopyKind::Master
                } else {
                    CopyKind::Replica
                },
                i as u64,
            );
        }
        assert!(c.is_full());
        for i in 0..8 {
            let (blk, _, _) = c.oldest().unwrap();
            assert_eq!(blk, b(i));
            c.remove(blk);
        }
        assert!(c.is_empty());
        c.check_invariants();
    }
}
