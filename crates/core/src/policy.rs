//! Replacement policy variants.
//!
//! The paper's central result is that the replacement policy — not the rest
//! of the protocol — is what separates cooperative caching from
//! locality-conscious request distribution:
//!
//! * [`ReplacementPolicy::GlobalLru`] is the classic algorithm inherited from
//!   client-side cooperative caching (Dahlin et al.; Sarkar & Hartman): evict
//!   the locally oldest block; a master that is not globally oldest gets a
//!   "second chance" by being forwarded. Under a server workload this still
//!   discards masters while duplicates of hotter blocks fill the cluster, and
//!   throughput collapses to ≈ 20 % of the locality-aware baseline (§5).
//!
//! * [`ReplacementPolicy::MasterPreserving`] is the paper's modification:
//!   "when eviction is necessary, never evict a master copy if the evicting
//!   node is still holding a non-master copy; instead, evict the oldest
//!   non-master copy. If the node is only holding master copies, then perform
//!   the global LRU eviction as before" (§5). Cluster memory fills with the
//!   distinct working set before any duplication, matching the baseline's
//!   hit rates at the cost of more remote (network) hits.
//!
//! [`ReplacementPolicy::victim`] encodes exactly this choice; everything
//! else (forwarding, no-cascade, drop-if-youngest) is shared and lives in
//! [`crate::cluster_cache`].

use crate::block::BlockId;
use crate::node_cache::{CopyKind, NodeCache};

/// Which copy a node sacrifices when it must free a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Approximate global LRU with unlimited master second-chance forwarding
    /// (the paper's "-Basic", traditional server-side cooperative caching).
    GlobalLru,
    /// Classic client-side cooperative caching (Dahlin et al., OSDI '94):
    /// like global LRU, but a master is only re-forwarded `chances` times
    /// before it is dropped; a local reference resets the count. The
    /// lineage the paper's algorithm descends from — included as a third
    /// baseline for the `ext_nchance` ablation.
    NChance {
        /// Forwards a master survives without being referenced (Dahlin's
        /// recirculation count; 2 in the original paper).
        chances: u8,
    },
    /// Never evict a master while holding any replica (the paper's winning
    /// variant).
    #[default]
    MasterPreserving,
}

impl ReplacementPolicy {
    /// Short label used in figures and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::GlobalLru => "global-lru",
            ReplacementPolicy::NChance { .. } => "n-chance",
            ReplacementPolicy::MasterPreserving => "master-preserving",
        }
    }

    /// Choose the eviction victim for `cache`: `(block, kind, age)`.
    /// Returns `None` only for an empty cache.
    pub fn victim(self, cache: &NodeCache) -> Option<(BlockId, CopyKind, u64)> {
        match self {
            ReplacementPolicy::GlobalLru | ReplacementPolicy::NChance { .. } => cache.oldest(),
            ReplacementPolicy::MasterPreserving => {
                if let Some((block, age)) = cache.oldest_replica() {
                    Some((block, CopyKind::Replica, age))
                } else {
                    cache.oldest()
                }
            }
        }
    }

    /// How many times an unreferenced master may be forwarded before it is
    /// dropped (`u32::MAX` = unlimited).
    pub fn forward_limit(self) -> u32 {
        match self {
            ReplacementPolicy::NChance { chances } => chances as u32,
            _ => u32::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    fn mixed_cache() -> NodeCache {
        let mut c = NodeCache::new(4);
        c.insert(b(1), CopyKind::Master, 1); // the globally oldest thing here
        c.insert(b(2), CopyKind::Replica, 2);
        c.insert(b(3), CopyKind::Master, 3);
        c
    }

    #[test]
    fn global_lru_takes_oldest_regardless_of_kind() {
        let c = mixed_cache();
        let (blk, kind, age) = ReplacementPolicy::GlobalLru.victim(&c).unwrap();
        assert_eq!((blk, kind, age), (b(1), CopyKind::Master, 1));
    }

    #[test]
    fn master_preserving_prefers_replica_even_if_younger() {
        let c = mixed_cache();
        let (blk, kind, age) = ReplacementPolicy::MasterPreserving.victim(&c).unwrap();
        assert_eq!((blk, kind, age), (b(2), CopyKind::Replica, 2));
    }

    #[test]
    fn master_preserving_falls_back_to_global_lru() {
        let mut c = NodeCache::new(4);
        c.insert(b(2), CopyKind::Master, 2);
        c.insert(b(1), CopyKind::Master, 5);
        let (blk, kind, _) = ReplacementPolicy::MasterPreserving.victim(&c).unwrap();
        assert_eq!((blk, kind), (b(2), CopyKind::Master));
    }

    #[test]
    fn empty_cache_has_no_victim() {
        let c = NodeCache::new(1);
        assert!(ReplacementPolicy::GlobalLru.victim(&c).is_none());
        assert!(ReplacementPolicy::MasterPreserving.victim(&c).is_none());
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            ReplacementPolicy::GlobalLru.label(),
            ReplacementPolicy::MasterPreserving.label()
        );
        assert_ne!(
            ReplacementPolicy::NChance { chances: 2 }.label(),
            ReplacementPolicy::GlobalLru.label()
        );
    }

    #[test]
    fn nchance_picks_oldest_like_global_lru() {
        let c = mixed_cache();
        assert_eq!(
            ReplacementPolicy::NChance { chances: 2 }.victim(&c),
            ReplacementPolicy::GlobalLru.victim(&c)
        );
    }

    #[test]
    fn forward_limits() {
        assert_eq!(ReplacementPolicy::GlobalLru.forward_limit(), u32::MAX);
        assert_eq!(
            ReplacementPolicy::MasterPreserving.forward_limit(),
            u32::MAX
        );
        assert_eq!(ReplacementPolicy::NChance { chances: 2 }.forward_limit(), 2);
    }
}
