//! Protocol event counters.
//!
//! These count *protocol* events (what happened to blocks), not time — the
//! simulator keeps its own timing statistics. Figure 4 of the paper is
//! computed directly from these: local hit rate = `local_hits / accesses`,
//! remote (global) hit rate = `remote_hits / accesses`.

/// Counters for one cluster-cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block accesses where the requesting node already held a copy.
    pub local_hits: u64,
    /// Accesses served by fetching a copy from a peer's master.
    pub remote_hits: u64,
    /// Accesses that had to read the block from disk (no master in memory).
    pub disk_reads: u64,
    /// Masters forwarded to a peer on eviction (the "second chance").
    pub forwards: u64,
    /// Forwarded masters dropped on arrival because every block at the
    /// destination was younger.
    pub forward_drops: u64,
    /// Blocks dropped outright on eviction (replicas, or globally oldest
    /// masters).
    pub evict_drops: u64,
    /// Of `evict_drops`, how many were master copies leaving memory entirely.
    pub master_drops: u64,
    /// Blocks dropped at a forward destination to make room (never cascades).
    pub destination_drops: u64,
    /// Replicas upgraded to master in place (forward landed on a node already
    /// holding a replica, or the replica-promotion extension fired).
    pub promotions: u64,
    /// Blocks installed by extent read-ahead (not counted as accesses).
    pub prefetch_installs: u64,
    /// Whole-block writes performed (§6 extension; not counted as accesses).
    pub writes: u64,
    /// Copies invalidated at other nodes by writes.
    pub invalidations: u64,
    /// Directory repairs after node failures (`ClusterCache::fail_node`).
    pub node_repairs: u64,
    /// Masters of failed nodes re-mastered from a surviving replica.
    pub remasters: u64,
    /// Masters of failed nodes lost from cluster memory (no surviving
    /// replica; the block degrades to disk-only until next read).
    pub lost_masters: u64,
    /// Reads that fell through to the backing store because the data plane
    /// had not caught up with a protocol decision (in-flight races, lost
    /// messages, dead peers). Maintained by the threaded runtime, not by
    /// `ClusterCache` itself.
    pub store_fallbacks: u64,
}

impl CacheStats {
    /// Zeroed counters.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Total block accesses.
    pub fn accesses(&self) -> u64 {
        self.local_hits + self.remote_hits + self.disk_reads
    }

    /// Fraction of accesses served from the requesting node's own memory.
    pub fn local_hit_rate(&self) -> f64 {
        ratio(self.local_hits, self.accesses())
    }

    /// Fraction of accesses served from a peer's memory.
    pub fn remote_hit_rate(&self) -> f64 {
        ratio(self.remote_hits, self.accesses())
    }

    /// Fraction of accesses served from cluster memory at all — the paper's
    /// headline hit rate (Figure 4 stacks local + remote).
    pub fn total_hit_rate(&self) -> f64 {
        ratio(self.local_hits + self.remote_hits, self.accesses())
    }

    /// Fraction of accesses that went to disk.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.disk_reads, self.accesses())
    }

    /// Element-wise difference (for windowed measurement after warm-up).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            local_hits: self.local_hits - earlier.local_hits,
            remote_hits: self.remote_hits - earlier.remote_hits,
            disk_reads: self.disk_reads - earlier.disk_reads,
            forwards: self.forwards - earlier.forwards,
            forward_drops: self.forward_drops - earlier.forward_drops,
            evict_drops: self.evict_drops - earlier.evict_drops,
            master_drops: self.master_drops - earlier.master_drops,
            destination_drops: self.destination_drops - earlier.destination_drops,
            promotions: self.promotions - earlier.promotions,
            prefetch_installs: self.prefetch_installs - earlier.prefetch_installs,
            writes: self.writes - earlier.writes,
            invalidations: self.invalidations - earlier.invalidations,
            node_repairs: self.node_repairs - earlier.node_repairs,
            remasters: self.remasters - earlier.remasters,
            lost_masters: self.lost_masters - earlier.lost_masters,
            store_fallbacks: self.store_fallbacks - earlier.store_fallbacks,
        }
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_one() {
        let s = CacheStats {
            local_hits: 10,
            remote_hits: 60,
            disk_reads: 30,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 100);
        assert!((s.local_hit_rate() - 0.10).abs() < 1e-12);
        assert!((s.remote_hit_rate() - 0.60).abs() < 1e-12);
        assert!((s.total_hit_rate() - 0.70).abs() < 1e-12);
        assert!((s.miss_rate() - 0.30).abs() < 1e-12);
        let total = s.local_hit_rate() + s.remote_hit_rate() + s.miss_rate();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.total_hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = CacheStats {
            local_hits: 5,
            remote_hits: 3,
            disk_reads: 2,
            forwards: 1,
            ..CacheStats::default()
        };
        let late = CacheStats {
            local_hits: 15,
            remote_hits: 13,
            disk_reads: 12,
            forwards: 11,
            ..CacheStats::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.local_hits, 10);
        assert_eq!(d.remote_hits, 10);
        assert_eq!(d.disk_reads, 10);
        assert_eq!(d.forwards, 10);
        assert_eq!(d.accesses(), 30);
    }

    #[test]
    fn delta_covers_repair_counters() {
        let early = CacheStats {
            node_repairs: 1,
            remasters: 2,
            lost_masters: 3,
            store_fallbacks: 4,
            ..CacheStats::default()
        };
        let late = CacheStats {
            node_repairs: 3,
            remasters: 7,
            lost_masters: 4,
            store_fallbacks: 10,
            ..CacheStats::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.node_repairs, 2);
        assert_eq!(d.remasters, 5);
        assert_eq!(d.lost_masters, 1);
        assert_eq!(d.store_fallbacks, 6);
    }
}
