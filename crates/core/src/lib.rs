//! # ccm-core — the cooperative caching middleware protocol
//!
//! This crate is the paper's primary contribution: a **block-based
//! cooperative caching layer** that manages the memories of a cluster as one
//! aggregate cache (HPDC 2001, §3). It is a pure state machine — no I/O, no
//! clocks, no threads — so the same code is driven by the discrete-event
//! simulator (`ccm-webserver`) for the performance study and by the threaded
//! runtime (`ccm-rt`) as an actual middleware library.
//!
//! ## The protocol (paper §3)
//!
//! * When a block is first read from disk it becomes the **master copy**; a
//!   **global directory** records where each master lives.
//! * A node needing block `b` serves it locally if cached; otherwise it asks
//!   the directory for the master holder and fetches a **non-master copy**
//!   from it; if no master is in memory anywhere, it reads `b` from its
//!   *home node*'s disk and becomes the new master holder.
//! * Replacement approximates **global LRU**: every node knows the age of its
//!   peers' oldest blocks. An evicted non-master (or globally-oldest) block
//!   is dropped; an evicted master that is *not* globally oldest is
//!   **forwarded** to the peer holding the oldest block, which drops its own
//!   oldest block to make room. Forwarding never cascades, and a forwarded
//!   block that would be the youngest at its destination is dropped instead.
//! * The paper's key finding is a replacement modification
//!   ([`policy::ReplacementPolicy::MasterPreserving`]): *never evict a master
//!   copy while still holding any non-master copy*. This keeps cluster memory
//!   filled with the distinct working set before any block is duplicated,
//!   trading network transfers for disk reads.
//!
//! ## Layout
//!
//! * [`block`] — block/file identifiers and block-layout math.
//! * [`lru`] — the intrusive, age-ordered LRU list used by each node cache.
//! * [`node_cache`] — one node's cache: two LRU lists (masters / replicas).
//! * [`directory`] — the perfect global directory of the paper's optimistic
//!   assumptions, plus the hint-based variant of its future work (§6).
//! * [`policy`] — replacement policy variants.
//! * [`cluster_cache`] — the whole-cluster orchestrator implementing access,
//!   eviction, and forwarding; the API both front-ends drive.
//! * [`admission`] — the ghost-LRU replica-admission filter (scan
//!   resistance).
//! * [`stats`] — protocol event counters (hits, forwards, drops).

#![warn(missing_docs)]

pub mod admission;
pub mod block;
pub mod cluster_cache;
pub mod directory;
pub mod lru;
pub mod node_cache;
pub mod policy;
pub mod stats;

pub use admission::{AdmissionConfig, AdmissionStats};
pub use block::{BlockId, FileId, NodeId, BLOCK_SIZE};
pub use cluster_cache::{
    AccessOutcome, CacheConfig, ClusterCache, Disposition, EvictionEffect, PrefetchOutcome,
    RepairReport, WriteOutcome,
};
pub use directory::{DirectoryKind, HintLookup, HintResolution, HintStats};
pub use node_cache::{CopyKind, NodeCache};
pub use policy::ReplacementPolicy;
pub use stats::CacheStats;
