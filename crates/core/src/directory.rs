//! The global directory of master copies.
//!
//! The paper's simulations assume "a perfect global directory of master
//! blocks" that costs nothing to maintain (§3) — that is
//! [`PerfectDirectory`]. Its stated future work is a *hint-based* directory
//! in the style of Sarkar & Hartman, where each node keeps a private,
//! possibly-stale map of master locations that is corrected as messages flow
//! (§6, citing ~98 % location accuracy). [`HintDirectory`] implements that
//! variant: it tracks ground truth plus one hint map per node, records
//! accuracy statistics, and reports whether each lookup's first hint was
//! right — the simulator charges an extra network hop for wrong hints.

use crate::block::{BlockId, NodeId};
use simcore::FxHashMap;

/// Which directory implementation a cluster cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryKind {
    /// The paper's optimistic assumption: instantaneous global knowledge.
    #[default]
    Perfect,
    /// Per-node hint maps corrected on use (paper §6 future work).
    Hint,
}

/// Exact master locations — the paper's optimistic baseline.
#[derive(Debug, Clone, Default)]
pub struct PerfectDirectory {
    masters: FxHashMap<BlockId, NodeId>,
}

impl PerfectDirectory {
    /// An empty directory.
    pub fn new() -> PerfectDirectory {
        PerfectDirectory::default()
    }

    /// Where the master of `block` lives, if it is in memory anywhere.
    pub fn lookup(&self, block: BlockId) -> Option<NodeId> {
        self.masters.get(&block).copied()
    }

    /// Record that `node` now holds the master of `block`.
    pub fn set(&mut self, block: BlockId, node: NodeId) {
        self.masters.insert(block, node);
    }

    /// Record that the master of `block` left memory.
    pub fn clear(&mut self, block: BlockId) {
        self.masters.remove(&block);
    }

    /// Number of masters currently in memory.
    pub fn len(&self) -> usize {
        self.masters.len()
    }

    /// True if no masters are tracked.
    pub fn is_empty(&self) -> bool {
        self.masters.is_empty()
    }

    /// Iterate `(block, holder)` pairs (diagnostics; order is unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, NodeId)> + '_ {
        self.masters.iter().map(|(&b, &n)| (b, n))
    }
}

/// The outcome of a hint-directory lookup, as seen by the requesting node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintLookup {
    /// The node's hint pointed at the true master holder.
    Correct(NodeId),
    /// The hint was stale; the master actually lives at `actual`. The
    /// simulator charges one wasted hop to the hinted node.
    Stale {
        /// Where the stale hint pointed.
        hinted: NodeId,
        /// The true holder.
        actual: NodeId,
    },
    /// The hint was stale and the master is no longer in memory at all:
    /// the request falls through to a disk read after the wasted hop.
    StaleNoMaster {
        /// Where the stale hint pointed.
        hinted: NodeId,
    },
    /// The node had no hint; truth says the master is at `actual` (found via
    /// the home node, no wasted hop — the home knows who last read from it).
    NoHint {
        /// The true holder, if the master is in memory.
        actual: Option<NodeId>,
    },
}

/// Accuracy statistics for a hint directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HintStats {
    /// Total lookups performed.
    pub lookups: u64,
    /// Lookups whose first hint was correct.
    pub correct: u64,
    /// Lookups with a stale hint (wasted hop).
    pub stale: u64,
    /// Lookups with no local hint.
    pub missing: u64,
    /// Wasted hops charged across all chain resolutions
    /// ([`HintDirectory::resolve_from`]): every node visited on a stale
    /// hint's say-so that turned out not to hold the master.
    pub forward_hops: u64,
    /// Chain resolutions that hit the hop bound without finding the master
    /// and fell back to the authoritative (home-node) path.
    pub exhausted: u64,
}

impl HintStats {
    /// First-hint accuracy in `[0, 1]` over lookups that had a hint.
    pub fn accuracy(&self) -> f64 {
        let with_hint = self.correct + self.stale;
        if with_hint == 0 {
            0.0
        } else {
            self.correct as f64 / with_hint as f64
        }
    }
}

/// The outcome of a bounded hint-chain resolution
/// ([`HintDirectory::resolve_from`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintResolution {
    /// Where the master actually lives, if it is in memory at all.
    pub master: Option<NodeId>,
    /// Wasted hops, in visit order: nodes a hint pointed at that did not
    /// hold the master. The final (successful) holder is *not* listed.
    pub hops: Vec<NodeId>,
    /// True when the chain stopped at the hop bound (or ran out of hints)
    /// and the answer came from the authoritative home-node path instead.
    pub exhausted: bool,
}

/// How many recent master-placement updates each node piggybacks on its
/// next exchanges (Sarkar & Hartman: hints ride on required messages at
/// negligible overhead).
const RECENT_CAP: usize = 16;

/// Ground truth plus per-node stale hints.
#[derive(Debug, Clone)]
pub struct HintDirectory {
    truth: PerfectDirectory,
    hints: Vec<FxHashMap<BlockId, NodeId>>,
    /// Per-node ring of recent placements this node knows first-hand,
    /// shared on contact via [`HintDirectory::exchange`].
    recent: Vec<std::collections::VecDeque<(BlockId, NodeId)>>,
    stats: HintStats,
}

impl HintDirectory {
    /// A hint directory for `nodes` nodes.
    pub fn new(nodes: usize) -> HintDirectory {
        HintDirectory {
            truth: PerfectDirectory::new(),
            hints: vec![FxHashMap::default(); nodes],
            recent: vec![std::collections::VecDeque::new(); nodes],
            stats: HintStats::default(),
        }
    }

    /// Ground-truth location (what a perfect directory would say).
    pub fn truth(&self, block: BlockId) -> Option<NodeId> {
        self.truth.lookup(block)
    }

    /// Look up `block` on behalf of `from`, classify the hint, and correct
    /// `from`'s hint to the truth (the reply teaches the requester).
    pub fn lookup_from(&mut self, from: NodeId, block: BlockId) -> HintLookup {
        self.stats.lookups += 1;
        let actual = self.truth.lookup(block);
        // A hint pointing at ourselves is locally known to be wrong (we just
        // missed in our own cache), so it costs nothing: treat it as absent.
        let hinted = self.hints[from.index()]
            .get(&block)
            .copied()
            .filter(|&h| h != from);
        let outcome = match (hinted, actual) {
            (Some(h), Some(a)) if h == a => {
                self.stats.correct += 1;
                HintLookup::Correct(a)
            }
            (Some(h), Some(a)) => {
                self.stats.stale += 1;
                HintLookup::Stale {
                    hinted: h,
                    actual: a,
                }
            }
            (Some(h), None) => {
                self.stats.stale += 1;
                HintLookup::StaleNoMaster { hinted: h }
            }
            (None, a) => {
                self.stats.missing += 1;
                HintLookup::NoHint { actual: a }
            }
        };
        // Learning: after the exchange the requester knows the truth.
        match actual {
            Some(a) => {
                self.hints[from.index()].insert(block, a);
            }
            None => {
                self.hints[from.index()].remove(&block);
            }
        }
        outcome
    }

    /// Resolve `block` on behalf of `from` by chasing hints through at most
    /// `max_hops` wasted hops (Sarkar & Hartman forwarding): start from the
    /// requester's hint; each node a stale hint lands on consults *its own*
    /// hint table and forwards the request onward. When the chain finds the
    /// master, stops making progress (no fresh hint, a cycle), or exhausts
    /// the hop budget, the request falls back to the authoritative
    /// home-node path.
    ///
    /// Lazy correction rides the reply: the requester and every wasted hop
    /// learn the true location (or unlearn their hint when the master left
    /// memory), so the same stale hint is never chased twice — staleness is
    /// always detected and corrected within one forwarding chain.
    pub fn resolve_from(
        &mut self,
        from: NodeId,
        block: BlockId,
        max_hops: usize,
    ) -> HintResolution {
        self.stats.lookups += 1;
        let actual = self.truth.lookup(block);
        let first = self.hints[from.index()]
            .get(&block)
            .copied()
            .filter(|&h| h != from);
        let mut hops: Vec<NodeId> = Vec::new();
        let mut exhausted = false;
        match first {
            None => self.stats.missing += 1,
            Some(h) if actual == Some(h) => self.stats.correct += 1,
            Some(first) => {
                self.stats.stale += 1;
                // Chase the chain: each visited node's own hint, skipping
                // self-pointers and anything already visited (a cycle means
                // the chain has no fresh information left).
                let mut cur = first;
                loop {
                    hops.push(cur);
                    if hops.len() >= max_hops {
                        exhausted = true;
                        break;
                    }
                    let next = self.hints[cur.index()]
                        .get(&block)
                        .copied()
                        .filter(|&h| h != cur && h != from && !hops.contains(&h));
                    match next {
                        Some(n) if actual == Some(n) => break, // chain found it
                        Some(n) => cur = n,
                        None => {
                            exhausted = true;
                            break;
                        }
                    }
                }
                self.stats.forward_hops += hops.len() as u64;
                if exhausted {
                    self.stats.exhausted += 1;
                }
            }
        }
        // Lazy correction piggybacked on the reply path: the requester and
        // every wasted hop now know the truth.
        for node in hops.iter().copied().chain(std::iter::once(from)) {
            match actual {
                Some(a) => {
                    self.hints[node.index()].insert(block, a);
                }
                None => {
                    self.hints[node.index()].remove(&block);
                }
            }
        }
        HintResolution {
            master: actual,
            hops,
            exhausted,
        }
    }

    /// Record a master placement. The holder (and, for a forward, the old
    /// holder) learn immediately; everyone else's hints go stale — exactly
    /// the staleness the hint scheme tolerates.
    pub fn set(&mut self, block: BlockId, node: NodeId) {
        self.truth.set(block, node);
        self.hints[node.index()].insert(block, node);
        self.note_recent(node, block, node);
    }

    fn note_recent(&mut self, node: NodeId, block: BlockId, holder: NodeId) {
        let ring = &mut self.recent[node.index()];
        if ring.len() >= RECENT_CAP {
            ring.pop_front();
        }
        ring.push_back((block, holder));
    }

    /// Piggybacked hint exchange between two nodes that just traded a
    /// message: each learns the other's recent first-hand placements.
    pub fn exchange(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        let from_a: Vec<(BlockId, NodeId)> = self.recent[a.index()].iter().copied().collect();
        let from_b: Vec<(BlockId, NodeId)> = self.recent[b.index()].iter().copied().collect();
        for (blk, holder) in from_a {
            self.hints[b.index()].insert(blk, holder);
        }
        for (blk, holder) in from_b {
            self.hints[a.index()].insert(blk, holder);
        }
    }

    /// Record a master leaving memory; `witness` (the dropping node) learns.
    pub fn clear(&mut self, block: BlockId, witness: NodeId) {
        self.truth.clear(block);
        self.hints[witness.index()].remove(&block);
    }

    /// Record that `learner` observed the master of `block` move to `holder`
    /// (piggybacked hint exchange on an unrelated message).
    pub fn gossip(&mut self, learner: NodeId, block: BlockId, holder: NodeId) {
        self.hints[learner.index()].insert(block, holder);
        self.note_recent(learner, block, holder);
    }

    /// Accuracy statistics so far.
    pub fn stats(&self) -> HintStats {
        self.stats
    }

    /// Number of masters in memory (truth).
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True if no masters are in memory.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    #[test]
    fn perfect_directory_tracks_moves() {
        let mut d = PerfectDirectory::new();
        assert_eq!(d.lookup(b(1)), None);
        d.set(b(1), NodeId(0));
        assert_eq!(d.lookup(b(1)), Some(NodeId(0)));
        d.set(b(1), NodeId(3));
        assert_eq!(d.lookup(b(1)), Some(NodeId(3)));
        assert_eq!(d.len(), 1);
        d.clear(b(1));
        assert!(d.is_empty());
    }

    #[test]
    fn hint_lookup_without_hint_consults_truth() {
        let mut d = HintDirectory::new(4);
        d.set(b(1), NodeId(2));
        match d.lookup_from(NodeId(0), b(1)) {
            HintLookup::NoHint { actual: Some(n) } => assert_eq!(n, NodeId(2)),
            other => panic!("unexpected: {other:?}"),
        }
        // The lookup taught node 0; a second lookup is a correct hint.
        assert_eq!(
            d.lookup_from(NodeId(0), b(1)),
            HintLookup::Correct(NodeId(2))
        );
        let s = d.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.correct, 1);
        assert_eq!(s.missing, 1);
    }

    #[test]
    fn hints_go_stale_on_moves() {
        let mut d = HintDirectory::new(4);
        d.set(b(1), NodeId(2));
        d.lookup_from(NodeId(0), b(1)); // node 0 learns: at 2
        d.set(b(1), NodeId(3)); // master forwarded; node 0 not told
        match d.lookup_from(NodeId(0), b(1)) {
            HintLookup::Stale { hinted, actual } => {
                assert_eq!(hinted, NodeId(2));
                assert_eq!(actual, NodeId(3));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(d.stats().accuracy() < 1.0);
    }

    #[test]
    fn stale_no_master_when_dropped() {
        let mut d = HintDirectory::new(2);
        d.set(b(7), NodeId(1));
        d.lookup_from(NodeId(0), b(7));
        d.clear(b(7), NodeId(1));
        match d.lookup_from(NodeId(0), b(7)) {
            HintLookup::StaleNoMaster { hinted } => assert_eq!(hinted, NodeId(1)),
            other => panic!("unexpected: {other:?}"),
        }
        // And node 0 unlearned the hint.
        assert_eq!(
            d.lookup_from(NodeId(0), b(7)),
            HintLookup::NoHint { actual: None }
        );
    }

    #[test]
    fn gossip_teaches_third_parties() {
        let mut d = HintDirectory::new(3);
        d.set(b(1), NodeId(1));
        d.gossip(NodeId(2), b(1), NodeId(1));
        assert_eq!(
            d.lookup_from(NodeId(2), b(1)),
            HintLookup::Correct(NodeId(1))
        );
    }

    #[test]
    fn self_hints_are_filtered() {
        // lookup_from is only reached after a local miss, so a hint pointing
        // at the requester itself is known-wrong and treated as absent
        // (no wasted hop charged).
        let mut d = HintDirectory::new(2);
        d.set(b(5), NodeId(1));
        assert_eq!(
            d.lookup_from(NodeId(1), b(5)),
            HintLookup::NoHint {
                actual: Some(NodeId(1))
            }
        );
        // After the master moves, the old holder's stale self-hint must not
        // cost a hop either: it is filtered, not charged as Stale.
        d.set(b(5), NodeId(0));
        assert_eq!(
            d.lookup_from(NodeId(1), b(5)),
            HintLookup::NoHint {
                actual: Some(NodeId(0))
            }
        );
    }

    #[test]
    fn exchange_shares_recent_placements() {
        let mut d = HintDirectory::new(3);
        d.set(b(1), NodeId(0));
        d.set(b(2), NodeId(1));
        d.exchange(NodeId(0), NodeId(1));
        // Node 0 learned about b2, node 1 about b1.
        assert_eq!(
            d.lookup_from(NodeId(0), b(2)),
            HintLookup::Correct(NodeId(1))
        );
        assert_eq!(
            d.lookup_from(NodeId(1), b(1)),
            HintLookup::Correct(NodeId(0))
        );
        // Node 2 was not part of the exchange.
        assert_eq!(
            d.lookup_from(NodeId(2), b(1)),
            HintLookup::NoHint {
                actual: Some(NodeId(0))
            }
        );
    }

    #[test]
    fn accuracy_math() {
        let s = HintStats {
            lookups: 10,
            correct: 8,
            stale: 2,
            ..HintStats::default()
        };
        assert!((s.accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(HintStats::default().accuracy(), 0.0);
    }

    #[test]
    fn resolve_chases_a_chain_and_corrects_every_hop() {
        let mut d = HintDirectory::new(5);
        // Build a two-link chain of stale hints: node 0 thinks the master is
        // at 1, node 1 thinks it moved on to 2, node 2 knows the truth (3).
        d.set(b(9), NodeId(3));
        d.gossip(NodeId(0), b(9), NodeId(1));
        d.gossip(NodeId(1), b(9), NodeId(2));
        d.gossip(NodeId(2), b(9), NodeId(3));
        let r = d.resolve_from(NodeId(0), b(9), 4);
        assert_eq!(r.master, Some(NodeId(3)));
        assert_eq!(r.hops, vec![NodeId(1), NodeId(2)]);
        assert!(!r.exhausted);
        let s = d.stats();
        assert_eq!(s.stale, 1);
        assert_eq!(s.forward_hops, 2);
        assert_eq!(s.exhausted, 0);
        // Lazy correction: the requester and both wasted hops now resolve in
        // zero hops.
        for n in [NodeId(0), NodeId(1), NodeId(2)] {
            let r = d.resolve_from(n, b(9), 4);
            assert_eq!(r.master, Some(NodeId(3)));
            assert!(r.hops.is_empty(), "{n:?} should be corrected");
        }
    }

    #[test]
    fn resolve_respects_the_hop_bound() {
        let mut d = HintDirectory::new(6);
        d.set(b(1), NodeId(5));
        // A four-link stale chain 0→1→2→3→4, none of whom hold the master.
        for i in 0..4u16 {
            d.gossip(NodeId(i), b(1), NodeId(i + 1));
        }
        let r = d.resolve_from(NodeId(0), b(1), 2);
        assert_eq!(r.master, Some(NodeId(5)), "fallback still finds truth");
        assert_eq!(r.hops.len(), 2, "bounded at max_hops");
        assert!(r.exhausted);
        assert_eq!(d.stats().exhausted, 1);
        assert_eq!(d.stats().forward_hops, 2);
    }

    #[test]
    fn resolve_detects_cycles_and_falls_back() {
        let mut d = HintDirectory::new(4);
        d.set(b(2), NodeId(3));
        // 0 and 1 point at each other; 1's hint back to 0 is a cycle.
        d.gossip(NodeId(0), b(2), NodeId(1));
        d.gossip(NodeId(1), b(2), NodeId(0));
        let r = d.resolve_from(NodeId(0), b(2), 8);
        assert_eq!(r.master, Some(NodeId(3)));
        assert_eq!(r.hops, vec![NodeId(1)], "cycle cut after one hop");
        assert!(r.exhausted);
    }

    #[test]
    fn resolve_with_no_master_unlearns_the_chain() {
        let mut d = HintDirectory::new(3);
        d.set(b(4), NodeId(1));
        d.lookup_from(NodeId(0), b(4)); // node 0 learns: at 1
        d.clear(b(4), NodeId(1));
        let r = d.resolve_from(NodeId(0), b(4), 4);
        assert_eq!(r.master, None);
        assert_eq!(r.hops, vec![NodeId(1)]);
        // Unlearned: the next resolve has no hint and no wasted hop.
        let r = d.resolve_from(NodeId(0), b(4), 4);
        assert_eq!(r.master, None);
        assert!(r.hops.is_empty());
    }
}
