//! Identifiers and block-layout arithmetic.
//!
//! The middleware is deliberately *block*-based rather than file-based — that
//! is what makes it generic enough to sit under "diverse services, ranging
//! from file systems to web servers" (paper §1). Files exist only as a
//! numbering scheme for blocks; all caching decisions are per block.
//!
//! The cache block size is 8 KB. The file system beneath is assumed to
//! pre-allocate contiguously in 64 KB extents (paper §4.2: "files will be
//! contiguous within 64KB blocks", with "an extra seek for getting the
//! metadata on every 64KB access") — extent math lives here so that the disk
//! model and the protocol agree on it.

/// Cache block size in bytes (8 KB).
pub const BLOCK_SIZE: u64 = 8 * 1024;

/// File-system extent size in bytes (64 KB): files are contiguous on disk
/// within an extent, and each extent access pays one metadata seek.
pub const EXTENT_SIZE: u64 = 64 * 1024;

/// Blocks per extent.
pub const BLOCKS_PER_EXTENT: u32 = (EXTENT_SIZE / BLOCK_SIZE) as u32;

/// A cluster node. Plain index; the webserver/cluster layers give it queues
/// and hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A file, as named by the workload layer (`ccm-traces::FileId` converts
/// losslessly into this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// One cache block: the `index`-th 8 KB block of `file`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// Owning file.
    pub file: FileId,
    /// Zero-based block index within the file.
    pub index: u32,
}

impl BlockId {
    /// Construct a block id.
    #[inline]
    pub fn new(file: FileId, index: u32) -> BlockId {
        BlockId { file, index }
    }

    /// The extent (64 KB unit) this block falls in.
    #[inline]
    pub fn extent(self) -> u32 {
        self.index / BLOCKS_PER_EXTENT
    }

    /// True if `other` is the block immediately following `self` in the same
    /// file *and* the same extent — i.e. readable without an extra seek.
    #[inline]
    pub fn is_contiguous_with(self, other: BlockId) -> bool {
        self.file == other.file && other.index == self.index + 1 && self.extent() == other.extent()
    }
}

/// Number of blocks needed to hold a file of `size` bytes (at least 1 — a
/// zero-byte file still occupies a directory entry and one block frame).
#[inline]
pub fn blocks_of_file(size: u64) -> u32 {
    (size.div_ceil(BLOCK_SIZE)).max(1) as u32
}

/// Number of extents a file of `size` bytes spans.
#[inline]
pub fn extents_of_file(size: u64) -> u32 {
    (size.div_ceil(EXTENT_SIZE)).max(1) as u32
}

/// Iterate over all blocks of a file of `size` bytes.
pub fn file_blocks(file: FileId, size: u64) -> impl Iterator<Item = BlockId> {
    (0..blocks_of_file(size)).map(move |i| BlockId::new(file, i))
}

/// The bytes actually occupied by block `index` of a file of `size` bytes
/// (the final block may be partial).
#[inline]
pub fn block_bytes(size: u64, index: u32) -> u64 {
    let start = index as u64 * BLOCK_SIZE;
    debug_assert!(start < size.max(1), "block index out of file");
    (size - start.min(size)).min(BLOCK_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(BLOCKS_PER_EXTENT, 8);
        assert_eq!(BLOCKS_PER_EXTENT as u64 * BLOCK_SIZE, EXTENT_SIZE);
    }

    #[test]
    fn blocks_of_file_rounds_up() {
        assert_eq!(blocks_of_file(0), 1);
        assert_eq!(blocks_of_file(1), 1);
        assert_eq!(blocks_of_file(BLOCK_SIZE), 1);
        assert_eq!(blocks_of_file(BLOCK_SIZE + 1), 2);
        assert_eq!(blocks_of_file(10 * BLOCK_SIZE), 10);
    }

    #[test]
    fn extents_of_file_rounds_up() {
        assert_eq!(extents_of_file(0), 1);
        assert_eq!(extents_of_file(EXTENT_SIZE), 1);
        assert_eq!(extents_of_file(EXTENT_SIZE + 1), 2);
    }

    #[test]
    fn extent_of_block() {
        let f = FileId(0);
        assert_eq!(BlockId::new(f, 0).extent(), 0);
        assert_eq!(BlockId::new(f, 7).extent(), 0);
        assert_eq!(BlockId::new(f, 8).extent(), 1);
    }

    #[test]
    fn contiguity_respects_extent_boundaries() {
        let f = FileId(3);
        let b7 = BlockId::new(f, 7);
        let b8 = BlockId::new(f, 8);
        let b9 = BlockId::new(f, 9);
        assert!(
            !b7.is_contiguous_with(b8),
            "extent boundary breaks contiguity"
        );
        assert!(b8.is_contiguous_with(b9));
        assert!(!b8.is_contiguous_with(b8));
        assert!(!b8.is_contiguous_with(BlockId::new(FileId(4), 9)));
    }

    #[test]
    fn file_blocks_enumerates_all() {
        let blocks: Vec<BlockId> = file_blocks(FileId(1), 3 * BLOCK_SIZE + 5).collect();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].index, 0);
        assert_eq!(blocks[3].index, 3);
    }

    #[test]
    fn block_bytes_handles_partial_tail() {
        let size = 2 * BLOCK_SIZE + 100;
        assert_eq!(block_bytes(size, 0), BLOCK_SIZE);
        assert_eq!(block_bytes(size, 1), BLOCK_SIZE);
        assert_eq!(block_bytes(size, 2), 100);
    }
}
