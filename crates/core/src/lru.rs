//! An age-ordered, intrusive LRU list over block ids.
//!
//! Each node cache keeps two of these (one for master copies, one for
//! replicas). The list is a slab-backed doubly-linked list plus a hash index,
//! so touch / insert / remove / evict are all O(1). Entries carry an explicit
//! **age** — the global logical tick of their last access — because the
//! protocol compares ages *across* nodes (the forwarding rules are phrased in
//! terms of "the oldest block in the system").
//!
//! Ordinary insertions and touches go to the MRU end with a fresh age, so the
//! list stays age-sorted. The one exception is a *forwarded* master arriving
//! from a peer: it keeps its old age and is spliced into age position
//! ([`LruList::insert_by_age`]). Forwarded blocks are near-globally-oldest by
//! construction, so the splice walk starts from the LRU end and is expected
//! O(1).

use simcore::FxHashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<K> {
    block: K,
    age: u64,
    prev: u32,
    next: u32,
}

/// The age-ordered LRU list, generic over the cached key (block ids for the
/// middleware, file ids for the whole-file L2S baseline).
#[derive(Debug, Clone)]
pub struct LruList<K: Copy + Eq + Hash + std::fmt::Debug> {
    slots: Vec<Slot<K>>,
    free: Vec<u32>,
    index: FxHashMap<K, u32>,
    /// MRU end (youngest).
    head: u32,
    /// LRU end (oldest).
    tail: u32,
}

impl<K: Copy + Eq + Hash + std::fmt::Debug> Default for LruList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Eq + Hash + std::fmt::Debug> LruList<K> {
    /// An empty list.
    pub fn new() -> LruList<K> {
        LruList {
            slots: Vec::new(),
            free: Vec::new(),
            index: FxHashMap::default(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `block` is resident.
    pub fn contains(&self, block: K) -> bool {
        self.index.contains_key(&block)
    }

    /// The age of `block`, if resident.
    pub fn age_of(&self, block: K) -> Option<u64> {
        self.index.get(&block).map(|&i| self.slots[i as usize].age)
    }

    /// The oldest entry `(block, age)` without removing it.
    pub fn peek_oldest(&self) -> Option<(K, u64)> {
        if self.tail == NIL {
            None
        } else {
            let s = &self.slots[self.tail as usize];
            Some((s.block, s.age))
        }
    }

    /// The youngest entry `(block, age)` without removing it.
    pub fn peek_youngest(&self) -> Option<(K, u64)> {
        if self.head == NIL {
            None
        } else {
            let s = &self.slots[self.head as usize];
            Some((s.block, s.age))
        }
    }

    fn alloc(&mut self, block: K, age: u64) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Slot {
                block,
                age,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slots.push(Slot {
                block,
                age,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Insert `block` as the youngest entry with age `age`.
    ///
    /// # Panics
    /// Panics if the block is already resident, or (debug) if `age` is older
    /// than the current youngest — that would break age ordering.
    pub fn push_mru(&mut self, block: K, age: u64) {
        assert!(
            !self.index.contains_key(&block),
            "push_mru of resident block {block:?}"
        );
        debug_assert!(
            self.peek_youngest().is_none_or(|(_, a)| a <= age),
            "push_mru would violate age order"
        );
        let i = self.alloc(block, age);
        self.link_front(i);
        self.index.insert(block, i);
    }

    /// Refresh `block` to age `age` and move it to the MRU end. Returns false
    /// if the block is not resident.
    pub fn touch(&mut self, block: K, age: u64) -> bool {
        let Some(&i) = self.index.get(&block) else {
            return false;
        };
        self.unlink(i);
        self.slots[i as usize].age = age;
        self.link_front(i);
        true
    }

    /// Remove `block`, returning its age if it was resident.
    pub fn remove(&mut self, block: K) -> Option<u64> {
        let i = self.index.remove(&block)?;
        self.unlink(i);
        self.free.push(i);
        Some(self.slots[i as usize].age)
    }

    /// Remove and return the oldest entry.
    pub fn pop_oldest(&mut self) -> Option<(K, u64)> {
        let (block, age) = self.peek_oldest()?;
        self.remove(block);
        Some((block, age))
    }

    /// Insert `block` preserving age order (used for forwarded masters that
    /// keep their original age). Walks from the LRU end; forwarded blocks are
    /// near-oldest so the walk is expected O(1).
    ///
    /// # Panics
    /// Panics if the block is already resident.
    pub fn insert_by_age(&mut self, block: K, age: u64) {
        assert!(
            !self.index.contains_key(&block),
            "insert_by_age of resident block {block:?}"
        );
        let i = self.alloc(block, age);
        // Find the first entry from the tail with age >= ours; insert before
        // it (i.e. on its older side).
        let mut cur = self.tail;
        while cur != NIL && self.slots[cur as usize].age < age {
            cur = self.slots[cur as usize].prev;
        }
        if cur == NIL {
            // Youngest of all.
            self.link_front(i);
        } else {
            // Insert after `cur` (toward the tail).
            let next = self.slots[cur as usize].next;
            self.slots[i as usize].prev = cur;
            self.slots[i as usize].next = next;
            self.slots[cur as usize].next = i;
            if next != NIL {
                self.slots[next as usize].prev = i;
            } else {
                self.tail = i;
            }
        }
        self.index.insert(block, i);
    }

    /// Iterate entries from oldest to youngest (the de-replication search in
    /// `ccm-l2s` walks this way looking for a multi-copy victim).
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        let mut cur = self.tail;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = &self.slots[cur as usize];
            cur = s.prev;
            Some((s.block, s.age))
        })
    }

    /// Iterate entries from youngest to oldest (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = &self.slots[cur as usize];
            cur = s.next;
            Some((s.block, s.age))
        })
    }

    /// Invariant check: index and links agree, ages are non-increasing from
    /// head to tail. Used by tests (including cross-crate property tests);
    /// O(n), so not called on hot paths.
    pub fn check_invariants(&self) {
        let items: Vec<(K, u64)> = self.iter().collect();
        assert_eq!(items.len(), self.index.len(), "index/list length mismatch");
        for w in items.windows(2) {
            assert!(w[0].1 >= w[1].1, "age order violated: {w:?}");
        }
        for (b, _) in &items {
            assert!(self.index.contains_key(b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockId, FileId};

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    #[test]
    fn push_and_pop_order() {
        let mut l = LruList::new();
        l.push_mru(b(1), 1);
        l.push_mru(b(2), 2);
        l.push_mru(b(3), 3);
        l.check_invariants();
        assert_eq!(l.pop_oldest(), Some((b(1), 1)));
        assert_eq!(l.pop_oldest(), Some((b(2), 2)));
        assert_eq!(l.pop_oldest(), Some((b(3), 3)));
        assert_eq!(l.pop_oldest(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new();
        l.push_mru(b(1), 1);
        l.push_mru(b(2), 2);
        l.push_mru(b(3), 3);
        assert!(l.touch(b(1), 4));
        l.check_invariants();
        assert_eq!(l.peek_oldest(), Some((b(2), 2)));
        assert_eq!(l.peek_youngest(), Some((b(1), 4)));
        assert!(!l.touch(b(99), 5));
    }

    #[test]
    fn remove_middle_keeps_links() {
        let mut l = LruList::new();
        for i in 1..=5 {
            l.push_mru(b(i), i as u64);
        }
        assert_eq!(l.remove(b(3)), Some(3));
        l.check_invariants();
        assert_eq!(l.len(), 4);
        assert!(!l.contains(b(3)));
        let order: Vec<u32> = l.iter().map(|(blk, _)| blk.index).collect();
        assert_eq!(order, vec![5, 4, 2, 1]);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LruList::new();
        l.push_mru(b(1), 1);
        l.push_mru(b(2), 2);
        l.push_mru(b(3), 3);
        l.remove(b(3)); // head
        l.remove(b(1)); // tail
        l.check_invariants();
        assert_eq!(l.peek_oldest(), Some((b(2), 2)));
        assert_eq!(l.peek_youngest(), Some((b(2), 2)));
    }

    #[test]
    fn slots_are_reused() {
        let mut l = LruList::new();
        for round in 0..10u64 {
            for i in 0..100 {
                l.push_mru(b(i), round * 100 + i as u64);
            }
            for i in 0..100 {
                l.remove(b(i));
            }
        }
        // Slab never grew beyond one round's worth.
        assert!(l.slots.len() <= 100, "slab grew to {}", l.slots.len());
    }

    #[test]
    fn insert_by_age_places_correctly() {
        let mut l = LruList::new();
        l.push_mru(b(1), 10);
        l.push_mru(b(2), 20);
        l.push_mru(b(3), 30);
        // Between 10 and 20.
        l.insert_by_age(b(4), 15);
        l.check_invariants();
        let ages: Vec<u64> = l.iter().map(|(_, a)| a).collect();
        assert_eq!(ages, vec![30, 20, 15, 10]);
        // Older than everything.
        l.insert_by_age(b(5), 1);
        assert_eq!(l.peek_oldest(), Some((b(5), 1)));
        // Younger than everything.
        l.insert_by_age(b(6), 99);
        assert_eq!(l.peek_youngest(), Some((b(6), 99)));
        l.check_invariants();
    }

    #[test]
    fn insert_by_age_into_empty() {
        let mut l = LruList::new();
        l.insert_by_age(b(7), 42);
        assert_eq!(l.peek_oldest(), Some((b(7), 42)));
        assert_eq!(l.len(), 1);
        l.check_invariants();
    }

    #[test]
    fn age_of_reports_current_age() {
        let mut l = LruList::new();
        l.push_mru(b(1), 5);
        assert_eq!(l.age_of(b(1)), Some(5));
        l.touch(b(1), 9);
        assert_eq!(l.age_of(b(1)), Some(9));
        assert_eq!(l.age_of(b(2)), None);
    }

    #[test]
    #[should_panic(expected = "resident block")]
    fn double_insert_panics() {
        let mut l = LruList::new();
        l.push_mru(b(1), 1);
        l.push_mru(b(1), 2);
    }

    #[test]
    fn interleaved_operations_stress() {
        // Deterministic mixed workload; invariants checked throughout.
        let mut l = LruList::new();
        let mut age = 0u64;
        for step in 0u32..2_000 {
            age += 1;
            match step % 5 {
                0 | 1 => {
                    let blk = b(step % 97);
                    if !l.contains(blk) {
                        l.push_mru(blk, age);
                    } else {
                        l.touch(blk, age);
                    }
                }
                2 => {
                    l.touch(b((step * 7) % 97), age);
                }
                3 => {
                    l.remove(b((step * 13) % 97));
                }
                _ => {
                    l.pop_oldest();
                }
            }
            if step % 100 == 0 {
                l.check_invariants();
            }
        }
        l.check_invariants();
    }
}
