//! Property-based tests for the cooperative caching protocol.
//!
//! These drive the state machines with arbitrary operation sequences and
//! check the invariants the paper's algorithm promises:
//!
//! * the per-node LRU behaves exactly like a naive reference model;
//! * cluster state stays structurally consistent (single master per block,
//!   directory exact, capacities respected) under any access pattern;
//! * the master-preserving policy never evicts a master from a node that
//!   still holds a replica;
//! * forwarding never cascades (at most one displaced block per access);
//! * runs are deterministic.

use ccm_core::lru::LruList;
use ccm_core::{
    AccessOutcome, BlockId, CacheConfig, ClusterCache, CopyKind, Disposition, FileId, NodeId,
    ReplacementPolicy,
};
use proptest::prelude::*;

fn block(i: u32) -> BlockId {
    BlockId::new(FileId(i / 64), i % 64)
}

// ---------------------------------------------------------------------------
// LRU vs. a naive reference model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    Push(u32),
    Touch(u32),
    Remove(u32),
    PopOldest,
    InsertByAge(u32, u8),
}

fn lru_ops() -> impl Strategy<Value = Vec<LruOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..50).prop_map(LruOp::Push),
            (0u32..50).prop_map(LruOp::Touch),
            (0u32..50).prop_map(LruOp::Remove),
            Just(LruOp::PopOldest),
            ((0u32..50), any::<u8>()).prop_map(|(b, a)| LruOp::InsertByAge(b, a)),
        ],
        0..200,
    )
}

/// Naive reference: a Vec of (block, age) kept sorted oldest-first.
#[derive(Default)]
struct NaiveLru {
    items: Vec<(u32, u64)>,
}

impl NaiveLru {
    fn contains(&self, b: u32) -> bool {
        self.items.iter().any(|&(x, _)| x == b)
    }
    fn push(&mut self, b: u32, age: u64) {
        self.items.push((b, age));
    }
    fn touch(&mut self, b: u32, age: u64) -> bool {
        if let Some(pos) = self.items.iter().position(|&(x, _)| x == b) {
            self.items.remove(pos);
            self.items.push((b, age));
            true
        } else {
            false
        }
    }
    fn remove(&mut self, b: u32) -> Option<u64> {
        let pos = self.items.iter().position(|&(x, _)| x == b)?;
        Some(self.items.remove(pos).1)
    }
    fn pop_oldest(&mut self) -> Option<(u32, u64)> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items.remove(0))
        }
    }
    /// Insert keeping age order; among equal ages the new entry goes on the
    /// *older* side (matches `LruList::insert_by_age`, which walks past
    /// strictly-smaller ages only).
    fn insert_by_age(&mut self, b: u32, age: u64) {
        let pos = self.items.partition_point(|&(_, a)| a < age);
        self.items.insert(pos, (b, age));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_matches_reference_model(ops in lru_ops()) {
        let mut real = LruList::new();
        let mut model = NaiveLru::default();
        let mut age = 0u64;
        for op in ops {
            age += 1;
            match op {
                LruOp::Push(b) => {
                    if !model.contains(b) {
                        real.push_mru(block(b), age);
                        model.push(b, age);
                    }
                }
                LruOp::Touch(b) => {
                    let r = real.touch(block(b), age);
                    let m = model.touch(b, age);
                    prop_assert_eq!(r, m);
                }
                LruOp::Remove(b) => {
                    let r = real.remove(block(b));
                    let m = model.remove(b);
                    prop_assert_eq!(r, m);
                }
                LruOp::PopOldest => {
                    let r = real.pop_oldest();
                    let m = model.pop_oldest().map(|(b, a)| (block(b), a));
                    prop_assert_eq!(r, m);
                }
                LruOp::InsertByAge(b, a) => {
                    // Forwarded blocks always carry an age from the past;
                    // clamp like the protocol guarantees.
                    let a = (a as u64) % (age + 1);
                    if !model.contains(b) {
                        real.insert_by_age(block(b), a);
                        model.insert_by_age(b, a);
                    }
                }
            }
            prop_assert_eq!(real.len(), model.items.len());
            real.check_invariants();
        }
        // Final drain order must agree exactly.
        let mut real_drain = Vec::new();
        while let Some(x) = real.pop_oldest() { real_drain.push(x); }
        let model_drain: Vec<(BlockId, u64)> =
            model.items.iter().map(|&(b, a)| (block(b), a)).collect();
        prop_assert_eq!(real_drain, model_drain);
    }
}

// ---------------------------------------------------------------------------
// Cluster-cache invariants under arbitrary access patterns
// ---------------------------------------------------------------------------

fn access_seq(nodes: u16, blocks: u32) -> impl Strategy<Value = Vec<(u16, u32)>> {
    prop::collection::vec(((0..nodes), (0..blocks)), 1..400)
}

/// One step of the crash/repair property tests: a normal access, a node
/// crash (with directory repair), or a revival of a crashed node.
#[derive(Debug, Clone)]
enum ClusterOp {
    Access(u16, u32),
    Fail(u16),
    Revive(u16),
}

fn cluster_ops(nodes: u16, blocks: u32) -> impl Strategy<Value = Vec<ClusterOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0..nodes), (0..blocks)).prop_map(|(n, b)| ClusterOp::Access(n, b)),
            ((0..nodes), (0..blocks)).prop_map(|(n, b)| ClusterOp::Access(n, b)),
            ((0..nodes), (0..blocks)).prop_map(|(n, b)| ClusterOp::Access(n, b)),
            (0..nodes).prop_map(ClusterOp::Fail),
            (0..nodes).prop_map(ClusterOp::Revive),
        ],
        1..300,
    )
}

fn policies() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::GlobalLru),
        Just(ReplacementPolicy::MasterPreserving),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cluster_invariants_hold(
        seq in access_seq(4, 120),
        cap in 1usize..24,
        policy in policies(),
        promote in any::<bool>(),
    ) {
        let mut cfg = CacheConfig::paper(4, cap, policy);
        cfg.promote_on_master_drop = promote;
        let mut c = ClusterCache::new(cfg);
        for (i, &(n, b)) in seq.iter().enumerate() {
            c.access(NodeId(n), block(b));
            if i % 37 == 0 {
                c.check_invariants();
            }
        }
        c.check_invariants();
        // Capacity never exceeded and accounting adds up.
        prop_assert!(c.resident_blocks() <= 4 * cap);
        let s = c.stats();
        prop_assert_eq!(s.accesses(), seq.len() as u64);
    }

    #[test]
    fn master_preserving_never_sacrifices_master_while_holding_replicas(
        seq in access_seq(4, 120),
        cap in 1usize..16,
    ) {
        let mut c = ClusterCache::new(CacheConfig::paper(
            4, cap, ReplacementPolicy::MasterPreserving));
        for &(n, b) in &seq {
            let node = NodeId(n);
            let replicas_before = c.node(node).num_replicas();
            let out = c.access(node, block(b));
            if let Some(ev) = out.eviction() {
                if ev.victim_kind == CopyKind::Master {
                    prop_assert_eq!(
                        replicas_before, 0,
                        "master evicted while {} replicas were held", replicas_before
                    );
                }
            }
        }
    }

    #[test]
    fn forwarding_never_cascades(
        seq in access_seq(6, 200),
        cap in 1usize..12,
        policy in policies(),
    ) {
        // Structural: one access causes at most one eviction at the
        // requester; a forward displaces at most one block at exactly one
        // destination; a displaced block is dropped (never re-forwarded).
        // The types enforce most of this; here we check the dynamic part:
        // the destination's displaced block really left cluster memory.
        let mut c = ClusterCache::new(CacheConfig::paper(6, cap, policy));
        for &(n, b) in &seq {
            let out = c.access(NodeId(n), block(b));
            if let Some(ev) = out.eviction() {
                if let Disposition::Forwarded { to, displaced: Some((db, kind)), .. } =
                    ev.disposition
                {
                    prop_assert!(c.node(to).lookup(db).is_none(),
                        "displaced block still resident at destination");
                    if kind == CopyKind::Master {
                        prop_assert_eq!(c.master_location(db), None);
                    }
                    // The forwarded master itself did arrive.
                    prop_assert_eq!(c.master_location(ev.victim), Some(to));
                }
            }
        }
        c.check_invariants();
    }

    #[test]
    fn outcomes_are_classified_correctly(
        seq in access_seq(3, 60),
        cap in 2usize..16,
    ) {
        // A DiskRead must only happen when no master existed; a RemoteHit
        // must name the true pre-access master holder.
        let mut c = ClusterCache::new(CacheConfig::paper(
            3, cap, ReplacementPolicy::MasterPreserving));
        for &(n, b) in &seq {
            let blk = block(b);
            let pre_master = c.master_location(blk);
            let pre_local = c.node(NodeId(n)).lookup(blk);
            match c.access(NodeId(n), blk) {
                AccessOutcome::LocalHit { .. } => {
                    prop_assert!(pre_local.is_some());
                }
                AccessOutcome::RemoteHit { from, .. } => {
                    prop_assert_eq!(pre_master, Some(from));
                    prop_assert!(pre_local.is_none());
                }
                AccessOutcome::DiskRead { .. } => {
                    prop_assert!(pre_master.is_none());
                    prop_assert!(pre_local.is_none());
                    // And now the requester is the master holder.
                    prop_assert_eq!(c.master_location(blk), Some(NodeId(n)));
                }
            }
        }
    }

    #[test]
    fn runs_are_deterministic(seq in access_seq(4, 80), cap in 1usize..16) {
        let run = |seq: &[(u16, u32)]| {
            let mut c = ClusterCache::new(CacheConfig::paper(
                4, cap, ReplacementPolicy::GlobalLru));
            let outs: Vec<AccessOutcome> =
                seq.iter().map(|&(n, b)| c.access(NodeId(n), block(b))).collect();
            (outs, c.stats())
        };
        prop_assert_eq!(run(&seq), run(&seq));
    }

    #[test]
    fn invariants_hold_under_mixed_reads_and_writes(
        seq in prop::collection::vec(((0u16..4), (0u32..80), any::<bool>()), 1..300),
        cap in 1usize..16,
        policy in policies(),
    ) {
        let mut c = ClusterCache::new(CacheConfig::paper(4, cap, policy));
        let mut writes = 0u64;
        for (i, &(n, b, is_write)) in seq.iter().enumerate() {
            if is_write {
                let out = c.write(NodeId(n), block(b));
                writes += 1;
                // After a write the writer is the master holder and no other
                // node caches the block.
                prop_assert_eq!(c.master_location(block(b)), Some(NodeId(n)));
                for peer in 0..4u16 {
                    if peer != n {
                        prop_assert_eq!(c.node(NodeId(peer)).lookup(block(b)), None);
                    }
                }
                let _ = out;
            } else {
                c.access(NodeId(n), block(b));
            }
            if i % 41 == 0 {
                c.check_invariants();
            }
        }
        c.check_invariants();
        prop_assert_eq!(c.stats().writes, writes);
    }

    #[test]
    fn nchance_never_forwards_more_than_chances_between_references(
        seq in access_seq(4, 60),
        cap in 1usize..8,
    ) {
        // Statistical sanity: with chances = 0 a master is NEVER forwarded.
        let mut c = ClusterCache::new(CacheConfig::paper(
            4, cap, ReplacementPolicy::NChance { chances: 0 }));
        for &(n, b) in &seq {
            c.access(NodeId(n), block(b));
        }
        prop_assert_eq!(c.stats().forwards, 0, "0-chance must never forward");
        c.check_invariants();
    }

    #[test]
    fn repairs_preserve_directory_invariants(
        ops in cluster_ops(4, 100),
        cap in 1usize..16,
        policy in policies(),
    ) {
        // Interleave accesses with node crashes (`fail_node`) and revivals;
        // after every step the structural invariants must hold: at most one
        // master per block, the directory exact, down nodes empty and never
        // named as a master location, and each repair's report accounting
        // for every master the dead node held.
        let mut c = ClusterCache::new(CacheConfig::paper(4, cap, policy));
        let mut down = [false; 4];
        for op in ops {
            match op {
                ClusterOp::Access(n, b) => {
                    if !down[n as usize] {
                        c.access(NodeId(n), block(b));
                    }
                }
                ClusterOp::Fail(n) => {
                    let up = down.iter().filter(|d| !**d).count();
                    if !down[n as usize] && up > 1 {
                        let masters_before = c.node(NodeId(n)).num_masters();
                        let report = c.fail_node(NodeId(n));
                        down[n as usize] = true;
                        prop_assert_eq!(
                            report.remastered + report.lost_masters,
                            masters_before,
                            "repair must account for every master the node held"
                        );
                    }
                }
                ClusterOp::Revive(n) => {
                    if down[n as usize] {
                        c.revive_node(NodeId(n));
                        down[n as usize] = false;
                    }
                }
            }
            c.check_invariants();
            for i in 0..4u16 {
                if down[i as usize] {
                    prop_assert!(c.node(NodeId(i)).is_empty(), "down node must stay empty");
                }
            }
        }
        // No block's master may live on a down node.
        for b in 0..100u32 {
            if let Some(m) = c.master_location(block(b)) {
                prop_assert!(!down[m.0 as usize], "master on a down node");
            }
        }
        c.check_invariants();
    }

    #[test]
    fn master_preserving_holds_across_crash_repairs(
        ops in cluster_ops(4, 80),
        cap in 1usize..12,
    ) {
        // The paper's winning policy must keep its promise — never evict a
        // master while holding replicas — even when crash repairs have
        // re-mastered blocks and revived nodes are refilling from cold.
        let mut c = ClusterCache::new(CacheConfig::paper(
            4, cap, ReplacementPolicy::MasterPreserving));
        let mut down = [false; 4];
        for op in ops {
            match op {
                ClusterOp::Access(n, b) => {
                    if down[n as usize] {
                        continue;
                    }
                    let node = NodeId(n);
                    let replicas_before = c.node(node).num_replicas();
                    let out = c.access(node, block(b));
                    if let Some(ev) = out.eviction() {
                        if ev.victim_kind == CopyKind::Master {
                            prop_assert_eq!(
                                replicas_before, 0,
                                "master evicted while {} replicas were held",
                                replicas_before
                            );
                        }
                    }
                }
                ClusterOp::Fail(n) => {
                    let up = down.iter().filter(|d| !**d).count();
                    if !down[n as usize] && up > 1 {
                        c.fail_node(NodeId(n));
                        down[n as usize] = true;
                    }
                }
                ClusterOp::Revive(n) => {
                    if down[n as usize] {
                        c.revive_node(NodeId(n));
                        down[n as usize] = false;
                    }
                }
            }
        }
        c.check_invariants();
    }

    #[test]
    fn hint_directory_state_stays_consistent(
        seq in access_seq(4, 80),
        cap in 1usize..12,
    ) {
        let mut cfg = CacheConfig::paper(4, cap, ReplacementPolicy::MasterPreserving);
        cfg.directory = ccm_core::DirectoryKind::Hint;
        let mut c = ClusterCache::new(cfg);
        for &(n, b) in &seq {
            c.access(NodeId(n), block(b));
        }
        c.check_invariants();
        let hs = c.hint_stats();
        prop_assert_eq!(hs.lookups, hs.correct + hs.stale + hs.missing);
    }
}
