//! # ccm-webserver — the simulated cluster web servers
//!
//! Everything in the paper's evaluation is "a web server built on top of"
//! either the cooperative caching middleware or the L2S baseline, driven by
//! closed-loop HTTP clients over the simulated cluster hardware (§4). This
//! crate is that glue: it owns the discrete-event request lifecycles and
//! turns the protocol decisions of `ccm-core` / `ccm-l2s` into CPU, NIC,
//! disk, and wire time on a `ccm-cluster::Cluster`.
//!
//! The experimental method follows §4.3: "To measure the maximum achievable
//! throughput of the cluster, we ignore the timing information present in the
//! traces. Each HTTP client generates a new request as soon as the previous
//! one has been served. We also measure throughput only after the caches have
//! been warmed up."
//!
//! * [`config`] — one [`config::SimConfig`] describes a run: server flavor
//!   (CCM variant or L2S), cluster size, per-node memory, workload, client
//!   count, warm-up/measure windows.
//! * [`clients`] — closed-loop clients bound to nodes by round-robin DNS.
//! * [`ccm_server`] — the middleware-based server: per-block fetch pipeline
//!   with remote hits, home-disk reads, and eviction forwarding traffic.
//! * [`l2s_server`] — the baseline: parse → content/load-aware dispatch
//!   (hand-off or relay) → whole-file cache → local disk on miss.
//! * [`metrics`] — the per-run measurement bundle every figure is built from.
//!
//! Entry point: [`run`].

#![warn(missing_docs)]

pub mod ccm_server;
pub mod clients;
pub mod config;
pub mod l2s_server;
pub mod metrics;

pub use config::{CcmVariant, ServerKind, SimConfig};
pub use metrics::RunMetrics;

use ccm_traces::Workload;
use std::sync::Arc;

/// Run one simulation to completion and return its measurements.
pub fn run(cfg: &SimConfig, workload: &Arc<Workload>) -> RunMetrics {
    match cfg.server {
        ServerKind::Ccm(_) => ccm_server::run_ccm(cfg, workload),
        ServerKind::L2s { .. } => l2s_server::run_l2s(cfg, workload),
    }
}
