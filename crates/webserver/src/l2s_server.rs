//! The locality-conscious baseline server's request lifecycle.
//!
//! Flow: client → router → arrival node NIC → CPU parse → content/load-aware
//! dispatch. If the serving node differs from the arrival node, the request
//! is moved — by TCP hand-off (fixed CPU cost at the arrival node, after
//! which the serving node answers the client directly) or, for the hand-off
//! ablation, by front-node relay (the reply flows back through the arrival
//! node, which pays a second serving cost). At the serving node a cache hit
//! serves from memory; a miss reads the *whole file* from the local disk in
//! one sequential request (files are replicated on every disk, §4.1 — this
//! is why L2S never suffers the middleware's per-block disk interleaving).
//!
//! Same DES discipline as `ccm_server`: every hop is its own event; service
//! centers are only booked at the current event time.

use crate::clients::{build_clients, ClientSource};
use crate::config::{ServerKind, SimConfig};
use crate::metrics::RunMetrics;
use ccm_cluster::disk::DiskRequest;
use ccm_cluster::{Cluster, FileLayout, Placement};
use ccm_core::block::extents_of_file;
use ccm_core::NodeId;
use ccm_l2s::{L2sConfig, L2sStats, L2sSystem};
use ccm_traces::{RequestSource, Workload};
use simcore::{EventQueue, Histogram, SimTime, ThroughputMeter};
use std::sync::Arc;

enum Ev {
    /// Request reached the arrival node's NIC.
    Arrived { client: u32 },
    /// Parse CPU done; run the dispatch decision.
    DispatchReady { client: u32 },
    /// Hand-off CPU at the arrival node done; send the request over.
    HandoffDone { client: u32 },
    /// The moved request reached the serving node.
    CtrlAtTarget { client: u32 },
    /// Begin the serving CPU at the serving node.
    ServeAt { client: u32 },
    /// A disk finished a whole-file read.
    DiskDone { node: u16, tag: u64 },
    /// Serving CPU done; push the reply onto a NIC.
    ServeDone { client: u32 },
    /// Relay mode: the response reached the arrival node.
    RelayArrived { client: u32 },
    /// Relay mode: the arrival node finished re-sending CPU.
    RelayCpuDone { client: u32 },
    /// The reply reached the client.
    Delivered { client: u32 },
    /// The client's think time expired; issue its next request.
    NextIssue { client: u32 },
}

struct Req {
    arrival: NodeId,
    target: NodeId,
    file: ccm_core::FileId,
    size: u64,
    hit: bool,
    relay: bool,
    issued: SimTime,
}

struct WindowStart {
    stats: L2sStats,
    busy: ccm_cluster::node::BusySnapshot,
    seeks: u64,
    at: SimTime,
}

struct L2sSim {
    cfg: SimConfig,
    handoff: bool,
    workload: Arc<Workload>,
    layout: FileLayout,
    cluster: Cluster,
    system: L2sSystem,
    queue: EventQueue<Ev>,
    sources: Vec<ClientSource>,
    reqs: Vec<Req>,
    think_rng: simcore::Rng,
    completed_total: u64,
    meter: ThroughputMeter,
    responses: Histogram,
    window_start: Option<WindowStart>,
    finished_at: SimTime,
}

/// Run an L2S simulation.
///
/// # Panics
/// Panics if `cfg.server` is not [`ServerKind::L2s`].
pub fn run_l2s(cfg: &SimConfig, workload: &Arc<Workload>) -> RunMetrics {
    let ServerKind::L2s { handoff } = cfg.server else {
        panic!("run_l2s called with a non-L2S config");
    };
    // L2S assumes full disk replication regardless of the CCM placement.
    let layout = FileLayout::build(workload.sizes(), cfg.nodes as u16, Placement::Replicated);
    let mut l2s_cfg = L2sConfig::paper(cfg.nodes, cfg.mem_per_node.max(1));
    l2s_cfg.handoff = handoff;
    let sizes: Arc<[u64]> = workload.sizes().to_vec().into();

    let mut sim = L2sSim {
        cfg: cfg.clone(),
        handoff,
        workload: workload.clone(),
        layout,
        cluster: Cluster::new(
            cfg.nodes,
            ccm_cluster::DiskScheduler::Batched,
            cfg.costs.clone(),
        ),
        system: L2sSystem::new(l2s_cfg, sizes),
        queue: EventQueue::new(),
        sources: build_clients(workload, cfg),
        reqs: Vec::new(),
        think_rng: simcore::Rng::new(cfg.seed).substream(0xB00),
        completed_total: 0,
        meter: ThroughputMeter::new(),
        responses: Histogram::new(),
        window_start: None,
        finished_at: SimTime::ZERO,
    };
    sim.run()
}

impl L2sSim {
    fn run(&mut self) -> RunMetrics {
        for c in 0..self.cfg.total_clients() {
            self.reqs.push(Req {
                arrival: self.cfg.node_of_client(c),
                target: NodeId(0),
                file: ccm_core::FileId(0),
                size: 0,
                hit: false,
                relay: false,
                issued: SimTime::ZERO,
            });
            self.issue(c as u32, SimTime::ZERO);
        }
        let target = self.cfg.warmup_requests + self.cfg.measure_requests;
        while self.completed_total < target {
            let Some((now, ev)) = self.queue.pop() else {
                panic!("event queue drained before run completed");
            };
            match ev {
                Ev::Arrived { client } => {
                    let node = self.reqs[client as usize].arrival;
                    let done = self.cluster.cpu(node, now, self.cfg.costs.parse_time());
                    self.queue.push(done, Ev::DispatchReady { client });
                }
                Ev::DispatchReady { client } => self.on_dispatch(client, now),
                Ev::HandoffDone { client } => {
                    let (arrival, target) = {
                        let r = &self.reqs[client as usize];
                        (r.arrival, r.target)
                    };
                    let costs = self.cfg.costs.clone();
                    let at = self.cluster.net.send_control(now, arrival, target, &costs);
                    self.queue.push(at, Ev::CtrlAtTarget { client });
                }
                Ev::CtrlAtTarget { client } => self.start_service(client, now),
                Ev::ServeAt { client } => {
                    let (target, size) = {
                        let r = &self.reqs[client as usize];
                        (r.target, r.size)
                    };
                    let served = self
                        .cluster
                        .cpu(target, now, self.cfg.costs.serve_time(size));
                    self.queue.push(served, Ev::ServeDone { client });
                }
                Ev::DiskDone { node, tag } => self.on_disk_done(node, tag, now),
                Ev::ServeDone { client } => {
                    let (target, arrival, size, relay) = {
                        let r = &self.reqs[client as usize];
                        (r.target, r.arrival, r.size, r.relay)
                    };
                    let costs = self.cfg.costs.clone();
                    if relay && target != arrival {
                        let back = self.cluster.net.send(now, target, arrival, size, &costs);
                        self.queue.push(back, Ev::RelayArrived { client });
                    } else {
                        let delivered = self.cluster.net.client_reply(now, target, size, &costs);
                        self.queue.push(delivered, Ev::Delivered { client });
                    }
                }
                Ev::RelayArrived { client } => {
                    let (arrival, size) = {
                        let r = &self.reqs[client as usize];
                        (r.arrival, r.size)
                    };
                    // The front node pays a second serving cost to re-send.
                    let resent = self
                        .cluster
                        .cpu(arrival, now, self.cfg.costs.serve_time(size));
                    self.queue.push(resent, Ev::RelayCpuDone { client });
                }
                Ev::RelayCpuDone { client } => {
                    let (arrival, size) = {
                        let r = &self.reqs[client as usize];
                        (r.arrival, r.size)
                    };
                    let costs = self.cfg.costs.clone();
                    let delivered = self.cluster.net.client_reply(now, arrival, size, &costs);
                    self.queue.push(delivered, Ev::Delivered { client });
                }
                Ev::Delivered { client } => self.on_delivered(client, now),
                Ev::NextIssue { client } => self.issue(client, now),
            }
        }
        self.finish()
    }

    fn issue(&mut self, client: u32, now: SimTime) {
        let file = self.sources[client as usize].next_request();
        let req = &mut self.reqs[client as usize];
        req.file = ccm_core::FileId(file.0);
        req.size = self.workload.size_of(file);
        req.relay = false;
        req.hit = false;
        req.issued = now;
        let node = req.arrival;
        let arrival = self.cluster.net.client_request(
            now,
            node,
            self.cfg.costs.control_msg_bytes,
            &self.cfg.costs,
        );
        self.queue.push(arrival, Ev::Arrived { client });
    }

    fn on_dispatch(&mut self, client: u32, now: SimTime) {
        let (arrival, file) = {
            let r = &self.reqs[client as usize];
            (r.arrival, r.file)
        };
        let outcome = self.system.dispatch(arrival, file);
        self.system.begin_request(outcome.target);
        {
            let req = &mut self.reqs[client as usize];
            req.target = outcome.target;
            req.hit = outcome.hit;
        }

        match outcome.moved_from {
            None => self.start_service(client, now),
            Some(initial) => {
                if self.handoff {
                    let done = self
                        .cluster
                        .cpu(initial, now, self.cfg.costs.handoff_time());
                    self.queue.push(done, Ev::HandoffDone { client });
                } else {
                    self.reqs[client as usize].relay = true;
                    let costs = self.cfg.costs.clone();
                    let at = self
                        .cluster
                        .net
                        .send_control(now, initial, outcome.target, &costs);
                    self.queue.push(at, Ev::CtrlAtTarget { client });
                }
            }
        }
    }

    fn start_service(&mut self, client: u32, now: SimTime) {
        if self.reqs[client as usize].hit {
            self.queue.push(now, Ev::ServeAt { client });
        } else {
            self.submit_disk(client, now);
        }
    }

    /// One sequential whole-file read on the serving node's local disk.
    fn submit_disk(&mut self, client: u32, now: SimTime) {
        let (target, file, size) = {
            let r = &self.reqs[client as usize];
            (r.target, r.file, r.size)
        };
        let costs = self.cfg.costs.clone();
        let dreq = DiskRequest {
            tag: client as u64,
            address: self.layout.address_of(file),
            bytes: size.max(1),
            extents: extents_of_file(size),
        };
        if let Some(c) = self.cluster.nodes[target.index()]
            .disk
            .submit(now, dreq, &costs)
        {
            self.queue.push(
                c.done,
                Ev::DiskDone {
                    node: target.0,
                    tag: c.tag,
                },
            );
        }
    }

    fn on_disk_done(&mut self, node: u16, tag: u64, now: SimTime) {
        let costs = self.cfg.costs.clone();
        if let Some(c) = self.cluster.nodes[node as usize]
            .disk
            .next_after_completion(now, &costs)
        {
            self.queue.push(c.done, Ev::DiskDone { node, tag: c.tag });
        }
        let client = tag as u32;
        // Bus copy from the disk into memory, then serve.
        let size = self.reqs[client as usize].size;
        let ready = now + costs.bus_time(size);
        self.queue.push(ready, Ev::ServeAt { client });
    }

    fn on_delivered(&mut self, client: u32, now: SimTime) {
        self.system.end_request(self.reqs[client as usize].target);
        self.completed_total += 1;
        self.meter.record(now);
        if self.meter.is_measuring() {
            let resp = now.since(self.reqs[client as usize].issued);
            self.responses.record_duration(resp);
        }
        if self.completed_total == self.cfg.warmup_requests {
            self.meter.start_measuring(now);
            self.window_start = Some(WindowStart {
                stats: self.system.stats(),
                busy: self.cluster.busy_snapshot(),
                seeks: self.total_seeks(),
                at: now,
            });
        }
        self.finished_at = now;
        if self.completed_total < self.cfg.warmup_requests + self.cfg.measure_requests {
            let think = self.think_delay();
            if think.is_zero() {
                self.issue(client, now);
            } else {
                self.queue.push(now + think, Ev::NextIssue { client });
            }
        }
    }

    /// Exponential client think time (zero in the paper's max-throughput
    /// configuration).
    fn think_delay(&mut self) -> simcore::SimDuration {
        if self.cfg.think_time_ms <= 0.0 {
            return simcore::SimDuration::ZERO;
        }
        let ms =
            ccm_traces::distributions::exponential(&mut self.think_rng, self.cfg.think_time_ms);
        simcore::SimDuration::from_millis_f64(ms)
    }

    fn total_seeks(&self) -> u64 {
        self.cluster
            .nodes
            .iter()
            .map(|n| n.disk.stats().seeks)
            .sum()
    }

    fn finish(&mut self) -> RunMetrics {
        let start = self.window_start.take().expect("window never opened");
        let end_busy = self.cluster.busy_snapshot();
        let window = self.finished_at.since(start.at);
        let s = self.system.stats();
        let hits = s.hits - start.stats.hits;
        let misses = s.misses - start.stats.misses;
        let total = (hits + misses).max(1);
        let (mean, median, p95) = RunMetrics::response_fields(&self.responses);
        RunMetrics {
            label: self.cfg.server.label(),
            throughput_rps: self.meter.rate_per_sec(self.finished_at),
            mean_response_ms: mean,
            median_response_ms: median,
            p95_response_ms: p95,
            completed: self.meter.completions(),
            window_secs: window.as_secs_f64(),
            local_hit_rate: hits as f64 / total as f64,
            remote_hit_rate: 0.0,
            disk_rate: misses as f64 / total as f64,
            utilization: start.busy.utilization_until(&end_busy, window),
            max_disk_util: start
                .busy
                .disk_utilization_per_node(&end_busy, window)
                .into_iter()
                .fold(0.0, f64::max),
            disk_seeks: self.total_seeks() - start.seeks,
            disk_reads: misses,
            forwards: 0,
            hint_accuracy: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use ccm_traces::SynthConfig;

    fn small_workload() -> Arc<Workload> {
        Arc::new(
            SynthConfig {
                n_files: 400,
                total_bytes: Some(24 << 20),
                ..SynthConfig::default()
            }
            .build(),
        )
    }

    fn run(handoff: bool, mem_mb: u64) -> RunMetrics {
        let cfg = SimConfig::paper(ServerKind::L2s { handoff }, 4, mem_mb << 20).quick();
        run_l2s(&cfg, &small_workload())
    }

    #[test]
    fn completes_and_reports() {
        let m = run(true, 8);
        assert_eq!(m.completed, 4_000);
        assert!(m.throughput_rps > 0.0);
        assert!((m.local_hit_rate + m.disk_rate - 1.0).abs() < 1e-9);
        assert_eq!(m.remote_hit_rate, 0.0);
    }

    #[test]
    fn big_memory_means_high_hit_rate() {
        let m = run(true, 32);
        assert!(m.local_hit_rate > 0.97, "hit rate {}", m.local_hit_rate);
        assert!(m.disk_rate < 0.03);
    }

    #[test]
    fn content_aware_distribution_deduplicates_memory() {
        // Even when per-node memory (2 MB) is far below the file set (24 MB),
        // 4 nodes x 2 MB of deduplicated cache should hold the hot set and
        // hit most of the time.
        let m = run(true, 2);
        assert!(m.local_hit_rate > 0.6, "hit rate {}", m.local_hit_rate);
    }

    #[test]
    fn memory_resident_requests_are_fast() {
        let m = run(true, 32);
        assert!(
            m.median_response_ms < 5.0,
            "median {} ms with everything cached",
            m.median_response_ms
        );
    }

    #[test]
    fn handoff_beats_relay() {
        let with = run(true, 8);
        let without = run(false, 8);
        assert!(
            with.throughput_rps > without.throughput_rps,
            "handoff {} <= relay {}",
            with.throughput_rps,
            without.throughput_rps
        );
    }

    #[test]
    fn deterministic() {
        let a = run(true, 8);
        let b = run(true, 8);
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(a.mean_response_ms, b.mean_response_ms);
    }
}
