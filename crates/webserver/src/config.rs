//! Simulation run configuration.

use ccm_cluster::{CostModel, DiskScheduler, Placement};
use ccm_core::NodeId;
use ccm_core::{DirectoryKind, ReplacementPolicy};

/// Which middleware variant a CCM run uses. These are the three curves of
/// Figure 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcmVariant {
    /// Replacement policy (-Basic/scheduled use global LRU; the paper's
    /// winning variant preserves masters).
    pub policy: ReplacementPolicy,
    /// Disk queue discipline (FIFO for -Basic, batched for the others).
    pub scheduler: DiskScheduler,
    /// Perfect directory (paper assumption) or hint-based (§6 extension).
    pub directory: DirectoryKind,
    /// Extension: promote a surviving replica when a master drops.
    pub promote_on_master_drop: bool,
    /// Read-ahead at the home disk: a demand miss extends into one
    /// sequential read of the following absent blocks, and the requester
    /// masters them. Part of the paper's -Sched disk fix ("request
    /// scheduling, caching, and/or prefetching", §5); off for -Basic.
    pub read_ahead: bool,
    /// Maximum blocks per read-ahead run (window). Larger windows equalize
    /// cold-file disk cost with L2S's whole-file reads, but pollute tiny
    /// caches; 64 blocks (512 KB) balances the sweep.
    pub read_ahead_blocks: u32,
    /// Extension (§6): whole-file adaptation — a miss on any block fetches
    /// the entire file through the middleware.
    pub whole_file: bool,
}

impl CcmVariant {
    /// The paper's "-Basic": traditional global-LRU cooperative caching,
    /// FIFO disk queues.
    pub fn basic() -> CcmVariant {
        CcmVariant {
            policy: ReplacementPolicy::GlobalLru,
            scheduler: DiskScheduler::Fifo,
            directory: DirectoryKind::Perfect,
            promote_on_master_drop: false,
            read_ahead: false,
            read_ahead_blocks: 64,
            whole_file: false,
        }
    }

    /// -Basic plus disk request scheduling (the paper's middle curve).
    pub fn scheduled() -> CcmVariant {
        CcmVariant {
            scheduler: DiskScheduler::Batched,
            read_ahead: true,
            ..CcmVariant::basic()
        }
    }

    /// The paper's final variant: disk scheduling plus the master-preserving
    /// replacement modification.
    pub fn master_preserving() -> CcmVariant {
        CcmVariant {
            policy: ReplacementPolicy::MasterPreserving,
            ..CcmVariant::scheduled()
        }
    }

    /// Label used in figures, matching DESIGN.md naming.
    pub fn label(&self) -> String {
        let mut base = match (self.policy, self.scheduler) {
            (ReplacementPolicy::GlobalLru, DiskScheduler::Fifo) => "ccm-basic".to_string(),
            (ReplacementPolicy::GlobalLru, DiskScheduler::Batched) => "ccm-sched".to_string(),
            (ReplacementPolicy::MasterPreserving, DiskScheduler::Fifo) => {
                "ccm-mp-nosched".to_string()
            }
            (ReplacementPolicy::MasterPreserving, DiskScheduler::Batched) => "ccm-mp".to_string(),
            (ReplacementPolicy::NChance { chances }, _) => format!("ccm-nchance{chances}"),
        };
        // Canonical curves: basic = FIFO without read-ahead, sched/mp =
        // batched with read-ahead. Deviations get a suffix.
        match (self.scheduler, self.read_ahead) {
            (DiskScheduler::Fifo, true) => base.push_str("+ra"),
            (DiskScheduler::Batched, false) => base.push_str("-nora"),
            _ => {}
        }
        if self.directory == DirectoryKind::Hint {
            base.push_str("+hints");
        }
        if self.promote_on_master_drop {
            base.push_str("+promote");
        }
        if self.whole_file {
            base.push_str("+wholefile");
        }
        base
    }
}

/// Which server is being simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServerKind {
    /// A web server over the cooperative caching middleware.
    Ccm(CcmVariant),
    /// The locality- and load-conscious baseline.
    L2s {
        /// TCP hand-off enabled (the paper's L2S) or front-node relay.
        handoff: bool,
    },
}

impl ServerKind {
    /// Label used in figures.
    pub fn label(&self) -> String {
        match self {
            ServerKind::Ccm(v) => v.label(),
            ServerKind::L2s { handoff: true } => "l2s".to_string(),
            ServerKind::L2s { handoff: false } => "l2s-nohandoff".to_string(),
        }
    }
}

/// One simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Server flavor.
    pub server: ServerKind,
    /// Cluster size (the paper simulates 4, 8, and up to 32 nodes).
    pub nodes: usize,
    /// Memory per node devoted to caching, bytes (paper: 4–512 MB).
    pub mem_per_node: u64,
    /// Closed-loop HTTP clients per node (via round-robin DNS).
    pub clients_per_node: usize,
    /// Per-client temporal locality: probability that a client's next
    /// request re-references its own recent documents (0 = the paper's
    /// popularity-only sampling; see `ccm-traces::temporal`).
    pub client_locality: f64,
    /// Distinct recent documents each client can re-reference.
    pub locality_stack: usize,
    /// Mean exponential client think time between a response and the next
    /// request, ms. The paper's maximum-throughput runs use 0 ("each HTTP
    /// client generates a new request as soon as the previous one has been
    /// served"); nonzero values turn the client population into a tunable
    /// offered load for latency-vs-load studies.
    pub think_time_ms: f64,
    /// Requests completed before measurement starts (cache warm-up).
    pub warmup_requests: u64,
    /// Requests measured after warm-up; the run ends when they complete.
    pub measure_requests: u64,
    /// File placement over the cluster's disks (CCM runs; L2S always uses
    /// its replicated-disks assumption).
    pub placement: Placement,
    /// Hardware timing constants.
    pub costs: CostModel,
    /// Master seed; every stochastic component derives a substream.
    pub seed: u64,
}

impl SimConfig {
    /// A paper-style run of `server` on `nodes` nodes with `mem_per_node`
    /// bytes of cache memory each.
    pub fn paper(server: ServerKind, nodes: usize, mem_per_node: u64) -> SimConfig {
        SimConfig {
            server,
            nodes,
            mem_per_node,
            clients_per_node: 32,
            client_locality: 0.0,
            locality_stack: 64,
            think_time_ms: 0.0,
            // The paper's traces have ~100+ requests per distinct file; the
            // windows below give the synthetic presets a comparable ratio so
            // steady state is not swamped by compulsory misses.
            warmup_requests: 150_000,
            measure_requests: 150_000,
            placement: Placement::Striped,
            costs: CostModel::default(),
            seed: 0x5EED,
        }
    }

    /// Shrink the run for unit/integration tests (fast in debug builds).
    pub fn quick(mut self) -> SimConfig {
        self.clients_per_node = 8;
        self.warmup_requests = 2_000;
        self.measure_requests = 4_000;
        self
    }

    /// Total clients across the cluster.
    pub fn total_clients(&self) -> usize {
        self.nodes * self.clients_per_node
    }

    /// The node client `i` is bound to (round-robin DNS).
    pub fn node_of_client(&self, i: usize) -> NodeId {
        NodeId((i % self.nodes) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_constructors_match_paper_curves() {
        let b = CcmVariant::basic();
        assert_eq!(b.policy, ReplacementPolicy::GlobalLru);
        assert_eq!(b.scheduler, DiskScheduler::Fifo);
        let s = CcmVariant::scheduled();
        assert_eq!(s.policy, ReplacementPolicy::GlobalLru);
        assert_eq!(s.scheduler, DiskScheduler::Batched);
        let m = CcmVariant::master_preserving();
        assert_eq!(m.policy, ReplacementPolicy::MasterPreserving);
        assert_eq!(m.scheduler, DiskScheduler::Batched);
    }

    #[test]
    fn labels_are_unique() {
        let labels = [
            ServerKind::Ccm(CcmVariant::basic()).label(),
            ServerKind::Ccm(CcmVariant::scheduled()).label(),
            ServerKind::Ccm(CcmVariant::master_preserving()).label(),
            ServerKind::L2s { handoff: true }.label(),
            ServerKind::L2s { handoff: false }.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn client_binding_is_round_robin() {
        let cfg = SimConfig::paper(ServerKind::L2s { handoff: true }, 4, 1 << 20);
        assert_eq!(cfg.total_clients(), 128);
        assert_eq!(cfg.node_of_client(0), NodeId(0));
        assert_eq!(cfg.node_of_client(5), NodeId(1));
        assert_eq!(cfg.node_of_client(127), NodeId(3));
    }

    #[test]
    fn quick_shrinks_run() {
        let cfg = SimConfig::paper(ServerKind::Ccm(CcmVariant::basic()), 4, 1 << 20).quick();
        assert!(cfg.warmup_requests < 10_000);
        assert!(cfg.measure_requests < 10_000);
    }
}
