//! Per-run measurements — the raw material of every figure.
//!
//! All rates and means are computed over the post-warm-up window only,
//! matching §4.3 ("we measure throughput only after the caches have been
//! warmed up in order to reflect their steady-state performance").

use ccm_cluster::node::ResourceUtilization;
use simcore::Histogram;

/// The measurements of one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Server label (`l2s`, `ccm-basic`, `ccm-sched`, `ccm-mp`, …).
    pub label: String,
    /// Completed requests per second in the measurement window (Figure 2/3/6b).
    pub throughput_rps: f64,
    /// Mean response time, ms (Figure 5).
    pub mean_response_ms: f64,
    /// Median response time, ms.
    pub median_response_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_response_ms: f64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Simulated seconds the window spanned.
    pub window_secs: f64,
    /// Fraction of block (CCM) or file (L2S) accesses served from the
    /// requesting/serving node's own memory (Figure 4).
    pub local_hit_rate: f64,
    /// Fraction served from a peer's memory (CCM only; 0 for L2S).
    pub remote_hit_rate: f64,
    /// Fraction that reached a disk.
    pub disk_rate: f64,
    /// Mean CPU/disk/NIC utilization across nodes in the window (Figure 6a).
    pub utilization: ResourceUtilization,
    /// The busiest single disk's utilization — "the first disk that is
    /// slowed down … becomes the performance bottleneck" (§5).
    pub max_disk_util: f64,
    /// Total disk seeks paid in the window (scheduler ablation).
    pub disk_seeks: u64,
    /// Disk read requests issued in the window (blocks for CCM, whole files
    /// for L2S); `disk_seeks / disk_reads` is the scheduler-quality signal.
    pub disk_reads: u64,
    /// Master forwards in the window (CCM only).
    pub forwards: u64,
    /// Hint-directory first-hint accuracy (CCM + hints only; 0 otherwise).
    pub hint_accuracy: f64,
}

impl RunMetrics {
    /// Build the response-time fields from a nanosecond histogram.
    pub fn response_fields(h: &Histogram) -> (f64, f64, f64) {
        (
            h.mean() / 1.0e6,
            h.median() as f64 / 1.0e6,
            h.quantile(0.95) as f64 / 1.0e6,
        )
    }

    /// Aggregate hit rate (local + remote) — the paper's headline hit rate.
    pub fn total_hit_rate(&self) -> f64 {
        self.local_hit_rate + self.remote_hit_rate
    }

    /// Seeks paid per disk read — how well the disk scheduler kept request
    /// streams from interleaving (2.0 = every read paid positioning +
    /// metadata; near 0 = almost always head-contiguous).
    pub fn seeks_per_read(&self) -> f64 {
        if self.disk_reads == 0 {
            0.0
        } else {
            self.disk_seeks as f64 / self.disk_reads as f64
        }
    }

    /// One CSV row; see [`RunMetrics::csv_header`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.1},{:.4},{:.4},{:.4},{},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{:.4}",
            self.label,
            self.throughput_rps,
            self.mean_response_ms,
            self.median_response_ms,
            self.p95_response_ms,
            self.completed,
            self.window_secs,
            self.local_hit_rate,
            self.remote_hit_rate,
            self.disk_rate,
            self.utilization.cpu,
            self.utilization.disk,
            self.utilization.nic,
            self.max_disk_util,
            self.disk_seeks,
            self.disk_reads,
            self.forwards,
            self.hint_accuracy,
        )
    }

    /// The CSV header matching [`RunMetrics::csv_row`].
    pub fn csv_header() -> &'static str {
        "label,throughput_rps,mean_ms,median_ms,p95_ms,completed,window_secs,\
         local_hit,remote_hit,disk_rate,cpu_util,disk_util,nic_util,max_disk_util,\
         seeks,disk_reads,forwards,hint_acc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            label: "test".into(),
            throughput_rps: 1234.5,
            mean_response_ms: 2.5,
            median_response_ms: 2.0,
            p95_response_ms: 9.0,
            completed: 1000,
            window_secs: 0.81,
            local_hit_rate: 0.2,
            remote_hit_rate: 0.6,
            disk_rate: 0.2,
            utilization: ResourceUtilization {
                cpu: 0.5,
                disk: 0.9,
                nic: 0.1,
            },
            max_disk_util: 0.95,
            disk_seeks: 42,
            disk_reads: 21,
            forwards: 7,
            hint_accuracy: 0.0,
        }
    }

    #[test]
    fn total_hit_rate_sums_components() {
        assert!((sample().total_hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let cols = RunMetrics::csv_header().split(',').count();
        let vals = sample().csv_row().split(',').count();
        assert_eq!(cols, vals);
    }

    #[test]
    fn response_fields_convert_ns_to_ms() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(2_000_000); // 2 ms
        }
        let (mean, median, p95) = RunMetrics::response_fields(&h);
        assert!((mean - 2.0).abs() < 1e-9);
        assert!((median - 2.0).abs() / 2.0 < 0.07);
        assert!((p95 - 2.0).abs() / 2.0 < 0.07);
    }
}
