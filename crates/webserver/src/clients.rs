//! Closed-loop HTTP clients.
//!
//! Each client is pinned to a node by round-robin DNS (a DNS answer binds
//! the client for its whole session) and "generates a new request as soon as
//! the previous one has been served" (§4.3). A client draws its requests
//! from its own deterministic substream of the workload's popularity
//! distribution, or replays a slice of a recorded trace.

use ccm_traces::{ReplaySource, RequestSource, SampledSource, TemporalSource, Workload};
use simcore::Rng;
use std::sync::Arc;

/// Where a client's requests come from.
pub enum ClientSource {
    /// i.i.d. draws from the workload popularity (synthetic presets).
    Sampled(SampledSource),
    /// Popularity draws with an LRU-stack temporal-locality layer.
    Temporal(TemporalSource),
    /// Replay of a recorded sequence (real CLF traces).
    Replay(ReplaySource),
}

impl RequestSource for ClientSource {
    fn next_request(&mut self) -> ccm_traces::FileId {
        match self {
            ClientSource::Sampled(s) => s.next_request(),
            ClientSource::Temporal(t) => t.next_request(),
            ClientSource::Replay(r) => r.next_request(),
        }
    }
}

/// Build the per-client sources for a run: `n` sampled clients with
/// independent substreams of `seed`.
pub fn sampled_clients(workload: &Arc<Workload>, n: usize, seed: u64) -> Vec<ClientSource> {
    let root = Rng::new(seed);
    (0..n)
        .map(|i| {
            ClientSource::Sampled(SampledSource::new(
                workload.clone(),
                root.substream(0x10_000 + i as u64),
            ))
        })
        .collect()
}

/// Build per-client temporal-locality sources: each client re-references
/// its own recent documents with probability `locality`.
pub fn temporal_clients(
    workload: &Arc<Workload>,
    n: usize,
    seed: u64,
    locality: f64,
    stack: usize,
) -> Vec<ClientSource> {
    let root = Rng::new(seed);
    (0..n)
        .map(|i| {
            ClientSource::Temporal(TemporalSource::new(
                workload.clone(),
                root.substream(0x20_000 + i as u64),
                locality,
                stack,
            ))
        })
        .collect()
}

/// Build the client population a [`SimConfig`] asks for (sampled or
/// temporal).
///
/// [`SimConfig`]: crate::config::SimConfig
pub fn build_clients(
    workload: &Arc<Workload>,
    cfg: &crate::config::SimConfig,
) -> Vec<ClientSource> {
    if cfg.client_locality > 0.0 {
        temporal_clients(
            workload,
            cfg.total_clients(),
            cfg.seed,
            cfg.client_locality,
            cfg.locality_stack,
        )
    } else {
        sampled_clients(workload, cfg.total_clients(), cfg.seed)
    }
}

/// Build replay clients over a recorded sequence, staggered so they do not
/// march in lock-step.
pub fn replay_clients(seq: Arc<[ccm_traces::FileId]>, n: usize) -> Vec<ClientSource> {
    let stride = (seq.len() / n.max(1)).max(1);
    (0..n)
        .map(|i| ClientSource::Replay(ReplaySource::new(seq.clone(), i * stride)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm_traces::{FileId, SynthConfig};

    fn workload() -> Arc<Workload> {
        Arc::new(
            SynthConfig {
                n_files: 100,
                ..SynthConfig::default()
            }
            .build(),
        )
    }

    #[test]
    fn sampled_clients_are_independent_and_deterministic() {
        let w = workload();
        let mut a = sampled_clients(&w, 4, 1);
        let mut b = sampled_clients(&w, 4, 1);
        let seq_a: Vec<FileId> = (0..50).map(|_| a[0].next_request()).collect();
        let seq_b: Vec<FileId> = (0..50).map(|_| b[0].next_request()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same stream");
        let seq_c: Vec<FileId> = (0..50).map(|_| a[1].next_request()).collect();
        assert_ne!(seq_a, seq_c, "different clients diverge");
    }

    #[test]
    fn temporal_clients_are_deterministic_and_local() {
        let w = workload();
        let mut a = temporal_clients(&w, 2, 9, 0.8, 16);
        let mut b = temporal_clients(&w, 2, 9, 0.8, 16);
        let seq: Vec<FileId> = (0..100).map(|_| a[0].next_request()).collect();
        let seq2: Vec<FileId> = (0..100).map(|_| b[0].next_request()).collect();
        assert_eq!(seq, seq2);
        // High locality: plenty of immediate repeats in a window.
        let repeats = seq.windows(8).filter(|w| w[1..].contains(&w[0])).count();
        assert!(repeats > 10, "only {repeats} repeats");
    }

    #[test]
    fn replay_clients_stagger_offsets() {
        let seq: Arc<[FileId]> = (0..100).map(FileId).collect::<Vec<_>>().into();
        let mut clients = replay_clients(seq, 4);
        assert_eq!(clients[0].next_request(), FileId(0));
        assert_eq!(clients[1].next_request(), FileId(25));
        assert_eq!(clients[2].next_request(), FileId(50));
        assert_eq!(clients[3].next_request(), FileId(75));
    }

    #[test]
    fn more_clients_than_trace_entries_still_works() {
        let seq: Arc<[FileId]> = vec![FileId(0), FileId(1)].into();
        let mut clients = replay_clients(seq, 8);
        for c in clients.iter_mut() {
            let f = c.next_request();
            assert!(f.0 < 2);
        }
    }
}
