//! The middleware-based web server: request lifecycle over the cluster.
//!
//! One request flows: client → router → node NIC → CPU (parse + file-request
//! processing) → per-block fetch pipeline → CPU serving time → NIC → client,
//! and the client immediately issues its next request (closed loop, §4.3).
//!
//! The per-block pipeline charges exactly the Table 1 block operations:
//!
//! * **local hit** — free beyond the per-block file-request CPU already paid;
//! * **remote hit** — control message to the master holder, "serve peer block
//!   request" CPU there, block transfer back, "cache a new block" CPU here;
//! * **disk read** — control message to the file's home node (unless local),
//!   a per-block request in that disk's queue (this is where request streams
//!   interleave and FIFO disks melt down), then the master copy forwarded
//!   back and cached;
//! * **eviction forwarding** — a fire-and-forget block transfer to the peer
//!   with the oldest block plus "process an evicted master block" CPU there.
//!   It does not block the request that triggered it, but it does occupy the
//!   NIC and CPU — the extra network traffic the paper trades for disk reads.
//!
//! Blocks are fetched sequentially within a request (the stream behavior the
//! paper's disk-interleaving analysis assumes). The §6 "whole-file
//! adaptation" extension instead launches every block fetch at once and
//! serves when the last lands.
//!
//! **DES discipline:** a service center is only ever booked at the *current*
//! event time — each hop of a multi-hop path is its own event. Booking
//! resources at future instants would reserve them in call order rather than
//! arrival order and serialize the whole simulation behind phantom queues.

use crate::clients::{build_clients, ClientSource};
use crate::config::{CcmVariant, ServerKind, SimConfig};
use crate::metrics::RunMetrics;
use ccm_cluster::disk::DiskRequest;
use ccm_cluster::{Cluster, FileLayout};
use ccm_core::block::{block_bytes, blocks_of_file, BLOCK_SIZE};
use ccm_core::{AccessOutcome, BlockId, CacheConfig, ClusterCache, Disposition, NodeId};
use ccm_traces::{RequestSource, Workload};
use simcore::{EventQueue, Histogram, SimDuration, SimTime, ThroughputMeter};
use std::sync::Arc;

enum Ev {
    /// Request reached its node's NIC.
    Arrived { client: u32 },
    /// Parse + file-request CPU done; start fetching blocks.
    BlocksReady { client: u32 },
    /// Block-request control message arrived at the master holder.
    PeerCtrl { client: u32, from: u16, bytes: u32 },
    /// The peer finished its "serve peer block request" CPU; start the data
    /// transfer back.
    PeerCpuDone { client: u32, from: u16, bytes: u32 },
    /// Block data arrived at the requester; install it ("cache a new block").
    DataArrived { client: u32 },
    /// Block-request control message arrived at the home node's disk;
    /// `span` blocks starting at `block` are read in one contiguous run
    /// (span > 1 under extent read-ahead).
    DiskSubmit {
        client: u32,
        home: u16,
        block: u32,
        span: u32,
    },
    /// A disk finished a transfer; `tag` encodes (client, block index).
    DiskDone { node: u16, tag: u64 },
    /// One in-flight block fetch fully finished.
    FetchDone { client: u32 },
    /// Serving CPU done; push the reply onto the NIC.
    ServeDone { client: u32 },
    /// A forwarded master arrived at the peer with the oldest block.
    ForwardArrived { to: u16 },
    /// The reply reached the client.
    Delivered { client: u32 },
    /// The client's think time expired; issue its next request.
    NextIssue { client: u32 },
}

struct Req {
    node: NodeId,
    file: ccm_core::FileId,
    size: u64,
    nblocks: u32,
    next_block: u32,
    pending: u32,
    issued: SimTime,
}

/// Hard ceiling on blocks per disk request (tag encoding limit); the
/// effective window is `CcmVariant::read_ahead_blocks`.
const MAX_SPAN: u32 = 4095;

fn tag_of(client: u32, block: u32, span: u32) -> u64 {
    debug_assert!(block < 1 << 20 && span <= MAX_SPAN);
    ((client as u64) << 32) | ((block as u64) << 12) | span as u64
}

fn untag(tag: u64) -> (u32, u32, u32) {
    (
        (tag >> 32) as u32,
        ((tag >> 12) & 0xF_FFFF) as u32,
        (tag & 0xFFF) as u32,
    )
}

/// Bytes of the contiguous run `block .. block + span` of a `size`-byte file.
fn span_bytes(size: u64, block: u32, span: u32) -> u64 {
    (block..block + span).map(|b| block_bytes(size, b)).sum()
}

struct CcmSim {
    cfg: SimConfig,
    variant: CcmVariant,
    workload: Arc<Workload>,
    layout: FileLayout,
    cluster: Cluster,
    cache: ClusterCache,
    queue: EventQueue<Ev>,
    sources: Vec<ClientSource>,
    reqs: Vec<Req>,
    think_rng: simcore::Rng,
    // Measurement state.
    completed_total: u64,
    meter: ThroughputMeter,
    responses: Histogram,
    window_start_stats: Option<WindowStart>,
    finished_at: SimTime,
}

struct WindowStart {
    cache: ccm_core::CacheStats,
    busy: ccm_cluster::node::BusySnapshot,
    seeks: u64,
    at: SimTime,
}

/// Run a CCM-variant simulation.
///
/// # Panics
/// Panics if `cfg.server` is not a CCM variant.
pub fn run_ccm(cfg: &SimConfig, workload: &Arc<Workload>) -> RunMetrics {
    let ServerKind::Ccm(variant) = cfg.server else {
        panic!("run_ccm called with a non-CCM config");
    };
    let capacity_blocks = ((cfg.mem_per_node / BLOCK_SIZE) as usize).max(1);
    let mut cache_cfg = CacheConfig::paper(cfg.nodes, capacity_blocks, variant.policy);
    cache_cfg.directory = variant.directory;
    cache_cfg.promote_on_master_drop = variant.promote_on_master_drop;

    let layout = FileLayout::build(workload.sizes(), cfg.nodes as u16, cfg.placement);
    let cluster = Cluster::new(cfg.nodes, variant.scheduler, cfg.costs.clone());
    let sources = build_clients(workload, cfg);

    let mut sim = CcmSim {
        cfg: cfg.clone(),
        variant,
        workload: workload.clone(),
        layout,
        cluster,
        cache: ClusterCache::new(cache_cfg),
        queue: EventQueue::new(),
        sources,
        reqs: Vec::new(),
        think_rng: simcore::Rng::new(cfg.seed).substream(0xB00),
        completed_total: 0,
        meter: ThroughputMeter::new(),
        responses: Histogram::new(),
        window_start_stats: None,
        finished_at: SimTime::ZERO,
    };
    sim.run()
}

impl CcmSim {
    fn run(&mut self) -> RunMetrics {
        for c in 0..self.cfg.total_clients() {
            self.reqs.push(Req {
                node: self.cfg.node_of_client(c),
                file: ccm_core::FileId(0),
                size: 0,
                nblocks: 0,
                next_block: 0,
                pending: 0,
                issued: SimTime::ZERO,
            });
            self.issue(c as u32, SimTime::ZERO);
        }

        let target = self.cfg.warmup_requests + self.cfg.measure_requests;
        while self.completed_total < target {
            let Some((now, ev)) = self.queue.pop() else {
                panic!("event queue drained before run completed");
            };
            match ev {
                Ev::Arrived { client } => self.on_arrived(client, now),
                Ev::BlocksReady { client } => self.advance(client, now),
                Ev::PeerCtrl {
                    client,
                    from,
                    bytes,
                } => {
                    let served =
                        self.cluster
                            .cpu(NodeId(from), now, self.cfg.costs.peer_block_time());
                    self.queue.push(
                        served,
                        Ev::PeerCpuDone {
                            client,
                            from,
                            bytes,
                        },
                    );
                }
                Ev::PeerCpuDone {
                    client,
                    from,
                    bytes,
                } => {
                    let node = self.reqs[client as usize].node;
                    let costs = self.cfg.costs.clone();
                    let arrival =
                        self.cluster
                            .net
                            .send(now, NodeId(from), node, bytes as u64, &costs);
                    self.queue.push(arrival, Ev::DataArrived { client });
                }
                Ev::DataArrived { client } => {
                    let node = self.reqs[client as usize].node;
                    let cached = self
                        .cluster
                        .cpu(node, now, self.cfg.costs.cache_block_time());
                    self.queue.push(cached, Ev::FetchDone { client });
                }
                Ev::DiskSubmit {
                    client,
                    home,
                    block,
                    span,
                } => {
                    self.on_disk_submit(client, home, block, span, now);
                }
                Ev::DiskDone { node, tag } => self.on_disk_done(node, tag, now),
                Ev::FetchDone { client } => {
                    self.reqs[client as usize].pending -= 1;
                    self.advance(client, now);
                }
                Ev::ServeDone { client } => {
                    let (node, size) = {
                        let r = &self.reqs[client as usize];
                        (r.node, r.size)
                    };
                    let costs = self.cfg.costs.clone();
                    let delivered = self.cluster.net.client_reply(now, node, size, &costs);
                    self.queue.push(delivered, Ev::Delivered { client });
                }
                Ev::ForwardArrived { to } => {
                    self.cluster
                        .cpu(NodeId(to), now, self.cfg.costs.evict_master_time());
                }
                Ev::Delivered { client } => self.on_delivered(client, now),
                Ev::NextIssue { client } => self.issue(client, now),
            }
        }
        self.finish()
    }

    fn issue(&mut self, client: u32, now: SimTime) {
        let file = self.sources[client as usize].next_request();
        let file = ccm_core::FileId(file.0);
        let size = self.workload.size_of(ccm_traces::FileId(file.0));
        let req = &mut self.reqs[client as usize];
        req.file = file;
        req.size = size;
        req.nblocks = blocks_of_file(size);
        req.next_block = 0;
        req.pending = 0;
        req.issued = now;
        let node = req.node;
        let arrival = self.cluster.net.client_request(
            now,
            node,
            self.cfg.costs.control_msg_bytes,
            &self.cfg.costs,
        );
        self.queue.push(arrival, Ev::Arrived { client });
    }

    fn on_arrived(&mut self, client: u32, now: SimTime) {
        let (node, nblocks) = {
            let req = &self.reqs[client as usize];
            (req.node, req.nblocks)
        };
        let work = self.cfg.costs.parse_time() + self.cfg.costs.file_request_time(nblocks);
        let done = self.cluster.cpu(node, now, work);
        self.queue.push(done, Ev::BlocksReady { client });
    }

    /// Extra latency of a stale-hint misdirection: control there and "not
    /// here" back. The hinted node's NIC occupancy for the ~100-byte reply is
    /// left unbooked (it would require a future booking for a negligible
    /// resource charge).
    fn wasted_hop_delay(&self, hop: Option<NodeId>) -> SimDuration {
        match hop {
            None => SimDuration::ZERO,
            Some(_) => {
                (self.cfg.costs.nic_time(self.cfg.costs.control_msg_bytes)
                    + self.cfg.costs.net_latency())
                    * 2
            }
        }
    }

    /// Fetch blocks sequentially (one outstanding fetch per request — the
    /// stream behavior the paper's disk-interleaving analysis assumes); the
    /// whole-file extension launches everything at once. Under
    /// [`CcmVariant::read_ahead`], a demand miss also installs the rest of
    /// its extent from the same contiguous disk run, so the following blocks
    /// of the extent are local hits. Serve when all blocks are resident.
    /// `now` is the current event time.
    fn advance(&mut self, client: u32, now: SimTime) {
        loop {
            let (node, file, size, nblocks, next_block, pending) = {
                let r = &self.reqs[client as usize];
                (r.node, r.file, r.size, r.nblocks, r.next_block, r.pending)
            };
            if next_block >= nblocks {
                if pending == 0 {
                    let served = self.cluster.cpu(node, now, self.cfg.costs.serve_time(size));
                    self.queue.push(served, Ev::ServeDone { client });
                }
                return;
            }
            if !self.variant.whole_file && pending > 0 {
                return; // sequential: one outstanding fetch per request
            }
            let block = BlockId::new(file, next_block);
            let bytes = block_bytes(size, next_block);
            self.reqs[client as usize].next_block += 1;
            match self.cache.access(node, block) {
                AccessOutcome::LocalHit { .. } => continue,
                AccessOutcome::RemoteHit {
                    from,
                    eviction,
                    wasted_hop,
                    ..
                } => {
                    let costs = self.cfg.costs.clone();
                    let ctrl = self.cluster.net.send_control(now, node, from, &costs)
                        + self.wasted_hop_delay(wasted_hop);
                    self.reqs[client as usize].pending += 1;
                    self.queue.push(
                        ctrl,
                        Ev::PeerCtrl {
                            client,
                            from: from.0,
                            bytes: bytes as u32,
                        },
                    );
                    self.charge_eviction(node, eviction, now);
                }
                AccessOutcome::DiskRead {
                    eviction,
                    wasted_hop,
                } => {
                    let costs = self.cfg.costs.clone();
                    // With replicated disks (the L2S file distribution the
                    // paper planned to port over, §4.1), every node reads
                    // misses from its own disk.
                    let home = if self.layout.is_local(file, node) {
                        node
                    } else {
                        self.layout.home_of(file)
                    };
                    self.charge_eviction(node, eviction, now);
                    // Read-ahead: extend the contiguous run toward the end of
                    // the file (a web server always streams the whole file;
                    // the home disk serves the run as one sequential read,
                    // exactly like L2S's whole-file reads), stopping at the
                    // first block already in cluster memory or at the span
                    // cap. The request still waits for the run to land
                    // before serving (`pending` gates the serve).
                    let mut span = 1u32;
                    if self.variant.read_ahead {
                        let window = self.variant.read_ahead_blocks.clamp(1, MAX_SPAN);
                        let run_end = nblocks.min(next_block + window);
                        while next_block + span < run_end {
                            let blk = BlockId::new(file, next_block + span);
                            match self.cache.install_prefetched(node, blk) {
                                ccm_core::PrefetchOutcome::AlreadyPresent => break,
                                ccm_core::PrefetchOutcome::Installed { eviction } => {
                                    self.charge_eviction(node, eviction, now);
                                    span += 1;
                                }
                            }
                        }
                    }
                    let submit_at = if home == node {
                        now + self.wasted_hop_delay(wasted_hop)
                    } else {
                        self.cluster.net.send_control(now, node, home, &costs)
                            + self.wasted_hop_delay(wasted_hop)
                    };
                    self.reqs[client as usize].pending += 1;
                    self.queue.push(
                        submit_at,
                        Ev::DiskSubmit {
                            client,
                            home: home.0,
                            block: next_block,
                            span,
                        },
                    );
                }
            }
        }
    }

    fn on_disk_submit(&mut self, client: u32, home: u16, block: u32, span: u32, now: SimTime) {
        let (file, size) = {
            let r = &self.reqs[client as usize];
            (r.file, r.size)
        };
        let costs = self.cfg.costs.clone();
        let first = BlockId::new(file, block);
        let last = BlockId::new(file, block + span - 1);
        let dreq = DiskRequest {
            tag: tag_of(client, block, span),
            address: self.layout.address_of(file) + block as u64 * BLOCK_SIZE,
            bytes: span_bytes(size, block, span),
            // One metadata seek per 64 KB extent the run touches (§4.2).
            extents: last.extent() - first.extent() + 1,
        };
        if let Some(c) = self.cluster.nodes[home as usize]
            .disk
            .submit(now, dreq, &costs)
        {
            self.queue.push(
                c.done,
                Ev::DiskDone {
                    node: home,
                    tag: c.tag,
                },
            );
        }
    }

    fn on_disk_done(&mut self, node: u16, tag: u64, now: SimTime) {
        let costs = self.cfg.costs.clone();
        // Keep the disk busy with its next queued request.
        if let Some(c) = self.cluster.nodes[node as usize]
            .disk
            .next_after_completion(now, &costs)
        {
            self.queue.push(c.done, Ev::DiskDone { node, tag: c.tag });
        }
        // Route the finished run back to its requester.
        let (client, block_idx, span) = untag(tag);
        let (req_node, size) = {
            let r = &self.reqs[client as usize];
            (r.node, r.size)
        };
        let home = NodeId(node);
        let bytes = span_bytes(size, block_idx, span);
        let arrival = if home == req_node {
            // Local read: bus copy into the cache.
            now + costs.bus_time(bytes)
        } else {
            self.cluster.net.send(now, home, req_node, bytes, &costs)
        };
        self.queue.push(arrival, Ev::DataArrived { client });
    }

    fn on_delivered(&mut self, client: u32, now: SimTime) {
        self.completed_total += 1;
        self.meter.record(now);
        if self.meter.is_measuring() {
            let resp = now.since(self.reqs[client as usize].issued);
            self.responses.record_duration(resp);
        }
        if self.completed_total == self.cfg.warmup_requests {
            self.meter.start_measuring(now);
            self.window_start_stats = Some(WindowStart {
                cache: self.cache.stats(),
                busy: self.cluster.busy_snapshot(),
                seeks: self.total_seeks(),
                at: now,
            });
        }
        self.finished_at = now;
        if self.completed_total < self.cfg.warmup_requests + self.cfg.measure_requests {
            let think = self.think_delay();
            if think.is_zero() {
                self.issue(client, now);
            } else {
                self.queue.push(now + think, Ev::NextIssue { client });
            }
        }
    }

    /// Exponential client think time (zero in the paper's max-throughput
    /// configuration).
    fn think_delay(&mut self) -> simcore::SimDuration {
        if self.cfg.think_time_ms <= 0.0 {
            return simcore::SimDuration::ZERO;
        }
        let ms =
            ccm_traces::distributions::exponential(&mut self.think_rng, self.cfg.think_time_ms);
        simcore::SimDuration::from_millis_f64(ms)
    }

    fn charge_eviction(
        &mut self,
        evictor: NodeId,
        eviction: Option<ccm_core::EvictionEffect>,
        now: SimTime,
    ) {
        let Some(ev) = eviction else { return };
        if let Disposition::Forwarded { to, .. } = ev.disposition {
            // Fire-and-forget: occupies the evictor's NIC now and the
            // destination's CPU on arrival, but never blocks the request
            // that triggered the eviction.
            let costs = self.cfg.costs.clone();
            let arrival = self.cluster.net.send(now, evictor, to, BLOCK_SIZE, &costs);
            self.queue.push(arrival, Ev::ForwardArrived { to: to.0 });
        }
    }

    fn total_seeks(&self) -> u64 {
        self.cluster
            .nodes
            .iter()
            .map(|n| n.disk.stats().seeks)
            .sum()
    }

    fn finish(&mut self) -> RunMetrics {
        let start = self
            .window_start_stats
            .take()
            .expect("measurement window never opened");
        let end_busy = self.cluster.busy_snapshot();
        let window = self.finished_at.since(start.at);
        let cache_delta = self.cache.stats().delta_since(&start.cache);
        let (mean, median, p95) = RunMetrics::response_fields(&self.responses);
        RunMetrics {
            label: self.cfg.server.label(),
            throughput_rps: self.meter.rate_per_sec(self.finished_at),
            mean_response_ms: mean,
            median_response_ms: median,
            p95_response_ms: p95,
            completed: self.meter.completions(),
            window_secs: window.as_secs_f64(),
            local_hit_rate: cache_delta.local_hit_rate(),
            remote_hit_rate: cache_delta.remote_hit_rate(),
            disk_rate: cache_delta.miss_rate(),
            utilization: start.busy.utilization_until(&end_busy, window),
            max_disk_util: start
                .busy
                .disk_utilization_per_node(&end_busy, window)
                .into_iter()
                .fold(0.0, f64::max),
            disk_seeks: self.total_seeks() - start.seeks,
            disk_reads: cache_delta.disk_reads,
            forwards: cache_delta.forwards,
            hint_accuracy: self.cache.hint_stats().accuracy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CcmVariant, ServerKind, SimConfig};
    use ccm_traces::SynthConfig;

    fn small_workload() -> Arc<Workload> {
        Arc::new(
            SynthConfig {
                n_files: 400,
                total_bytes: Some(24 << 20), // 24 MB file set
                ..SynthConfig::default()
            }
            .build(),
        )
    }

    fn run_variant(variant: CcmVariant, mem_mb: u64) -> RunMetrics {
        let cfg = SimConfig::paper(ServerKind::Ccm(variant), 4, mem_mb << 20).quick();
        run_ccm(&cfg, &small_workload())
    }

    #[test]
    fn simulation_completes_and_reports() {
        let m = run_variant(CcmVariant::master_preserving(), 4);
        assert!(m.throughput_rps > 0.0);
        assert!(m.mean_response_ms > 0.0);
        assert_eq!(m.completed, 4_000);
        assert!(m.window_secs > 0.0);
        let total = m.local_hit_rate + m.remote_hit_rate + m.disk_rate;
        assert!((total - 1.0).abs() < 1e-9, "rates sum to 1, got {total}");
    }

    #[test]
    fn big_memory_eliminates_disk_traffic() {
        // 32 MB per node x 4 nodes >> 24 MB file set: after warm-up only
        // compulsory first-touch misses of cold-tail files remain.
        let mut cfg = SimConfig::paper(
            ServerKind::Ccm(CcmVariant::master_preserving()),
            4,
            32 << 20,
        )
        .quick();
        cfg.warmup_requests = 8_000;
        let m = run_ccm(&cfg, &small_workload());
        assert!(
            m.disk_rate < 0.02,
            "steady state should be memory-resident, disk rate {}",
            m.disk_rate
        );
        assert!(m.total_hit_rate() > 0.98, "hit {}", m.total_hit_rate());
    }

    #[test]
    fn small_memory_hits_disk() {
        let m = run_variant(CcmVariant::master_preserving(), 1);
        assert!(
            m.disk_rate > 0.02,
            "1 MB/node must miss, rate {}",
            m.disk_rate
        );
    }

    #[test]
    fn master_preserving_beats_basic_when_memory_is_tight() {
        let basic = run_variant(CcmVariant::basic(), 2);
        let mp = run_variant(CcmVariant::master_preserving(), 2);
        assert!(
            mp.throughput_rps > basic.throughput_rps,
            "mp {} <= basic {}",
            mp.throughput_rps,
            basic.throughput_rps
        );
        assert!(
            mp.total_hit_rate() >= basic.total_hit_rate(),
            "mp hit {} < basic hit {}",
            mp.total_hit_rate(),
            basic.total_hit_rate()
        );
    }

    #[test]
    fn sched_variant_outperforms_basic_under_disk_pressure() {
        // The middle curve of Figure 2: batching + extent read-ahead makes
        // cold-file disk access far cheaper than -Basic's interleaved
        // per-block reads. (Seeks-per-read is not comparable across the two
        // because read granularity differs.)
        let fifo = run_variant(CcmVariant::basic(), 2);
        let sched = run_variant(CcmVariant::scheduled(), 2);
        assert!(
            sched.throughput_rps > fifo.throughput_rps,
            "sched {} <= basic {}",
            sched.throughput_rps,
            fifo.throughput_rps
        );
    }

    #[test]
    fn memory_resident_requests_are_fast() {
        // With everything cached, the median request should complete in a
        // couple of milliseconds — this guards against phantom-queueing
        // regressions (booking service centers at future times).
        let mut cfg = SimConfig::paper(
            ServerKind::Ccm(CcmVariant::master_preserving()),
            4,
            32 << 20,
        )
        .quick();
        cfg.warmup_requests = 8_000;
        let m = run_ccm(&cfg, &small_workload());
        assert!(
            m.median_response_ms < 5.0,
            "median response {} ms with everything in memory",
            m.median_response_ms
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_variant(CcmVariant::master_preserving(), 4);
        let b = run_variant(CcmVariant::master_preserving(), 4);
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(a.mean_response_ms, b.mean_response_ms);
        assert_eq!(a.disk_seeks, b.disk_seeks);
    }

    #[test]
    fn whole_file_extension_runs() {
        let mut v = CcmVariant::master_preserving();
        v.whole_file = true;
        let m = run_variant(v, 4);
        assert!(m.throughput_rps > 0.0);
        assert_eq!(m.completed, 4_000);
    }

    #[test]
    fn hint_directory_extension_runs_with_high_accuracy() {
        let mut v = CcmVariant::master_preserving();
        v.directory = ccm_core::DirectoryKind::Hint;
        let m = run_variant(v, 4);
        assert!(m.throughput_rps > 0.0);
        // Sarkar & Hartman report ~98%; we only require "mostly right".
        assert!(m.hint_accuracy > 0.8, "hint accuracy {}", m.hint_accuracy);
    }
}
