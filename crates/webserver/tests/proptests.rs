//! Property-based tests over whole simulations: conservation laws that must
//! hold for any configuration.

use ccm_traces::SynthConfig;
use ccm_webserver::{self as webserver, CcmVariant, RunMetrics, ServerKind, SimConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_workload(seed: u64, files: usize) -> Arc<ccm_traces::Workload> {
    Arc::new(
        SynthConfig {
            n_files: files,
            total_bytes: Some((files as u64 * 12_000).max(1 << 20)),
            seed,
            ..SynthConfig::default()
        }
        .build(),
    )
}

fn servers() -> impl Strategy<Value = ServerKind> {
    prop_oneof![
        Just(ServerKind::L2s { handoff: true }),
        Just(ServerKind::L2s { handoff: false }),
        Just(ServerKind::Ccm(CcmVariant::basic())),
        Just(ServerKind::Ccm(CcmVariant::scheduled())),
        Just(ServerKind::Ccm(CcmVariant::master_preserving())),
        Just(ServerKind::Ccm(CcmVariant {
            whole_file: true,
            ..CcmVariant::master_preserving()
        })),
        Just(ServerKind::Ccm(CcmVariant {
            directory: ccm_core::DirectoryKind::Hint,
            ..CcmVariant::master_preserving()
        })),
    ]
}

fn check_conservation(m: &RunMetrics, cfg: &SimConfig) {
    assert_eq!(
        m.completed, cfg.measure_requests,
        "lost or invented requests"
    );
    assert!(m.throughput_rps > 0.0);
    assert!(m.window_secs > 0.0);
    // Rates form a distribution.
    let total = m.local_hit_rate + m.remote_hit_rate + m.disk_rate;
    assert!((total - 1.0).abs() < 1e-9, "rates sum to {total}");
    assert!((0.0..=1.0).contains(&m.local_hit_rate));
    assert!((0.0..=1.0).contains(&m.remote_hit_rate));
    assert!((0.0..=1.0).contains(&m.disk_rate));
    // Utilizations are physical. The slack covers boundary effects on the
    // short windows these tiny runs use: a 13 ms disk request accepted just
    // before the window closes books its whole service inside the window.
    for (name, u) in [
        ("cpu", m.utilization.cpu),
        ("disk", m.utilization.disk),
        ("nic", m.utilization.nic),
        ("max disk", m.max_disk_util),
    ] {
        assert!((0.0..=1.25).contains(&u), "{name} utilization {u}");
    }
    assert!(
        m.max_disk_util + 1e-9 >= m.utilization.disk,
        "max below mean"
    );
    // Latency statistics are ordered.
    assert!(m.median_response_ms <= m.mean_response_ms * 10.0);
    assert!(m.median_response_ms <= m.p95_response_ms + 1e-9);
    // Little's law sanity: mean concurrency = X * R cannot exceed the client
    // population (closed loop). Slack again covers windowing: responses of
    // requests issued before the window opened complete inside it and
    // inflate R relative to the window's own arrivals.
    // Structural concurrency bound (always true in a closed loop, no
    // stationarity needed): completions in the window cannot exceed the
    // requests that could possibly finish there — the in-flight population
    // at the window open (≤ N) plus everything issued inside it (≤
    // completions, each client reissues only after completing). This is
    // weaker than Little's law, which needs stationarity these short
    // transient windows do not have.
    let clients = cfg.total_clients() as u64;
    assert!(m.completed <= cfg.measure_requests + clients);
}

proptest! {
    // Whole simulations are expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_laws_hold_for_any_config(
        server in servers(),
        nodes in 1usize..6,
        mem_mb in 1u64..24,
        clients in 2usize..12,
        seed in any::<u64>(),
        locality in prop_oneof![Just(0.0), Just(0.5)],
    ) {
        let workload = tiny_workload(seed % 7, 150);
        let mut cfg = SimConfig::paper(server, nodes, mem_mb << 20);
        cfg.clients_per_node = clients;
        cfg.warmup_requests = 800;
        cfg.measure_requests = 1_500;
        cfg.seed = seed;
        cfg.client_locality = locality;
        let m = webserver::run(&cfg, &workload);
        check_conservation(&m, &cfg);
    }

    #[test]
    fn think_time_never_increases_throughput(
        seed in any::<u64>(),
        think in 1.0f64..50.0,
    ) {
        let workload = tiny_workload(3, 150);
        let mut cfg = SimConfig::paper(
            ServerKind::Ccm(CcmVariant::master_preserving()), 4, 8 << 20);
        cfg.clients_per_node = 8;
        cfg.warmup_requests = 800;
        cfg.measure_requests = 1_500;
        cfg.seed = seed;
        let saturated = webserver::run(&cfg, &workload);
        cfg.think_time_ms = think;
        let throttled = webserver::run(&cfg, &workload);
        prop_assert!(
            throttled.throughput_rps <= saturated.throughput_rps * 1.1,
            "thinking clients outran saturated ones: {} vs {}",
            throttled.throughput_rps,
            saturated.throughput_rps
        );
    }
}
