//! Temporal locality on top of popularity.
//!
//! Real access logs are not i.i.d. draws from a popularity distribution:
//! recently-requested documents are disproportionately likely to be
//! requested again soon (sessions, flash interest, proxy effects — the
//! temporal component of Arlitt & Williamson's "concentration of
//! references"). [`TemporalSource`] layers an LRU-stack model over any
//! [`Workload`]: with probability `locality` the next request re-draws from
//! the recent-reference stack (positions weighted toward the top), otherwise
//! it draws fresh from the popularity distribution.
//!
//! `locality = 0` reduces exactly to [`SampledSource`]'s i.i.d. behavior;
//! higher values tighten the short-term working set while leaving the
//! long-run popularity ranking intact (hot files dominate the stack too).
//!
//! [`SampledSource`]: crate::model::SampledSource

use crate::model::{FileId, RequestSource, Workload};
use simcore::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// A request source with tunable temporal locality.
#[derive(Debug, Clone)]
pub struct TemporalSource {
    workload: Arc<Workload>,
    rng: Rng,
    /// Probability of re-referencing from the stack.
    locality: f64,
    /// Most-recent-first stack of distinct recent files.
    stack: VecDeque<FileId>,
    capacity: usize,
}

impl TemporalSource {
    /// Build a source with re-reference probability `locality` over a
    /// recent-reference stack of `capacity` distinct files.
    ///
    /// # Panics
    /// Panics if `locality` is outside `[0, 1]` or `capacity == 0`.
    pub fn new(
        workload: Arc<Workload>,
        rng: Rng,
        locality: f64,
        capacity: usize,
    ) -> TemporalSource {
        assert!((0.0..=1.0).contains(&locality), "locality out of [0,1]");
        assert!(capacity > 0, "zero stack capacity");
        TemporalSource {
            workload,
            rng,
            locality,
            stack: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    fn push_stack(&mut self, f: FileId) {
        if let Some(pos) = self.stack.iter().position(|&x| x == f) {
            self.stack.remove(pos);
        } else if self.stack.len() >= self.capacity {
            self.stack.pop_back();
        }
        self.stack.push_front(f);
    }

    /// Draw a stack position weighted toward the top (position k with
    /// weight 1/(k+1) — a light Zipf over recency).
    fn sample_stack(&mut self) -> FileId {
        debug_assert!(!self.stack.is_empty());
        let n = self.stack.len();
        // Inverse-harmonic sampling by rejection: cheap and exact enough.
        loop {
            let k = self.rng.next_below(n as u64) as usize;
            if self.rng.next_f64() < 1.0 / (k + 1) as f64 {
                return self.stack[k];
            }
        }
    }

    /// Current distinct-file stack depth (diagnostics).
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }
}

impl RequestSource for TemporalSource {
    fn next_request(&mut self) -> FileId {
        let f = if !self.stack.is_empty() && self.rng.chance(self.locality) {
            self.sample_stack()
        } else {
            self.workload.sample(&mut self.rng)
        };
        self.push_stack(f);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn workload() -> Arc<Workload> {
        Arc::new(
            SynthConfig {
                n_files: 2_000,
                ..SynthConfig::default()
            }
            .build(),
        )
    }

    /// Fraction of requests that repeat something seen in the last `w`.
    fn rereference_rate(src: &mut TemporalSource, n: usize, w: usize) -> f64 {
        let mut recent: VecDeque<FileId> = VecDeque::new();
        let mut hits = 0usize;
        for _ in 0..n {
            let f = src.next_request();
            if recent.contains(&f) {
                hits += 1;
            }
            recent.push_front(f);
            if recent.len() > w {
                recent.pop_back();
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn locality_increases_rereference_rate() {
        let w = workload();
        let mut low = TemporalSource::new(w.clone(), Rng::new(1), 0.0, 64);
        let mut high = TemporalSource::new(w, Rng::new(1), 0.7, 64);
        let r_low = rereference_rate(&mut low, 20_000, 32);
        let r_high = rereference_rate(&mut high, 20_000, 32);
        assert!(
            r_high > r_low + 0.2,
            "locality had no effect: {r_low:.3} vs {r_high:.3}"
        );
    }

    #[test]
    fn zero_locality_matches_iid_sampling() {
        let w = workload();
        let mut t = TemporalSource::new(w.clone(), Rng::new(2), 0.0, 16);
        // Same head-share as direct workload sampling, statistically.
        let n = 40_000;
        let head = 200;
        let hits = (0..n).filter(|_| t.next_request().index() < head).count();
        let empirical = hits as f64 / n as f64;
        let analytic = w.request_fraction_of_top(head);
        assert!(
            (empirical - analytic).abs() < 0.02,
            "analytic {analytic:.3} vs empirical {empirical:.3}"
        );
    }

    #[test]
    fn long_run_popularity_ranking_survives_locality() {
        let w = workload();
        let mut t = TemporalSource::new(w, Rng::new(3), 0.6, 64);
        let n = 60_000;
        let mut counts = vec![0u32; 2_000];
        for _ in 0..n {
            counts[t.next_request().index()] += 1;
        }
        // The hottest decile still out-draws the coldest half.
        let head: u32 = counts[..200].iter().sum();
        let tail: u32 = counts[1_000..].iter().sum();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn stack_holds_distinct_files_up_to_capacity() {
        let w = workload();
        let mut t = TemporalSource::new(w, Rng::new(4), 0.5, 8);
        for _ in 0..1_000 {
            t.next_request();
            assert!(t.stack_len() <= 8);
        }
        assert_eq!(t.stack_len(), 8, "stack should be full by now");
    }

    #[test]
    fn deterministic_per_seed() {
        let w = workload();
        let mut a = TemporalSource::new(w.clone(), Rng::new(5), 0.5, 32);
        let mut b = TemporalSource::new(w, Rng::new(5), 0.5, 32);
        for _ in 0..500 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "locality out of")]
    fn bad_locality_panics() {
        TemporalSource::new(workload(), Rng::new(1), 1.5, 8);
    }
}
