//! Workload analysis: Table 2 statistics and the Figure 1 curves.
//!
//! [`TraceStats`] reproduces the columns of the paper's Table 2 for any
//! [`Workload`]; [`WorkingSetCurve`] reproduces Figure 1 — files sorted by
//! request frequency on the X axis, cumulative request fraction on the left
//! Y axis and cumulative data-set size on the right Y axis.

use crate::model::Workload;

/// The Table 2 row for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Workload name.
    pub name: String,
    /// Number of distinct files.
    pub num_files: usize,
    /// Mean file size, bytes.
    pub avg_file_size: f64,
    /// Expected bytes per request (popularity-weighted mean size).
    pub avg_request_size: f64,
    /// Total bytes across all files.
    pub file_set_bytes: u64,
}

impl TraceStats {
    /// Compute the statistics of a workload.
    pub fn of(w: &Workload) -> TraceStats {
        TraceStats {
            name: w.name().to_string(),
            num_files: w.num_files(),
            avg_file_size: w.avg_file_size(),
            avg_request_size: w.avg_request_size(),
            file_set_bytes: w.total_bytes(),
        }
    }

    /// Render as a fixed-width table row (KB / MB units like Table 2).
    pub fn row(&self) -> String {
        format!(
            "{:<10} {:>9} {:>12.2} {:>15.2} {:>13.2}",
            self.name,
            self.num_files,
            self.avg_file_size / 1024.0,
            self.avg_request_size / 1024.0,
            self.file_set_bytes as f64 / (1024.0 * 1024.0),
        )
    }

    /// The table header matching [`TraceStats::row`].
    pub fn header() -> String {
        format!(
            "{:<10} {:>9} {:>12} {:>15} {:>13}",
            "trace", "files", "avg file KB", "avg request KB", "file set MB"
        )
    }
}

/// One point of the Figure 1 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Fraction of the file population included (X axis, files sorted by
    /// request frequency, normalized to `[0, 1]`).
    pub file_fraction: f64,
    /// Cumulative fraction of requests those files absorb (left Y axis).
    pub request_fraction: f64,
    /// Cumulative bytes those files occupy (right Y axis).
    pub cumulative_bytes: u64,
}

/// The full Figure 1 curve for a workload.
#[derive(Debug, Clone)]
pub struct WorkingSetCurve {
    points: Vec<CurvePoint>,
}

impl WorkingSetCurve {
    /// Compute the curve sampled at `resolution` evenly spaced file
    /// fractions (plus the exact endpoint).
    ///
    /// # Panics
    /// Panics if `resolution == 0`.
    pub fn compute(w: &Workload, resolution: usize) -> WorkingSetCurve {
        assert!(resolution > 0, "zero resolution");
        let n = w.num_files();
        let mut points = Vec::with_capacity(resolution + 1);
        // Prefix sums once; sample the prefix at the requested resolution.
        let mut cum_bytes = Vec::with_capacity(n);
        let mut acc = 0u64;
        for &s in w.sizes() {
            acc += s;
            cum_bytes.push(acc);
        }
        for step in 1..=resolution {
            let count = ((step * n) / resolution).max(1);
            points.push(CurvePoint {
                file_fraction: count as f64 / n as f64,
                request_fraction: w.request_fraction_of_top(count),
                cumulative_bytes: cum_bytes[count - 1],
            });
        }
        WorkingSetCurve { points }
    }

    /// The sampled points, in increasing file fraction.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Memory needed to cover `frac` of requests, interpolated from the
    /// curve (exact up to sampling resolution).
    pub fn bytes_for_request_fraction(&self, frac: f64) -> u64 {
        for p in &self.points {
            if p.request_fraction >= frac {
                return p.cumulative_bytes;
            }
        }
        self.points.last().map_or(0, |p| p.cumulative_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn workload() -> Workload {
        SynthConfig {
            n_files: 2_000,
            total_bytes: Some(64 << 20),
            ..SynthConfig::default()
        }
        .build()
    }

    #[test]
    fn stats_match_workload_accessors() {
        let w = workload();
        let s = TraceStats::of(&w);
        assert_eq!(s.num_files, 2_000);
        assert_eq!(s.file_set_bytes, 64 << 20);
        assert!((s.avg_file_size - w.avg_file_size()).abs() < 1e-9);
        assert!((s.avg_request_size - w.avg_request_size()).abs() < 1e-9);
    }

    #[test]
    fn row_and_header_align() {
        let s = TraceStats::of(&workload());
        // Not a formatting golden test — just that both render and the row
        // contains the name.
        assert!(s.row().contains("synthetic"));
        assert!(TraceStats::header().contains("file set MB"));
    }

    #[test]
    fn curve_is_monotonic() {
        let w = workload();
        let c = WorkingSetCurve::compute(&w, 100);
        let pts = c.points();
        assert_eq!(pts.len(), 100);
        for i in 1..pts.len() {
            assert!(pts[i].file_fraction >= pts[i - 1].file_fraction);
            assert!(pts[i].request_fraction >= pts[i - 1].request_fraction);
            assert!(pts[i].cumulative_bytes >= pts[i - 1].cumulative_bytes);
        }
    }

    #[test]
    fn curve_endpoints_are_exact() {
        let w = workload();
        let c = WorkingSetCurve::compute(&w, 50);
        let last = c.points().last().unwrap();
        assert!((last.file_fraction - 1.0).abs() < 1e-12);
        assert!((last.request_fraction - 1.0).abs() < 1e-9);
        assert_eq!(last.cumulative_bytes, w.total_bytes());
    }

    #[test]
    fn curve_shows_zipf_head() {
        let w = workload();
        let c = WorkingSetCurve::compute(&w, 100);
        // The first 10% of files should absorb much more than 10% of requests.
        let p10 = &c.points()[9];
        assert!(
            p10.request_fraction > 2.0 * p10.file_fraction,
            "head not dominant: {p10:?}"
        );
    }

    #[test]
    fn bytes_for_fraction_is_consistent_with_workload() {
        let w = workload();
        let c = WorkingSetCurve::compute(&w, 400);
        let from_curve = c.bytes_for_request_fraction(0.9);
        let exact = w.working_set_for(0.9);
        let rel = (from_curve as f64 - exact as f64).abs() / exact as f64;
        assert!(rel < 0.05, "curve {from_curve} vs exact {exact}");
    }
}
