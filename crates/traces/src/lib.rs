//! # ccm-traces — web workload substrate
//!
//! The paper drives its simulator with four real web-server access traces
//! (University of Calgary, ClarkNet, NASA Kennedy Space Center, Rutgers
//! University; Table 2). Those logs are not redistributable, so this crate
//! provides the closest synthetic equivalent plus tooling for real traces:
//!
//! * [`model`] — files, requests, and the [`model::RequestSource`] abstraction
//!   the simulated closed-loop clients draw from.
//! * [`distributions`] — Zipf and log-normal samplers built on `simcore::Rng`
//!   (implemented here because we deliberately avoid the `rand` ecosystem).
//! * [`synth`] — the synthetic workload generator: Zipf-ranked popularity over
//!   a heavy-tailed file-size population, with a configurable rank↔size
//!   correlation (popular web files tend to be small — Arlitt & Williamson).
//! * [`presets`] — four calibrated configurations named after the paper's
//!   traces, matching the working-set shapes the paper reports (e.g. Rutgers:
//!   caching 99 % of requests needs ≈ 494 MB, Figure 1).
//! * [`temporal`] — an LRU-stack locality layer over any workload (real
//!   traces re-reference recent documents far more than i.i.d. sampling
//!   does).
//! * [`clf`] — a Common Log Format parser so real access logs can be swapped
//!   in for the synthetic presets.
//! * [`analysis`] — Table 2 statistics and the Figure 1 cumulative curves.
//! * [`mix`] — read/write marking ([`mix::WriteMix`]) and scan-heavy
//!   variants ([`mix::scan_heavy`], [`mix::ScanSource`]) for driving the
//!   middleware's write path and admission control.

#![warn(missing_docs)]

pub mod analysis;
pub mod clf;
pub mod distributions;
pub mod mix;
pub mod model;
pub mod presets;
pub mod synth;
pub mod temporal;

pub use analysis::{TraceStats, WorkingSetCurve};
pub use mix::{scan_heavy, ScanConfig, ScanSource, WriteMix};
pub use model::{FileId, ReplaySource, RequestIter, RequestSource, SampledSource, Workload};
pub use presets::Preset;
pub use synth::SynthConfig;
pub use temporal::TemporalSource;
