//! Calibrated stand-ins for the paper's four traces.
//!
//! The HPDC 2001 evaluation uses access logs from the University of Calgary,
//! ClarkNet, NASA Kennedy Space Center, and Rutgers University (Table 2),
//! chosen because "they have relatively large working set sizes compared to
//! other publicly available traces". The logs themselves are not available
//! here, so each preset is a [`SynthConfig`] tuned to reproduce the aggregate
//! properties the results depend on: distinct-file count, file-set size,
//! average file size vs. average request size, and the cumulative working-set
//! curve (for Rutgers, Figure 1: ≈ 494 MB of memory covers 99 % of requests).
//!
//! Like the paper, these working sets are deliberately small relative to
//! modern memories — the experiments scale per-node memory down to 4 MB to
//! recreate "situations in which the working set size is larger than the
//! aggregated memory of the cluster".

use crate::model::Workload;
use crate::synth::SynthConfig;

const MB: u64 = 1024 * 1024;

/// The four workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// University of Calgary departmental server: smallest file set.
    Calgary,
    /// ClarkNet (commercial ISP): many files, small average size.
    Clarknet,
    /// NASA Kennedy Space Center: mid-sized set, strong head.
    Nasa,
    /// Rutgers University: the largest working set; the trace the paper
    /// analyzes in most depth (Figures 1, 4, 6).
    Rutgers,
}

impl Preset {
    /// All four presets, in the order the paper lists them.
    pub fn all() -> [Preset; 4] {
        [
            Preset::Calgary,
            Preset::Clarknet,
            Preset::Nasa,
            Preset::Rutgers,
        ]
    }

    /// The preset's lowercase name, matching figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Calgary => "calgary",
            Preset::Clarknet => "clarknet",
            Preset::Nasa => "nasa",
            Preset::Rutgers => "rutgers",
        }
    }

    /// Parse a preset by (case-insensitive) name.
    pub fn from_name(s: &str) -> Option<Preset> {
        match s.to_ascii_lowercase().as_str() {
            "calgary" => Some(Preset::Calgary),
            "clarknet" => Some(Preset::Clarknet),
            "nasa" => Some(Preset::Nasa),
            "rutgers" => Some(Preset::Rutgers),
            _ => None,
        }
    }

    /// The generator configuration for this preset.
    pub fn config(self) -> SynthConfig {
        let base = SynthConfig {
            name: self.name().into(),
            min_size: 512,
            tail_frac: 0.012,
            tail_alpha: 1.15,
            ..SynthConfig::default()
        };
        match self {
            Preset::Calgary => SynthConfig {
                n_files: 8_000,
                zipf_theta: 0.76,
                total_bytes: Some(150 * MB),
                sigma: 1.35,
                tail_max: 6.0 * MB as f64,
                rank_size_corr: 0.60,
                seed: 0x0CA1_6A12,
                ..base
            },
            Preset::Clarknet => SynthConfig {
                n_files: 30_000,
                zipf_theta: 0.70,
                total_bytes: Some(390 * MB),
                sigma: 1.30,
                tail_max: 4.0 * MB as f64,
                rank_size_corr: 0.55,
                seed: 0xC1A2_4E71,
                ..base
            },
            Preset::Nasa => SynthConfig {
                n_files: 12_000,
                zipf_theta: 0.80,
                total_bytes: Some(240 * MB),
                sigma: 1.40,
                tail_max: 8.0 * MB as f64,
                rank_size_corr: 0.60,
                seed: 0x0A5A_0001,
                ..base
            },
            Preset::Rutgers => SynthConfig {
                n_files: 18_000,
                zipf_theta: 0.72,
                total_bytes: Some(600 * MB),
                sigma: 1.45,
                tail_max: 10.0 * MB as f64,
                rank_size_corr: 0.55,
                seed: 0x6A76_E125,
                ..base
            },
        }
    }

    /// Generate the workload (deterministic per preset).
    pub fn workload(self) -> Workload {
        self.config().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Preset::all() {
            assert_eq!(Preset::from_name(p.name()), Some(p));
            assert_eq!(Preset::from_name(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(Preset::from_name("nope"), None);
    }

    #[test]
    fn file_set_sizes_match_targets() {
        assert_eq!(Preset::Calgary.workload().total_bytes(), 150 * MB);
        assert_eq!(Preset::Clarknet.workload().total_bytes(), 390 * MB);
        assert_eq!(Preset::Nasa.workload().total_bytes(), 240 * MB);
        assert_eq!(Preset::Rutgers.workload().total_bytes(), 600 * MB);
    }

    #[test]
    fn average_sizes_are_web_like() {
        for p in Preset::all() {
            let w = p.workload();
            let avg_kb = w.avg_file_size() / 1024.0;
            assert!(
                (5.0..60.0).contains(&avg_kb),
                "{}: avg file {avg_kb:.1} KB",
                p.name()
            );
            // Requests skew toward small, popular files.
            assert!(
                w.avg_request_size() < w.avg_file_size(),
                "{}: request {} >= file {}",
                p.name(),
                w.avg_request_size(),
                w.avg_file_size()
            );
        }
    }

    #[test]
    fn rutgers_matches_figure_1_working_set() {
        let w = Preset::Rutgers.workload();
        let ws99 = w.working_set_for(0.99) as f64 / MB as f64;
        // Figure 1: caching 99% of requests needs ~494 MB. Accept ±12%.
        assert!(
            (435.0..555.0).contains(&ws99),
            "rutgers 99% working set = {ws99:.0} MB"
        );
    }

    #[test]
    fn working_sets_exceed_small_cluster_memories() {
        // The paper simulates 4-512 MB per node precisely because these
        // working sets overflow small aggregate memories.
        for p in Preset::all() {
            let w = p.workload();
            let ws95 = w.working_set_for(0.95);
            assert!(
                ws95 > 8 * 4 * MB,
                "{}: 95% WSS {} should exceed 8 nodes x 4 MB",
                p.name(),
                ws95
            );
        }
    }

    #[test]
    fn presets_are_deterministic() {
        let a = Preset::Nasa.workload();
        let b = Preset::Nasa.workload();
        assert_eq!(a.sizes(), b.sizes());
    }
}
