//! Common Log Format parsing.
//!
//! The paper's traces are standard HTTP server access logs. This module lets
//! a user replay *real* logs through the simulator instead of the synthetic
//! presets: it parses NCSA Common Log Format lines, keeps successful `GET`s
//! of static content, and folds them into a [`Workload`] (popularity measured
//! from the log) plus the request sequence for [`ReplaySource`].
//!
//! Format: `host ident user [timestamp] "METHOD /path PROTO" status bytes`.
//! Lines that do not parse are counted and skipped rather than failing the
//! load — real-world logs are dirty.
//!
//! [`ReplaySource`]: crate::model::ReplaySource

use crate::model::{FileId, Workload};
use std::collections::HashMap;

/// One parsed, accepted log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClfRecord {
    /// Request path, e.g. `/images/logo.gif`.
    pub path: String,
    /// HTTP status code.
    pub status: u16,
    /// Response size in bytes (`-` in the log parses as 0).
    pub bytes: u64,
}

/// Result of loading a log: the workload plus the replayable sequence.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// Files and popularity inferred from the log. File ids are popularity
    /// ranks, as everywhere else.
    pub workload: Workload,
    /// The request sequence re-expressed as rank ids, in log order.
    pub requests: Vec<FileId>,
    /// Lines that failed to parse or were filtered out.
    pub skipped: u64,
}

/// Parse a single CLF line. Returns `None` for malformed lines.
pub fn parse_line(line: &str) -> Option<ClfRecord> {
    // host ident user [date] "request" status bytes
    let open_quote = line.find('"')?;
    let close_quote = line[open_quote + 1..].find('"')? + open_quote + 1;
    let request = &line[open_quote + 1..close_quote];
    let rest = line[close_quote + 1..].trim();

    let mut req_parts = request.split_ascii_whitespace();
    let method = req_parts.next()?;
    let path = req_parts.next()?;
    // Protocol is optional in HTTP/0.9 logs; ignore it either way.

    let mut tail = rest.split_ascii_whitespace();
    let status: u16 = tail.next()?.parse().ok()?;
    let bytes_tok = tail.next()?;
    let bytes: u64 = if bytes_tok == "-" {
        0
    } else {
        bytes_tok.parse().ok()?
    };

    if method != "GET" {
        return None;
    }
    // Strip query strings: the cache operates on files.
    let path = path.split('?').next().unwrap_or(path).to_string();
    Some(ClfRecord {
        path,
        status,
        bytes,
    })
}

/// Load a log from text. Only `GET`s with 2xx status and a known size are
/// kept (the simulators serve full files; aborted/failed transfers carry no
/// caching signal). File size is taken as the *maximum* bytes observed for a
/// path, which tolerates partial transfers.
pub fn load(text: &str, name: &str) -> LoadedTrace {
    let mut skipped = 0u64;
    let mut size_of: HashMap<String, u64> = HashMap::new();
    let mut hits: HashMap<String, u64> = HashMap::new();
    let mut sequence: Vec<String> = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(rec) if (200..300).contains(&rec.status) && rec.bytes > 0 => {
                let s = size_of.entry(rec.path.clone()).or_insert(0);
                *s = (*s).max(rec.bytes);
                *hits.entry(rec.path.clone()).or_insert(0) += 1;
                sequence.push(rec.path);
            }
            _ => skipped += 1,
        }
    }

    // Rank paths by hit count (desc), tie-broken by path for determinism.
    let mut ranked: Vec<(&String, &u64)> = hits.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));

    let mut rank_of: HashMap<&str, u32> = HashMap::with_capacity(ranked.len());
    let mut sizes = Vec::with_capacity(ranked.len());
    let mut weights = Vec::with_capacity(ranked.len());
    for (rank, (path, count)) in ranked.iter().enumerate() {
        rank_of.insert(path.as_str(), rank as u32);
        sizes.push(size_of[path.as_str()]);
        weights.push(**count as f64);
    }

    let requests: Vec<FileId> = sequence
        .iter()
        .map(|p| FileId(rank_of[p.as_str()]))
        .collect();

    // An empty log still yields a (degenerate) one-file workload so callers
    // don't have to special-case it; flag via skipped counts instead.
    let workload = if sizes.is_empty() {
        Workload::new(name, vec![1], &[1.0])
    } else {
        Workload::new(name, sizes, &weights)
    };

    LoadedTrace {
        workload,
        requests,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"wpbfl2-45.gate.net - - [29/Apr/1995:00:00:12 -0600] "GET /images/ksclogo.gif HTTP/1.0" 200 3635"#;

    #[test]
    fn parses_canonical_line() {
        let rec = parse_line(LINE).unwrap();
        assert_eq!(rec.path, "/images/ksclogo.gif");
        assert_eq!(rec.status, 200);
        assert_eq!(rec.bytes, 3635);
    }

    #[test]
    fn strips_query_strings() {
        let l = r#"h - - [x] "GET /cgi/search?q=abc HTTP/1.0" 200 100"#;
        assert_eq!(parse_line(l).unwrap().path, "/cgi/search");
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let post = r#"h - - [x] "POST /form HTTP/1.0" 200 10"#;
        assert!(parse_line(post).is_none());
        assert!(parse_line("complete garbage").is_none());
        assert!(parse_line(r#"h - - [x] "GET" 200 10"#).is_none());
    }

    #[test]
    fn dash_bytes_parse_as_zero() {
        let l = r#"h - - [x] "GET /a HTTP/1.0" 304 -"#;
        assert_eq!(parse_line(l).unwrap().bytes, 0);
    }

    #[test]
    fn load_ranks_by_popularity() {
        let log = [
            r#"h - - [x] "GET /hot HTTP/1.0" 200 1000"#,
            r#"h - - [x] "GET /cold HTTP/1.0" 200 5000"#,
            r#"h - - [x] "GET /hot HTTP/1.0" 200 1000"#,
            r#"h - - [x] "GET /hot HTTP/1.0" 200 1000"#,
            r#"h - - [x] "GET /warm HTTP/1.0" 200 2000"#,
            r#"h - - [x] "GET /warm HTTP/1.0" 200 2000"#,
        ]
        .join("\n");
        let t = load(&log, "test");
        assert_eq!(t.workload.num_files(), 3);
        assert_eq!(t.skipped, 0);
        // Rank 0 = /hot (3 hits, 1000 B), rank 1 = /warm, rank 2 = /cold.
        assert_eq!(t.workload.size_of(FileId(0)), 1000);
        assert_eq!(t.workload.size_of(FileId(1)), 2000);
        assert_eq!(t.workload.size_of(FileId(2)), 5000);
        assert_eq!(
            t.requests,
            vec![
                FileId(0),
                FileId(2),
                FileId(0),
                FileId(0),
                FileId(1),
                FileId(1)
            ]
        );
    }

    #[test]
    fn load_filters_errors_and_counts_skips() {
        let log = [
            r#"h - - [x] "GET /ok HTTP/1.0" 200 10"#,
            r#"h - - [x] "GET /missing HTTP/1.0" 404 0"#,
            r#"h - - [x] "GET /cached HTTP/1.0" 304 -"#,
            "garbage line",
        ]
        .join("\n");
        let t = load(&log, "test");
        assert_eq!(t.workload.num_files(), 1);
        assert_eq!(t.requests.len(), 1);
        assert_eq!(t.skipped, 3);
    }

    #[test]
    fn partial_transfers_use_max_size() {
        let log = [
            r#"h - - [x] "GET /f HTTP/1.0" 200 100"#,
            r#"h - - [x] "GET /f HTTP/1.0" 200 9000"#,
            r#"h - - [x] "GET /f HTTP/1.0" 200 50"#,
        ]
        .join("\n");
        let t = load(&log, "test");
        assert_eq!(t.workload.size_of(FileId(0)), 9000);
    }

    #[test]
    fn empty_log_degenerates_gracefully() {
        let t = load("", "empty");
        assert_eq!(t.requests.len(), 0);
        assert_eq!(t.workload.num_files(), 1);
    }

    #[test]
    fn popularity_ties_break_deterministically() {
        let log = [
            r#"h - - [x] "GET /b HTTP/1.0" 200 10"#,
            r#"h - - [x] "GET /a HTTP/1.0" 200 20"#,
        ]
        .join("\n");
        let t1 = load(&log, "t");
        let t2 = load(&log, "t");
        assert_eq!(t1.requests, t2.requests);
        // Tie on count: lexicographically smaller path gets rank 0.
        assert_eq!(t1.workload.size_of(FileId(0)), 20);
    }
}
