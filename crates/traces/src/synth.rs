//! Synthetic workload generation.
//!
//! Builds a [`Workload`] with the three properties that drive every result in
//! the paper's evaluation:
//!
//! 1. **Zipf-like popularity** — a small set of hot files absorbs most
//!    requests (Figure 1's steep left edge).
//! 2. **Heavy-tailed file sizes** — a log-normal body with an optional
//!    bounded-Pareto tail, so the file *set* is much larger than the hot
//!    working set.
//! 3. **Popularity↔size correlation** — popular web files tend to be small
//!    (Arlitt & Williamson invariant), which is why the paper's "average
//!    request size" is far below its "average file size". The
//!    [`SynthConfig::rank_size_corr`] knob controls how strongly sizes sort
//!    by popularity.
//!
//! The generator can rescale sampled sizes so the total file-set size matches
//! a target exactly, which the presets use to pin working-set curves (e.g.
//! Rutgers ≈ 494 MB for 99 % of requests) regardless of sampling noise.

use crate::distributions::{zipf_weights, BoundedPareto, LogNormal};
use crate::model::Workload;
use simcore::Rng;

/// Parameters of a synthetic workload.
///
/// ```
/// use ccm_traces::SynthConfig;
///
/// let workload = SynthConfig {
///     n_files: 1_000,
///     total_bytes: Some(32 << 20),
///     ..SynthConfig::default()
/// }.build();
/// assert_eq!(workload.total_bytes(), 32 << 20);
/// // Zipf head: the hottest 1% of files absorb far more than 1% of requests.
/// assert!(workload.request_fraction_of_top(10) > 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Workload name, carried into [`Workload::name`].
    pub name: String,
    /// Number of distinct files.
    pub n_files: usize,
    /// Zipf exponent for popularity by rank (≈ 0.7–0.8 for web traces).
    pub zipf_theta: f64,
    /// Target mean of the log-normal size body, in bytes (before rescaling).
    pub mean_size: f64,
    /// Log-space spread of the size body.
    pub sigma: f64,
    /// Fraction of files drawn from the Pareto tail instead of the body.
    pub tail_frac: f64,
    /// Pareto shape for the tail (smaller = heavier).
    pub tail_alpha: f64,
    /// Upper bound of the tail, in bytes.
    pub tail_max: f64,
    /// Minimum file size, bytes (tiny icons etc. still occupy one block).
    pub min_size: u64,
    /// If set, linearly rescale sizes so the total file-set size equals this.
    pub total_bytes: Option<u64>,
    /// Popularity↔size correlation in `[0, 1]`: 0 = sizes independent of
    /// rank, 1 = hottest file is exactly the smallest.
    pub rank_size_corr: f64,
    /// Generator seed; two configs differing only in seed give statistically
    /// identical but distinct workloads.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            name: "synthetic".into(),
            n_files: 10_000,
            zipf_theta: 0.75,
            mean_size: 16.0 * 1024.0,
            sigma: 1.4,
            tail_frac: 0.01,
            tail_alpha: 1.1,
            tail_max: 8.0 * 1024.0 * 1024.0,
            min_size: 256,
            total_bytes: None,
            rank_size_corr: 0.55,
            seed: 0xC0FFEE,
        }
    }
}

impl SynthConfig {
    /// Generate the workload described by this configuration.
    ///
    /// # Panics
    /// Panics on degenerate parameters (zero files, correlation outside
    /// `[0, 1]`, non-positive sizes).
    pub fn build(&self) -> Workload {
        assert!(self.n_files > 0, "n_files == 0");
        assert!(
            (0.0..=1.0).contains(&self.rank_size_corr),
            "rank_size_corr out of [0,1]"
        );
        assert!(self.mean_size > 0.0 && self.min_size > 0, "bad sizes");

        let root = Rng::new(self.seed);
        let mut size_rng = root.substream(1);
        let mut corr_rng = root.substream(2);

        let body = LogNormal::with_mean(self.mean_size, self.sigma);
        let tail_lo = self.mean_size.max(self.min_size as f64 + 1.0);
        let tail = if self.tail_frac > 0.0 && self.tail_max > tail_lo {
            Some(BoundedPareto::new(tail_lo, self.tail_max, self.tail_alpha))
        } else {
            None
        };

        // 1. Sample the size population.
        let mut sizes: Vec<u64> = (0..self.n_files)
            .map(|_| {
                let raw = match &tail {
                    Some(t) if size_rng.chance(self.tail_frac) => t.sample(&mut size_rng),
                    _ => body.sample(&mut size_rng),
                };
                (raw.round() as u64).max(self.min_size)
            })
            .collect();

        // 2. Optionally rescale so the file-set size is exact.
        if let Some(target) = self.total_bytes {
            rescale_to_total(&mut sizes, target, self.min_size);
        }

        // 3. Assign sizes to popularity ranks with the requested correlation:
        //    sort by a blend of the size's percentile and uniform noise, so
        //    corr = 1 puts the smallest file at rank 0 and corr = 0 shuffles.
        sizes.sort_unstable();
        let n = sizes.len();
        let mut order: Vec<usize> = (0..n).collect();
        if self.rank_size_corr < 1.0 {
            let c = self.rank_size_corr;
            let mut keyed: Vec<(f64, usize)> = order
                .iter()
                .map(|&i| {
                    let pct = i as f64 / n as f64;
                    (c * pct + (1.0 - c) * corr_rng.next_f64(), i)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            order = keyed.into_iter().map(|(_, i)| i).collect();
        }
        let ranked: Vec<u64> = order.into_iter().map(|i| sizes[i]).collect();

        let weights = zipf_weights(self.n_files, self.zipf_theta);
        Workload::new(self.name.clone(), ranked, &weights)
    }
}

/// Scale sizes multiplicatively so they sum to `target`, respecting `min`.
/// The rounding/clamping residue is absorbed by the largest files.
///
/// # Panics
/// Panics if the target is unreachable (`target < len * min`).
fn rescale_to_total(sizes: &mut [u64], target: u64, min: u64) {
    let current: u64 = sizes.iter().sum();
    assert!(current > 0);
    assert!(
        target >= sizes.len() as u64 * min,
        "total_bytes target below the minimum-size floor"
    );
    let factor = target as f64 / current as f64;
    for s in sizes.iter_mut() {
        *s = ((*s as f64 * factor).round() as u64).max(min);
    }
    let now: u64 = sizes.iter().sum();
    if now < target {
        let idx_max = (0..sizes.len())
            .max_by_key(|&i| sizes[i])
            .expect("non-empty");
        sizes[idx_max] += target - now;
    } else if now > target {
        // Shrink from the largest files down; each can give up to
        // (size - min), so the floor assertion guarantees convergence.
        let mut over = now - target;
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(sizes[i]));
        for i in order {
            if over == 0 {
                break;
            }
            let give = (sizes[i] - min).min(over);
            sizes[i] -= give;
            over -= give;
        }
        debug_assert_eq!(over, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileId;

    fn quick(n: usize, corr: f64, total: Option<u64>) -> Workload {
        SynthConfig {
            n_files: n,
            rank_size_corr: corr,
            total_bytes: total,
            ..SynthConfig::default()
        }
        .build()
    }

    #[test]
    fn builds_requested_file_count() {
        let w = quick(500, 0.5, None);
        assert_eq!(w.num_files(), 500);
        assert!(w.sizes().iter().all(|&s| s >= 256));
    }

    #[test]
    fn total_bytes_is_exact_when_pinned() {
        let target = 50 * 1024 * 1024;
        let w = quick(2_000, 0.5, Some(target));
        assert_eq!(w.total_bytes(), target);
    }

    #[test]
    fn determinism_same_seed_same_workload() {
        let a = quick(1_000, 0.5, None);
        let b = quick(1_000, 0.5, None);
        assert_eq!(a.sizes(), b.sizes());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig {
            n_files: 1_000,
            ..SynthConfig::default()
        };
        let a = cfg.build();
        let b = SynthConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        }
        .build();
        assert_ne!(a.sizes(), b.sizes());
    }

    #[test]
    fn full_correlation_sorts_sizes_by_rank() {
        let w = quick(1_000, 1.0, None);
        let s = w.sizes();
        for i in 1..s.len() {
            assert!(s[i] >= s[i - 1], "not sorted at {i}");
        }
    }

    #[test]
    fn correlation_lowers_avg_request_size() {
        // With popular files small, expected bytes/request drops.
        let correlated = quick(5_000, 0.9, Some(100 << 20));
        let uncorrelated = quick(5_000, 0.0, Some(100 << 20));
        assert!(
            correlated.avg_request_size() < uncorrelated.avg_request_size(),
            "corr {} vs uncorr {}",
            correlated.avg_request_size(),
            uncorrelated.avg_request_size()
        );
        // And sits well below the average *file* size, as in Table 2.
        assert!(correlated.avg_request_size() < correlated.avg_file_size());
    }

    #[test]
    fn working_set_is_much_smaller_than_file_set() {
        let w = quick(10_000, 0.6, Some(200 << 20));
        let ws90 = w.working_set_for(0.90);
        assert!(
            ws90 < w.total_bytes() / 2,
            "90% working set {ws90} vs total {}",
            w.total_bytes()
        );
    }

    #[test]
    fn popularity_head_dominates() {
        let w = quick(10_000, 0.6, None);
        // Top 1% of files should cover far more than 1% of requests.
        let head = w.request_fraction_of_top(100);
        assert!(head > 0.15, "head share {head}");
        assert!(w.popularity(FileId(0)) > w.popularity(FileId(5_000)));
    }

    #[test]
    fn rescale_handles_overshoot_and_undershoot() {
        let mut a = vec![100u64, 200, 700];
        rescale_to_total(&mut a, 2_000, 1);
        assert_eq!(a.iter().sum::<u64>(), 2_000);
        let mut b = vec![1_000u64, 2_000, 7_000];
        rescale_to_total(&mut b, 5_000, 1);
        assert_eq!(b.iter().sum::<u64>(), 5_000);
    }
}
