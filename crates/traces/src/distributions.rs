//! Distribution samplers used by the synthetic workload generator.
//!
//! Implemented directly on [`simcore::Rng`] rather than pulling in the `rand`
//! distribution stack: the handful of distributions needed (Zipf weights,
//! log-normal sizes, bounded Pareto tails, exponential think times) are each a
//! few lines, and owning them keeps sampled sequences byte-stable across
//! toolchain upgrades.

use simcore::Rng;

/// Zipf-like rank weights: `w(r) ∝ 1 / (r+1)^theta` for ranks `0..n`.
///
/// Arlitt & Williamson found web-server file popularity to follow a Zipf-like
/// distribution; `theta` near 0.7–0.8 matches the traces the paper uses.
pub fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0, "zipf over empty rank set");
    assert!(theta >= 0.0 && theta.is_finite(), "bad theta {theta}");
    (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(theta)).collect()
}

/// A standard normal sample via the Box–Muller transform.
///
/// Uses only one of the two produced variates; the generator is cheap enough
/// that caching the second would just add state.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    let u1 = rng.next_f64_open(); // in (0, 1], safe for ln
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sampler: `exp(mu + sigma * N(0,1))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from the underlying normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0, "negative sigma");
        LogNormal { mu, sigma }
    }

    /// A log-normal whose *arithmetic* mean is `mean` with log-space spread
    /// `sigma` — convenient for calibrating "average file size ≈ X KB".
    pub fn with_mean(mean: f64, sigma: f64) -> LogNormal {
        assert!(mean > 0.0, "non-positive mean");
        // E[exp(mu + sigma N)] = exp(mu + sigma^2/2)
        LogNormal::new(mean.ln() - sigma * sigma / 2.0, sigma)
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution's arithmetic mean.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Bounded Pareto sampler on `[lo, hi]` with shape `alpha` — used for the
/// heavy tail of web file sizes (a few very large files).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Construct; requires `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> BoundedPareto {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "bad pareto params");
        BoundedPareto { lo, hi, alpha }
    }

    /// Draw one sample by inverse transform.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let u = rng.next_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Exponential sampler with the given mean (used for optional client think
/// times; the paper's throughput runs use zero think time).
pub fn exponential(rng: &mut Rng, mean: f64) -> f64 {
    assert!(mean >= 0.0, "negative mean");
    if mean == 0.0 {
        return 0.0;
    }
    -mean * rng.next_f64_open().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_decrease_and_normalize_sensibly() {
        let w = zipf_weights(100, 0.8);
        assert_eq!(w.len(), 100);
        assert_eq!(w[0], 1.0);
        for i in 1..w.len() {
            assert!(w[i] < w[i - 1]);
        }
        // theta = 0 is uniform.
        let u = zipf_weights(10, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn zipf_skew_grows_with_theta() {
        let head_share = |theta: f64| {
            let w = zipf_weights(1000, theta);
            let total: f64 = w.iter().sum();
            w[..10].iter().sum::<f64>() / total
        };
        assert!(head_share(0.9) > head_share(0.5));
        assert!(head_share(0.5) > head_share(0.1));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::new(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn lognormal_with_mean_hits_target() {
        let d = LogNormal::with_mean(20_000.0, 1.2);
        assert!((d.mean() - 20_000.0).abs() < 1e-6);
        let mut rng = Rng::new(7);
        let n = 300_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let emp = sum / n as f64;
        // Heavy-tailed, so allow a few percent of sampling error.
        assert!((emp - 20_000.0).abs() / 20_000.0 < 0.05, "emp={emp}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 2.0);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1_000.0, 1_000_000.0, 1.1);
        let mut rng = Rng::new(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(
                (1_000.0..=1_000_000.0 + 1e-6).contains(&x),
                "out of bounds: {x}"
            );
        }
    }

    #[test]
    fn bounded_pareto_is_right_skewed() {
        let d = BoundedPareto::new(1_000.0, 1_000_000.0, 1.1);
        let mut rng = Rng::new(6);
        let n = 50_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(mean > 1.5 * median, "mean={mean} median={median}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 5.0)).sum();
        let emp = sum / n as f64;
        assert!((emp - 5.0).abs() < 0.05, "emp={emp}");
        assert_eq!(exponential(&mut rng, 0.0), 0.0);
    }
}
