//! Files, popularity, and request sources.
//!
//! A [`Workload`] is the static description of a web server's content and its
//! access pattern: one size per file plus a popularity distribution over
//! files. By convention **file ids are popularity ranks**: file 0 is the most
//! requested file. This makes the Figure 1 cumulative-distribution curves and
//! the working-set calculations exact rather than sampled.
//!
//! Simulated clients pull requests through the [`RequestSource`] trait, with
//! two implementations: [`SampledSource`] draws i.i.d. from the popularity
//! distribution (the synthetic presets), and [`ReplaySource`] replays a
//! recorded request sequence, cycling when it runs out (real traces loaded
//! from Common Log Format; the paper similarly ignores trace timing and lets
//! every client fire its next request as soon as the previous one completes).

use simcore::Rng;
use std::sync::Arc;

/// Identifies a file. Equal to the file's popularity rank (0 = hottest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl FileId {
    /// The rank as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of server content and its access popularity.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    /// Size in bytes of each file, indexed by popularity rank.
    sizes: Vec<u64>,
    /// Cumulative popularity: `cum[i]` = P(rank <= i). Last entry is 1.0.
    cum: Vec<f64>,
}

impl Workload {
    /// Build a workload from per-rank sizes and (unnormalized) popularity
    /// weights. `weights[i]` is the relative request frequency of rank `i`
    /// and must be non-increasing for the rank convention to hold.
    ///
    /// # Panics
    /// Panics if lengths differ, if the workload is empty, or if any weight
    /// is non-finite or negative.
    pub fn new(name: impl Into<String>, sizes: Vec<u64>, weights: &[f64]) -> Workload {
        assert_eq!(sizes.len(), weights.len(), "sizes/weights length mismatch");
        assert!(!sizes.is_empty(), "empty workload");
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w} at rank {i}");
            if i > 0 {
                debug_assert!(
                    w <= weights[i - 1] + 1e-12,
                    "weights must be non-increasing by rank (rank {i})"
                );
            }
            acc += w;
            cum.push(acc);
        }
        assert!(acc > 0.0, "all weights are zero");
        for c in &mut cum {
            *c /= acc;
        }
        *cum.last_mut().unwrap() = 1.0;
        Workload {
            name: name.into(),
            sizes,
            cum,
        }
    }

    /// Workload name (e.g. `"rutgers"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct files.
    pub fn num_files(&self) -> usize {
        self.sizes.len()
    }

    /// Size of one file in bytes.
    #[inline]
    pub fn size_of(&self, f: FileId) -> u64 {
        self.sizes[f.index()]
    }

    /// All file sizes, indexed by rank.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Total bytes across all files (the paper's "file set size").
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Mean file size in bytes.
    pub fn avg_file_size(&self) -> f64 {
        self.total_bytes() as f64 / self.num_files() as f64
    }

    /// Probability that a request targets rank `i`.
    pub fn popularity(&self, f: FileId) -> f64 {
        let i = f.index();
        if i == 0 {
            self.cum[0]
        } else {
            self.cum[i] - self.cum[i - 1]
        }
    }

    /// Expected bytes per request: `Σ pᵢ · sizeᵢ` (the paper's "average
    /// request size", which is below the average file size because popular
    /// files skew small).
    pub fn avg_request_size(&self) -> f64 {
        let mut acc = 0.0;
        let mut prev = 0.0;
        for (i, &c) in self.cum.iter().enumerate() {
            acc += (c - prev) * self.sizes[i] as f64;
            prev = c;
        }
        acc
    }

    /// Draw one request according to popularity.
    pub fn sample(&self, rng: &mut Rng) -> FileId {
        let u = rng.next_f64();
        // First index with cum >= u.
        let idx = self.cum.partition_point(|&c| c < u);
        FileId(idx.min(self.cum.len() - 1) as u32)
    }

    /// Cumulative request fraction covered by the `n` hottest files.
    pub fn request_fraction_of_top(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.cum[(n - 1).min(self.cum.len() - 1)]
        }
    }

    /// Bytes occupied by the `n` hottest files.
    pub fn bytes_of_top(&self, n: usize) -> u64 {
        self.sizes.iter().take(n).sum()
    }

    /// The smallest memory (bytes of hottest files) covering at least
    /// `frac` of requests — the paper's working-set measure for Figure 1.
    pub fn working_set_for(&self, frac: f64) -> u64 {
        let n = self.cum.partition_point(|&c| c < frac) + 1;
        self.bytes_of_top(n.min(self.num_files()))
    }

    /// The workload restricted to its `n` hottest files, with popularity
    /// renormalized over the survivors. Ranks (and therefore file ids) are
    /// preserved, so a request stream drawn from the head is a valid stream
    /// against any catalog built from the same head.
    ///
    /// This is the scaling knob live-cluster tests use: a full preset has
    /// tens of thousands of files, but the paper-shape claims (hit-ratio
    /// ordering across replacement policies) already show at a few hundred —
    /// the head keeps the Zipf shape while shrinking the byte footprint.
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds the file count.
    pub fn head(&self, n: usize) -> Workload {
        assert!(n > 0, "empty head");
        assert!(n <= self.num_files(), "head exceeds workload");
        let scale = self.cum[n - 1];
        let mut cum: Vec<f64> = self.cum[..n].iter().map(|c| c / scale).collect();
        *cum.last_mut().unwrap() = 1.0;
        Workload {
            name: format!("{}-head{}", self.name, n),
            sizes: self.sizes[..n].to_vec(),
            cum,
        }
    }

    /// Record `count` popularity-driven requests into a replayable sequence.
    /// The stream is a pure function of the workload and the RNG state — the
    /// determinism the live-vs-simulator conformance suite is built on.
    pub fn record(&self, count: usize, rng: &mut Rng) -> Vec<FileId> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// An infinite seeded request iterator over this workload — the replay
    /// form the load generator consumes. Equivalent to calling
    /// [`Workload::sample`] forever on the same RNG.
    pub fn requests(self: &Arc<Self>, rng: Rng) -> RequestIter {
        RequestIter {
            workload: self.clone(),
            rng,
        }
    }
}

/// An infinite, seeded stream of popularity-driven requests (see
/// [`Workload::requests`]). Implements both [`Iterator`] and
/// [`RequestSource`].
#[derive(Debug, Clone)]
pub struct RequestIter {
    workload: Arc<Workload>,
    rng: Rng,
}

impl Iterator for RequestIter {
    type Item = FileId;

    fn next(&mut self) -> Option<FileId> {
        Some(self.workload.sample(&mut self.rng))
    }
}

impl RequestSource for RequestIter {
    fn next_request(&mut self) -> FileId {
        self.workload.sample(&mut self.rng)
    }
}

/// A stream of requests, as consumed by the simulated clients.
pub trait RequestSource {
    /// The next requested file.
    fn next_request(&mut self) -> FileId;
}

/// Draws i.i.d. requests from a workload's popularity distribution.
#[derive(Debug, Clone)]
pub struct SampledSource {
    workload: Arc<Workload>,
    rng: Rng,
}

impl SampledSource {
    /// A source with its own RNG stream.
    pub fn new(workload: Arc<Workload>, rng: Rng) -> SampledSource {
        SampledSource { workload, rng }
    }
}

impl RequestSource for SampledSource {
    fn next_request(&mut self) -> FileId {
        self.workload.sample(&mut self.rng)
    }
}

/// Replays a recorded request sequence, cycling at the end.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    seq: Arc<[FileId]>,
    pos: usize,
}

impl ReplaySource {
    /// A source starting at `offset` into the sequence (so multiple clients
    /// can share one trace without being in lock-step).
    ///
    /// # Panics
    /// Panics if the sequence is empty.
    pub fn new(seq: Arc<[FileId]>, offset: usize) -> ReplaySource {
        assert!(!seq.is_empty(), "empty request sequence");
        let pos = offset % seq.len();
        ReplaySource { seq, pos }
    }
}

impl RequestSource for ReplaySource {
    fn next_request(&mut self) -> FileId {
        let f = self.seq[self.pos];
        self.pos = (self.pos + 1) % self.seq.len();
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        // Three files: rank 0 has weight 2, ranks 1-2 weight 1 each.
        Workload::new("tiny", vec![100, 200, 400], &[2.0, 1.0, 1.0])
    }

    #[test]
    fn sizes_and_totals() {
        let w = tiny();
        assert_eq!(w.num_files(), 3);
        assert_eq!(w.total_bytes(), 700);
        assert!((w.avg_file_size() - 700.0 / 3.0).abs() < 1e-9);
        assert_eq!(w.size_of(FileId(2)), 400);
    }

    #[test]
    fn popularity_normalizes() {
        let w = tiny();
        assert!((w.popularity(FileId(0)) - 0.5).abs() < 1e-12);
        assert!((w.popularity(FileId(1)) - 0.25).abs() < 1e-12);
        assert!((w.popularity(FileId(2)) - 0.25).abs() < 1e-12);
        let total: f64 = (0..3).map(|i| w.popularity(FileId(i))).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_request_size_weights_by_popularity() {
        let w = tiny();
        // 0.5*100 + 0.25*200 + 0.25*400 = 200
        assert!((w.avg_request_size() - 200.0).abs() < 1e-9);
        // Popular files are smaller here, so requests average below files.
        assert!(w.avg_request_size() < w.avg_file_size());
    }

    #[test]
    fn sampling_matches_popularity() {
        let w = tiny();
        let mut rng = Rng::new(1);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[w.sample(&mut rng).index()] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.5).abs() < 0.01, "f0={f0}");
    }

    #[test]
    fn sample_never_out_of_range() {
        let w = tiny();
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            assert!(w.sample(&mut rng).index() < 3);
        }
    }

    #[test]
    fn working_set_fractions() {
        let w = tiny();
        // 50% of requests hit file 0 (100 bytes).
        assert_eq!(w.working_set_for(0.5), 100);
        // 75% needs files 0-1 (300 bytes).
        assert_eq!(w.working_set_for(0.75), 300);
        assert_eq!(w.working_set_for(1.0), 700);
        assert_eq!(w.request_fraction_of_top(0), 0.0);
        assert!((w.request_fraction_of_top(1) - 0.5).abs() < 1e-12);
        assert_eq!(w.bytes_of_top(2), 300);
    }

    #[test]
    fn replay_cycles_and_offsets() {
        let seq: Arc<[FileId]> = vec![FileId(0), FileId(1), FileId(2)].into();
        let mut a = ReplaySource::new(seq.clone(), 0);
        let mut b = ReplaySource::new(seq, 2);
        assert_eq!(a.next_request(), FileId(0));
        assert_eq!(a.next_request(), FileId(1));
        assert_eq!(a.next_request(), FileId(2));
        assert_eq!(a.next_request(), FileId(0)); // wrapped
        assert_eq!(b.next_request(), FileId(2));
        assert_eq!(b.next_request(), FileId(0)); // wrapped
    }

    #[test]
    fn sampled_source_is_deterministic_per_stream() {
        let w = Arc::new(tiny());
        let mut s1 = SampledSource::new(w.clone(), Rng::new(9));
        let mut s2 = SampledSource::new(w, Rng::new(9));
        for _ in 0..100 {
            assert_eq!(s1.next_request(), s2.next_request());
        }
    }

    #[test]
    fn head_preserves_ranks_and_renormalizes() {
        let w = tiny().head(2);
        assert_eq!(w.num_files(), 2);
        assert_eq!(w.sizes(), &[100, 200]);
        // Original weights 2:1 over the survivors → 2/3 : 1/3.
        assert!((w.popularity(FileId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((w.popularity(FileId(1)) - 1.0 / 3.0).abs() < 1e-12);
        let total: f64 = (0..2).map(|i| w.popularity(FileId(i))).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mut rng = Rng::new(3);
        for _ in 0..1_000 {
            assert!(w.sample(&mut rng).index() < 2);
        }
    }

    #[test]
    #[should_panic(expected = "head exceeds workload")]
    fn oversized_head_panics() {
        tiny().head(4);
    }

    #[test]
    fn record_matches_request_iter() {
        let w = Arc::new(tiny());
        let recorded = w.record(200, &mut Rng::new(7).substream(1));
        let streamed: Vec<FileId> = w.requests(Rng::new(7).substream(1)).take(200).collect();
        assert_eq!(recorded, streamed);
        // And via the RequestSource trait, same again.
        let mut src = w.requests(Rng::new(7).substream(1));
        for &f in &recorded {
            assert_eq!(RequestSource::next_request(&mut src), f);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Workload::new("bad", vec![1, 2], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_workload_panics() {
        Workload::new("bad", vec![], &[]);
    }
}
