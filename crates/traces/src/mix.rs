//! Read/write mixes and scan-heavy request streams.
//!
//! Two workload variants for exercising the middleware's write path and its
//! admission control, both built *on top of* the four calibrated presets
//! rather than as new [`Preset`](crate::Preset) variants:
//!
//! * [`WriteMix`] marks a deterministic subset of a request stream as
//!   writes. The decision is a pure function of `(seed, op index)` — not of
//!   RNG draw order — so a multi-threaded driver where every client numbers
//!   its own operations reproduces the exact same read/write schedule on
//!   every run, and a verifier can recompute which ops wrote without
//!   replaying the sampler.
//! * [`scan_heavy`] appends a sequential-scan tail to a workload: the Zipf
//!   body keeps its popularity mass, while the scan files carry **zero**
//!   popularity weight and are only touched by a [`ScanSource`], which
//!   replaces every `period`-th request with the next sequential scan file.
//!   Each scan file is touched once per sweep — the classic one-touch scan
//!   that pollutes an LRU cache and that ghost-LRU admission is built to
//!   resist.
//!
//! Everything here is deterministic: the same `(workload, seed, config)`
//! triple yields a bit-identical request/op stream across runs, threads, and
//! independently constructed sources — the property the conformance and
//! bench suites pin.

use crate::model::{FileId, RequestSource, Workload};

/// SplitMix64 finalizer: a full-avalanche hash over one `u64`.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic write marking over a numbered operation stream.
///
/// `is_write(op)` hashes `(seed, op)` and compares against the ratio, so the
/// schedule is independent of sampling order and cheap to recompute anywhere
/// — the load generator's read-back verifier uses exactly this to know which
/// payload each block must hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteMix {
    seed: u64,
    ratio: f64,
}

impl WriteMix {
    /// A mix where a `ratio` fraction of operations write (0.0 ..= 1.0).
    ///
    /// # Panics
    /// Panics if `ratio` is not a probability.
    pub fn new(seed: u64, ratio: f64) -> WriteMix {
        assert!(
            (0.0..=1.0).contains(&ratio) && ratio.is_finite(),
            "write ratio {ratio} is not a probability"
        );
        WriteMix { seed, ratio }
    }

    /// The write fraction this mix was built with.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Whether operation number `op` is a write — a pure function of
    /// `(seed, op)`.
    #[inline]
    pub fn is_write(&self, op: u64) -> bool {
        // 53 uniform mantissa bits → [0, 1).
        let u = (splitmix64(self.seed ^ op.wrapping_mul(0xA24B_AED4_963E_E407)) >> 11) as f64
            / (1u64 << 53) as f64;
        u < self.ratio
    }

    /// The number of writes among operations `0..ops` (exact, not expected).
    pub fn writes_in(&self, ops: u64) -> u64 {
        (0..ops).filter(|&op| self.is_write(op)).count() as u64
    }
}

/// Shape of the scan tail appended by [`scan_heavy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanConfig {
    /// Number of one-touch files appended after the popularity body.
    pub scan_files: usize,
    /// Size of each scan file in bytes.
    pub scan_file_bytes: u64,
    /// Every `period`-th request is replaced by the next scan file
    /// (`period == 4` → 25% of requests are scan touches).
    pub period: u64,
}

impl Default for ScanConfig {
    fn default() -> ScanConfig {
        ScanConfig {
            scan_files: 512,
            scan_file_bytes: 8 * 1024,
            period: 4,
        }
    }
}

/// Append a zero-popularity scan tail to `base`.
///
/// The returned workload has `base.num_files() + cfg.scan_files` files; the
/// body keeps its exact popularity distribution (sampling never draws a
/// scan file), and the tail exists so catalogs built from the workload
/// contain the scan files a [`ScanSource`] will touch.
///
/// # Panics
/// Panics if `cfg.scan_files` is zero or `cfg.period` is zero.
pub fn scan_heavy(base: &Workload, cfg: ScanConfig) -> Workload {
    assert!(cfg.scan_files > 0, "scan tail must not be empty");
    assert!(cfg.period > 0, "scan period must be positive");
    let body = base.num_files();
    let mut sizes = base.sizes().to_vec();
    sizes.extend(std::iter::repeat_n(cfg.scan_file_bytes, cfg.scan_files));
    let mut weights: Vec<f64> = (0..body)
        .map(|i| base.popularity(FileId(i as u32)))
        .collect();
    weights.extend(std::iter::repeat_n(0.0, cfg.scan_files));
    Workload::new(
        format!("{}-scan{}", base.name(), cfg.scan_files),
        sizes,
        &weights,
    )
}

/// Interleaves sequential scan touches into a popularity-driven stream.
///
/// Every `period`-th request (1-based) returns the next scan file in
/// sequence, wrapping after the last; all other requests come from the
/// inner source. Determinism is inherited: a seeded inner source makes the
/// whole interleaved stream a pure function of the seed.
#[derive(Debug, Clone)]
pub struct ScanSource<S> {
    inner: S,
    body_files: u32,
    scan_files: u32,
    period: u64,
    ops: u64,
    next_scan: u32,
}

impl<S: RequestSource> ScanSource<S> {
    /// Wrap `inner` (which must draw only from the first `body_files`
    /// ranks) with a sweep over the `scan_files` files that follow them —
    /// the layout [`scan_heavy`] produces.
    ///
    /// # Panics
    /// Panics if `scan_files` or `period` is zero.
    pub fn new(inner: S, body_files: usize, scan_files: usize, period: u64) -> ScanSource<S> {
        assert!(scan_files > 0, "scan tail must not be empty");
        assert!(period > 0, "scan period must be positive");
        ScanSource {
            inner,
            body_files: body_files as u32,
            scan_files: scan_files as u32,
            period,
            ops: 0,
            next_scan: 0,
        }
    }
}

impl<S: RequestSource> RequestSource for ScanSource<S> {
    fn next_request(&mut self) -> FileId {
        self.ops += 1;
        if self.ops.is_multiple_of(self.period) {
            let f = FileId(self.body_files + self.next_scan);
            self.next_scan = (self.next_scan + 1) % self.scan_files;
            f
        } else {
            self.inner.next_request()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SampledSource;
    use simcore::Rng;
    use std::sync::Arc;

    fn body() -> Workload {
        Workload::new("body", vec![1_000, 2_000, 4_000], &[2.0, 1.0, 1.0])
    }

    #[test]
    fn write_mix_is_a_pure_function_of_seed_and_op() {
        let a = WriteMix::new(7, 0.25);
        let b = WriteMix::new(7, 0.25);
        for op in 0..10_000 {
            assert_eq!(a.is_write(op), b.is_write(op));
        }
        // Order independence: querying backwards agrees with forwards.
        let fwd: Vec<bool> = (0..100).map(|op| a.is_write(op)).collect();
        let bwd: Vec<bool> = (0..100).rev().map(|op| a.is_write(op)).collect();
        assert_eq!(fwd, bwd.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn write_mix_tracks_the_ratio() {
        let mix = WriteMix::new(42, 0.2);
        let writes = mix.writes_in(50_000) as f64 / 50_000.0;
        assert!((writes - 0.2).abs() < 0.01, "observed ratio {writes}");
        assert_eq!(WriteMix::new(1, 0.0).writes_in(10_000), 0);
        assert_eq!(WriteMix::new(1, 1.0).writes_in(10_000), 10_000);
    }

    #[test]
    fn different_seeds_mark_different_ops() {
        let a = WriteMix::new(1, 0.3);
        let b = WriteMix::new(2, 0.3);
        let marks = |m: &WriteMix| (0..1_000).map(|op| m.is_write(op)).collect::<Vec<_>>();
        assert_ne!(marks(&a), marks(&b));
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_ratio_panics() {
        WriteMix::new(0, 1.5);
    }

    #[test]
    fn scan_heavy_appends_weightless_tail() {
        let w = scan_heavy(
            &body(),
            ScanConfig {
                scan_files: 5,
                scan_file_bytes: 512,
                period: 3,
            },
        );
        assert_eq!(w.num_files(), 8);
        assert_eq!(w.sizes()[3..], [512; 5]);
        // Body popularity is preserved exactly; tail carries zero mass.
        assert!((w.popularity(FileId(0)) - 0.5).abs() < 1e-12);
        for f in 3..8 {
            assert_eq!(w.popularity(FileId(f)), 0.0);
        }
        // Sampling never draws a scan file.
        let mut rng = Rng::new(11);
        for _ in 0..20_000 {
            assert!(w.sample(&mut rng).index() < 3);
        }
    }

    #[test]
    fn scan_source_sweeps_sequentially_at_the_period() {
        let w = Arc::new(body());
        let inner = SampledSource::new(w, Rng::new(5));
        let mut src = ScanSource::new(inner, 3, 4, 3);
        let stream: Vec<FileId> = (0..24).map(|_| src.next_request()).collect();
        // Every 3rd request (1-based) is a scan touch, sweeping 3,4,5,6 then
        // wrapping.
        let scans: Vec<u32> = stream
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + 1) % 3 == 0)
            .map(|(_, f)| f.0)
            .collect();
        assert_eq!(scans, vec![3, 4, 5, 6, 3, 4, 5, 6]);
        // Everything else stays in the body.
        for (i, f) in stream.iter().enumerate() {
            if (i + 1) % 3 != 0 {
                assert!(f.index() < 3, "op {i} drew {f:?} outside the body");
            }
        }
    }

    #[test]
    fn scan_stream_is_deterministic_per_seed() {
        let w = Arc::new(body());
        let draw = |seed: u64| -> Vec<u32> {
            let mut src = ScanSource::new(SampledSource::new(w.clone(), Rng::new(seed)), 3, 4, 3);
            (0..500).map(|_| src.next_request().0).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
