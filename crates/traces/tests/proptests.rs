//! Property-based tests for the workload substrate.

use ccm_traces::{clf, FileId, SynthConfig, WorkingSetCurve, Workload};
use proptest::prelude::*;
use simcore::Rng;

fn configs() -> impl Strategy<Value = SynthConfig> {
    (
        2usize..2_000,
        0.3f64..1.2,
        0.0f64..1.0,
        prop::option::of(1u64..(64 << 20)),
        any::<u64>(),
    )
        .prop_map(|(n_files, theta, corr, total, seed)| SynthConfig {
            n_files,
            zipf_theta: theta,
            rank_size_corr: corr,
            // Keep totals sane relative to min sizes.
            total_bytes: total.map(|t| t.max(n_files as u64 * 600)),
            seed,
            ..SynthConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated workloads are structurally sound for any parameters.
    #[test]
    fn synth_workloads_are_well_formed(cfg in configs()) {
        let w = cfg.build();
        prop_assert_eq!(w.num_files(), cfg.n_files);
        // Sizes respect the floor.
        prop_assert!(w.sizes().iter().all(|&s| s >= cfg.min_size));
        // Popularity is a distribution over ranks, non-increasing.
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for r in 0..w.num_files() as u32 {
            let p = w.popularity(FileId(r));
            prop_assert!(p >= 0.0);
            prop_assert!(p <= prev + 1e-12, "popularity increased at rank {r}");
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-6, "total popularity {total}");
        // Pinned totals are exact.
        if let Some(t) = cfg.total_bytes {
            prop_assert_eq!(w.total_bytes(), t);
        }
    }

    /// Sampling respects the distribution: the head's empirical share is
    /// within a loose tolerance of its analytic share.
    #[test]
    fn sampling_matches_analytic_head_share(cfg in configs(), seed in any::<u64>()) {
        let w = cfg.build();
        let head = (w.num_files() / 10).max(1);
        let analytic = w.request_fraction_of_top(head);
        let mut rng = Rng::new(seed);
        let n = 30_000;
        let hits = (0..n)
            .filter(|_| w.sample(&mut rng).index() < head)
            .count();
        let empirical = hits as f64 / n as f64;
        prop_assert!(
            (empirical - analytic).abs() < 0.03,
            "analytic {analytic:.3} vs empirical {empirical:.3}"
        );
    }

    /// The working-set function is monotone in the request fraction and
    /// consistent with the curve.
    #[test]
    fn working_set_is_monotone(cfg in configs()) {
        let w = cfg.build();
        let mut prev = 0;
        for f in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0] {
            let ws = w.working_set_for(f);
            prop_assert!(ws >= prev, "working set shrank at {f}");
            prop_assert!(ws <= w.total_bytes());
            prev = ws;
        }
        let curve = WorkingSetCurve::compute(&w, 64);
        let last = curve.points().last().unwrap();
        prop_assert_eq!(last.cumulative_bytes, w.total_bytes());
    }

    /// The average request size is a convex combination of file sizes.
    #[test]
    fn avg_request_size_is_bounded_by_extremes(cfg in configs()) {
        let w = cfg.build();
        let min = *w.sizes().iter().min().unwrap() as f64;
        let max = *w.sizes().iter().max().unwrap() as f64;
        let avg = w.avg_request_size();
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9, "{min} <= {avg} <= {max}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CLF round trip: synthesize a log from a known request sequence; the
    /// loaded workload reproduces the popularity ranking and sizes.
    #[test]
    fn clf_round_trips_known_logs(
        seq in prop::collection::vec(0u32..20, 1..300),
    ) {
        let mut text = String::new();
        for &doc in &seq {
            text.push_str(&format!(
                "h - - [d] \"GET /f{doc} HTTP/1.0\" 200 {}\n",
                1_000 + doc * 10
            ));
        }
        let t = clf::load(&text, "prop");
        prop_assert_eq!(t.skipped, 0);
        prop_assert_eq!(t.requests.len(), seq.len());
        // Every request resolves to a file whose size matches its path.
        let mut counts = std::collections::HashMap::new();
        for &d in &seq {
            *counts.entry(1_000 + d as u64 * 10).or_insert(0u64) += 1;
        }
        for rank in 0..t.workload.num_files() as u32 {
            let size = t.workload.size_of(FileId(rank));
            prop_assert!(counts.contains_key(&size), "unknown size {size}");
        }
        // Ranks are by frequency: non-increasing hit counts.
        let freq_of = |rank: u32| -> u64 {
            let size = t.workload.size_of(FileId(rank));
            counts[&size]
        };
        for r in 1..t.workload.num_files() as u32 {
            prop_assert!(freq_of(r - 1) >= freq_of(r), "ranking broken at {r}");
        }
    }
}

/// Non-proptest statistical check kept alongside: two different seeds give
/// statistically similar but unequal workloads.
#[test]
fn seeds_change_samples_not_statistics() {
    let base = SynthConfig {
        n_files: 3_000,
        total_bytes: Some(32 << 20),
        ..SynthConfig::default()
    };
    let a: Workload = base.clone().build();
    let b: Workload = SynthConfig {
        seed: base.seed ^ 99,
        ..base
    }
    .build();
    assert_ne!(a.sizes(), b.sizes());
    assert_eq!(a.total_bytes(), b.total_bytes());
    let rel = (a.avg_request_size() - b.avg_request_size()).abs() / a.avg_request_size();
    assert!(rel < 0.25, "request-size stats diverged: {rel}");
}
