//! Replay determinism: the property the live-vs-simulator conformance
//! suite stands on. A preset name plus a seed must fully determine the
//! request stream — across *independently constructed* generators, not
//! just clones of one — and different seeds must actually explore
//! different streams.

use ccm_traces::{Preset, RequestSource, Workload};
use proptest::prelude::*;
use simcore::Rng;
use std::sync::Arc;

/// Build the preset's workload twice, independently, and pull a request
/// stream from each with the same seed.
fn two_independent_streams(p: Preset, head: usize, seed: u64, n: usize) -> (Vec<u32>, Vec<u32>) {
    let draw = || -> Vec<u32> {
        let w = Arc::new(p.workload().head(head));
        w.requests(Rng::new(seed).substream(1))
            .take(n)
            .map(|f| f.0)
            .collect()
    };
    (draw(), draw())
}

/// Same seed, two generators built from scratch: bit-identical sizes and
/// request streams, for every preset.
#[test]
fn same_seed_is_bit_identical_across_independent_generators() {
    for p in Preset::all() {
        let a = p.workload();
        let b = p.workload();
        assert_eq!(a.sizes(), b.sizes(), "{}: sizes diverged", p.name());

        let (s1, s2) = two_independent_streams(p, 500, 0xC0FFEE ^ p.config().seed, 2_000);
        assert_eq!(s1, s2, "{}: request streams diverged", p.name());
    }
}

/// Different seeds must produce different request streams (the stream is
/// not collapsing to the popularity ranking alone).
#[test]
fn different_seeds_produce_different_streams() {
    for p in Preset::all() {
        let w = Arc::new(p.workload().head(500));
        let stream = |seed: u64| -> Vec<u32> {
            w.requests(Rng::new(seed).substream(1))
                .take(2_000)
                .map(|f| f.0)
                .collect()
        };
        assert_ne!(
            stream(1),
            stream(2),
            "{}: seeds 1 and 2 drew identical streams",
            p.name()
        );
    }
}

/// `record` is the batch form of the iterator: both must agree, and both
/// must replay identically through the `RequestSource` trait object path
/// the load generator's clients use.
#[test]
fn record_iterator_and_source_agree() {
    let w = Arc::new(Preset::Rutgers.workload().head(300));
    let recorded = w.record(1_000, &mut Rng::new(9).substream(4));
    let iterated: Vec<_> = w.requests(Rng::new(9).substream(4)).take(1_000).collect();
    assert_eq!(recorded, iterated);
    let mut src: Box<dyn RequestSource> = Box::new(w.requests(Rng::new(9).substream(4)));
    for &f in &recorded {
        assert_eq!(src.next_request(), f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Head truncation keeps determinism and range for arbitrary seeds and
    /// head sizes: two independently built heads replay the same stream,
    /// and every drawn id is inside the head.
    #[test]
    fn heads_replay_deterministically(seed in any::<u64>(), head in 1usize..400) {
        let p = Preset::Calgary;
        let (s1, s2) = two_independent_streams(p, head, seed, 300);
        prop_assert_eq!(&s1, &s2);
        prop_assert!(s1.iter().all(|&f| (f as usize) < head));
    }

    /// A recorded stream follows the head's popularity: rank 0 is drawn at
    /// least as often as a mid-pack rank over a long window.
    #[test]
    fn hot_rank_dominates(seed in any::<u64>()) {
        let w: Workload = Preset::Nasa.workload().head(200);
        let mut rng = Rng::new(seed).substream(2);
        let stream = w.record(5_000, &mut rng);
        let count = |r: u32| stream.iter().filter(|f| f.0 == r).count();
        prop_assert!(count(0) >= count(100));
    }
}
