//! Same-seed determinism properties for the write-mix and scan-heavy
//! variants — the guarantees the load generator's read-back verifier and
//! the bench suite's admission comparison stand on.

use ccm_traces::{scan_heavy, Preset, RequestSource, ScanConfig, ScanSource, WriteMix};
use proptest::prelude::*;
use simcore::Rng;
use std::sync::Arc;

/// Build the scan-heavy Calgary head twice, independently, and pull the
/// interleaved request stream from each with the same seed.
fn two_scan_streams(head: usize, cfg: ScanConfig, seed: u64, n: usize) -> (Vec<u32>, Vec<u32>) {
    let draw = || -> Vec<u32> {
        let base = Preset::Calgary.workload().head(head);
        let w = Arc::new(scan_heavy(&base, cfg));
        let inner = w.requests(Rng::new(seed).substream(1));
        let mut src = ScanSource::new(inner, head, cfg.scan_files, cfg.period);
        (0..n).map(|_| src.next_request().0).collect()
    };
    (draw(), draw())
}

/// The scan-heavy workload itself is deterministic: same base, same config,
/// bit-identical sizes — and the default config appends its documented tail.
#[test]
fn scan_heavy_workload_is_deterministic() {
    let base = Preset::Nasa.workload().head(300);
    let a = scan_heavy(&base, ScanConfig::default());
    let b = scan_heavy(&base, ScanConfig::default());
    assert_eq!(a.sizes(), b.sizes());
    assert_eq!(a.num_files(), 300 + ScanConfig::default().scan_files);
    // The tail carries zero request mass: total popularity sits entirely in
    // the body.
    assert!((a.request_fraction_of_top(300) - 1.0).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write marking replays bit-identically for arbitrary seeds and
    /// ratios, and the observed write fraction tracks the requested ratio.
    #[test]
    fn write_mix_replays_bit_identically(seed in any::<u64>(), pct in 0u32..=100) {
        let ratio = pct as f64 / 100.0;
        let a = WriteMix::new(seed, ratio);
        let b = WriteMix::new(seed, ratio);
        let marks = |m: &WriteMix| (0..2_000u64).map(|op| m.is_write(op)).collect::<Vec<_>>();
        prop_assert_eq!(marks(&a), marks(&b));
        let observed = a.writes_in(20_000) as f64 / 20_000.0;
        prop_assert!((observed - ratio).abs() < 0.02, "ratio {} drew {}", ratio, observed);
    }

    /// Two independently constructed scan-heavy streams replay the same
    /// interleaving for arbitrary seeds, and every drawn id is in range:
    /// body ranks off-period, sequential tail ids on-period.
    #[test]
    fn scan_streams_replay_bit_identically(seed in any::<u64>(), period in 2u64..8) {
        let cfg = ScanConfig { scan_files: 16, scan_file_bytes: 4096, period };
        let head = 64usize;
        let (s1, s2) = two_scan_streams(head, cfg, seed, 400);
        prop_assert_eq!(&s1, &s2);
        let mut sweep = 0u32;
        for (i, &f) in s1.iter().enumerate() {
            if (i as u64 + 1).is_multiple_of(period) {
                prop_assert_eq!(f, head as u32 + sweep, "op {} broke the sweep", i);
                sweep = (sweep + 1) % cfg.scan_files as u32;
            } else {
                prop_assert!((f as usize) < head, "op {} drew {} outside the body", i, f);
            }
        }
    }
}
