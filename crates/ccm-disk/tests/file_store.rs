//! FileStore acceptance: byte-for-byte agreement with the synthetic
//! ground truth, partial tails, concurrent readers, write-through, and
//! recovery by reopening the same data dir.

use ccm_core::block::BLOCK_SIZE;
use ccm_core::{BlockId, FileId};
use ccm_disk::{read_file_direct, BlockStore, Catalog, FileStore, SyntheticStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fresh scratch dir per test (no tempfile crate in-tree); removed by
/// the caller when the assertion survives.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "ccm-disk-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn fixture() -> (Catalog, SyntheticStore) {
    // Empty file, sub-block file, exact multiple, ragged tail, >1 extent.
    let catalog = Catalog::new(vec![
        0,
        100,
        BLOCK_SIZE,
        BLOCK_SIZE * 2 + 17,
        BLOCK_SIZE * 9 + 1,
    ]);
    let store = SyntheticStore::new(catalog.clone(), 0xF11E);
    (catalog, store)
}

#[test]
fn round_trips_every_block_against_synthetic_content() {
    let (catalog, synth) = fixture();
    let dir = scratch("roundtrip");
    let fs = FileStore::create(&dir, &catalog, &synth).expect("create store");
    for f in 0..catalog.num_files() {
        let file = FileId(f as u32);
        for i in 0..catalog.blocks_of(file) {
            let b = BlockId::new(file, i);
            assert_eq!(
                fs.read_block(b),
                synth.read_block(b),
                "file {f} block {i} corrupted through the data file"
            );
        }
        assert_eq!(
            read_file_direct(&fs, &catalog, file),
            read_file_direct(&synth, &catalog, file),
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn partial_tail_blocks_keep_their_exact_length() {
    let (catalog, synth) = fixture();
    let dir = scratch("tail");
    let fs = FileStore::create(&dir, &catalog, &synth).expect("create store");
    assert_eq!(fs.read_block(BlockId::new(FileId(1), 0)).len(), 100);
    assert_eq!(fs.read_block(BlockId::new(FileId(3), 2)).len(), 17);
    assert_eq!(fs.read_block(BlockId::new(FileId(4), 9)).len(), 1);
    assert_eq!(fs.read_block(BlockId::new(FileId(0), 0)).len(), 0);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn concurrent_readers_see_consistent_bytes() {
    let (catalog, synth) = fixture();
    let dir = scratch("concurrent");
    let fs = Arc::new(FileStore::create(&dir, &catalog, &synth).expect("create store"));
    let synth = Arc::new(synth);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let fs = fs.clone();
            let synth = synth.clone();
            let catalog = catalog.clone();
            std::thread::spawn(move || {
                let mut rng = simcore::Rng::new(t);
                for _ in 0..200 {
                    let file = FileId(rng.next_below(catalog.num_files() as u64) as u32);
                    let i = rng.next_below(catalog.blocks_of(file) as u64) as u32;
                    let b = BlockId::new(file, i);
                    assert_eq!(fs.read_block(b), synth.read_block(b));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread");
    }
    drop(fs);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn reopen_recovers_catalog_and_content() {
    let (catalog, synth) = fixture();
    let dir = scratch("reopen");
    let mutated = BlockId::new(FileId(3), 1);
    let payload = vec![0xAB; BLOCK_SIZE as usize];
    {
        let fs = FileStore::create(&dir, &catalog, &synth).expect("create store");
        assert!(fs.write_block(mutated, &payload), "store is writable");
    }
    // A fresh process would only have the data dir: reopen must rebuild
    // the same catalog and serve both pristine and written blocks.
    let fs = FileStore::open(&dir).expect("reopen store");
    assert_eq!(fs.catalog().sizes(), catalog.sizes());
    assert_eq!(fs.read_block(mutated), payload, "write survived reopen");
    let pristine = BlockId::new(FileId(4), 3);
    assert_eq!(fs.read_block(pristine), synth.read_block(pristine));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn write_block_rejects_wrong_lengths() {
    let (catalog, synth) = fixture();
    let dir = scratch("wrlen");
    let fs = FileStore::create(&dir, &catalog, &synth).expect("create store");
    // File 3's tail is 17 bytes: a full-block write must be refused, the
    // exact-length write accepted.
    let tail = BlockId::new(FileId(3), 2);
    assert!(!fs.write_block(tail, &[0u8; BLOCK_SIZE as usize]));
    assert!(fs.write_block(tail, &[7u8; 17]));
    assert_eq!(fs.read_block(tail), vec![7u8; 17]);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn open_rejects_a_non_store_dir() {
    let dir = scratch("badmanifest");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("manifest.txt"), "something else\n").expect("write");
    assert!(FileStore::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
