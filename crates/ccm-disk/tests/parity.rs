//! Scheduler parity: the runtime's [`SchedQueue`] and the simulator's
//! `ccm_cluster::Disk` are fed identical arrival sequences and must serve
//! them in identical order with identical seek charges — the "runtime and
//! simulator agree on ordering" claim from DESIGN.md, asserted rather than
//! assumed.

use ccm_cluster::{CostModel, Disk, DiskRequest, DiskScheduler};
use ccm_disk::sched::{SchedPolicy, SchedQueue};
use simcore::SimTime;

const B: u64 = 8192;
const EXTENT: u64 = 64 * 1024;

#[derive(Debug, Clone, Copy)]
struct Arrival {
    tag: u64,
    addr: u64,
    bytes: u64,
    extents: u32,
}

fn arrival(tag: u64, addr: u64) -> Arrival {
    Arrival {
        tag,
        addr,
        bytes: B,
        extents: 1,
    }
}

/// Replay on the simulator: submit everything at time zero (the first
/// request starts immediately on the idle disk), then drain completions.
/// Returns (service order, seeks per request).
fn run_sim(scheduler: DiskScheduler, reqs: &[Arrival]) -> (Vec<u64>, Vec<u32>) {
    let costs = CostModel::default();
    let mut disk = Disk::new(scheduler);
    let mut pending = None;
    for r in reqs {
        let c = disk.submit(
            SimTime::ZERO,
            DiskRequest {
                tag: r.tag,
                address: r.addr,
                bytes: r.bytes,
                extents: r.extents,
            },
            &costs,
        );
        if let Some(c) = c {
            assert!(pending.is_none(), "only the first submit starts");
            pending = Some(c);
        }
    }
    let (mut order, mut seeks) = (Vec::new(), Vec::new());
    while let Some(c) = pending {
        order.push(c.tag);
        seeks.push(c.seeks);
        pending = disk.next_after_completion(c.done, &costs);
    }
    (order, seeks)
}

/// The same replay on the runtime queue: the first push is popped
/// immediately (idle disk), the rest queue and drain in pick order.
fn run_rt(policy: SchedPolicy, reqs: &[Arrival]) -> (Vec<u64>, Vec<u32>) {
    let mut q = SchedQueue::new(policy);
    let (mut order, mut seeks) = (Vec::new(), Vec::new());
    let mut started = false;
    for r in reqs {
        q.push(r.addr, r.bytes, r.extents, r.tag);
        if !started {
            let p = q.pop().expect("idle disk starts the first submit");
            order.push(p.payload);
            seeks.push(p.seeks);
            started = true;
        }
    }
    while let Some(p) = q.pop() {
        order.push(p.payload);
        seeks.push(p.seeks);
    }
    (order, seeks)
}

fn assert_parity(reqs: &[Arrival], ctx: &str) {
    for (sim_sched, rt_sched) in [
        (DiskScheduler::Fifo, SchedPolicy::Fifo),
        (DiskScheduler::Batched, SchedPolicy::Batched),
    ] {
        let sim = run_sim(sim_sched, reqs);
        let rt = run_rt(rt_sched, reqs);
        assert_eq!(
            sim.0, rt.0,
            "{ctx}: service order diverged under {rt_sched:?}"
        );
        assert_eq!(
            sim.1, rt.1,
            "{ctx}: seek charges diverged under {rt_sched:?}"
        );
    }
}

/// The paper's §5 example: two 3-block streams in different extents,
/// perfectly interleaved. Both implementations must produce the same
/// order, and the same 12-vs-4 seek totals the simulator test pins.
#[test]
fn paper_interleaving_example_matches() {
    let s1 = [arrival(1, 0), arrival(3, B), arrival(5, 2 * B)];
    let s2 = [
        arrival(2, EXTENT),
        arrival(4, EXTENT + B),
        arrival(6, EXTENT + 2 * B),
    ];
    let interleaved: Vec<Arrival> = s1
        .iter()
        .zip(s2.iter())
        .flat_map(|(&a, &b)| [a, b])
        .collect();
    assert_parity(&interleaved, "paper interleaving");

    let (_, fifo_seeks) = run_rt(SchedPolicy::Fifo, &interleaved);
    let (_, batched_seeks) = run_rt(SchedPolicy::Batched, &interleaved);
    assert_eq!(fifo_seeks.iter().sum::<u32>(), 12);
    assert_eq!(batched_seeks.iter().sum::<u32>(), 4);
}

/// C-LOOK wrap: after the first request moves the head high, lower
/// addresses must be served in the simulator's sweep-then-wrap order.
#[test]
fn clook_wrap_matches() {
    let reqs = [
        arrival(0, 5 * EXTENT),
        arrival(1, 3 * EXTENT),
        arrival(2, 7 * EXTENT),
        arrival(3, 6 * EXTENT),
    ];
    assert_parity(&reqs, "C-LOOK wrap");
    let (order, _) = run_rt(SchedPolicy::Batched, &reqs);
    assert_eq!(order, vec![0, 3, 2, 1], "sweep up from 5, wrap to 3");
}

/// Duplicate addresses must tie-break by arrival on both sides.
#[test]
fn duplicate_addresses_match() {
    let reqs = [
        arrival(1, 2 * EXTENT),
        arrival(2, EXTENT),
        arrival(3, EXTENT),
        arrival(4, 2 * EXTENT),
        arrival(5, EXTENT),
    ];
    assert_parity(&reqs, "duplicate addresses");
}

/// Randomized arrivals — including multi-extent requests and repeated
/// addresses — across many seeds: identical order and seeks, every time.
#[test]
fn random_sequences_match() {
    for seed in 0..40u64 {
        let mut rng = simcore::Rng::new(0xD15C ^ seed);
        let reqs: Vec<Arrival> = (0..60)
            .map(|i| {
                let extent = rng.next_below(10);
                let block = rng.next_below(8);
                let extents = 1 + rng.next_below(3) as u32;
                Arrival {
                    tag: i,
                    addr: extent * EXTENT + block * B,
                    bytes: extents as u64 * EXTENT.min(B * 8),
                    extents,
                }
            })
            .collect();
        assert_parity(&reqs, &format!("seed {seed}"));
    }
}

/// The runtime queue under batched scheduling never charges more seeks
/// than FIFO on the same arrivals (the simulator pins the same property).
#[test]
fn batched_never_does_worse_than_fifo() {
    for seed in 0..20u64 {
        let mut rng = simcore::Rng::new(0xBEE5 ^ seed);
        let reqs: Vec<Arrival> = (0..40)
            .map(|i| arrival(i, rng.next_below(8) * EXTENT + rng.next_below(8) * B))
            .collect();
        let fifo: u32 = run_rt(SchedPolicy::Fifo, &reqs).1.iter().sum();
        let batched: u32 = run_rt(SchedPolicy::Batched, &reqs).1.iter().sum();
        assert!(
            batched <= fifo,
            "seed {seed}: batched {batched} > fifo {fifo}"
        );
    }
}
