//! Behavioral tests for the asynchronous disk service: coalescing (the
//! acceptance-criteria assertion that concurrent same-block misses issue
//! exactly one physical read), readahead, backpressure, fault
//! determinism, write invalidation, and scheduling over a real FileStore.

use ccm_core::block::BLOCK_SIZE;
use ccm_core::{BlockId, FileId};
use ccm_disk::{
    BlockStore, Catalog, DiskConfig, DiskError, DiskFaults, DiskService, FileStore, MemStore,
    SchedPolicy, SyntheticStore,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A store whose reads block until the test opens the gate — the only
/// race-free way to hold a physical read in flight while concurrent
/// requests pile onto it.
struct GatedStore {
    inner: SyntheticStore,
    open: Mutex<bool>,
    cv: Condvar,
    reads_started: AtomicU64,
}

impl GatedStore {
    fn new(catalog: Catalog, seed: u64) -> GatedStore {
        GatedStore {
            inner: SyntheticStore::new(catalog, seed),
            open: Mutex::new(false),
            cv: Condvar::new(),
            reads_started: AtomicU64::new(0),
        }
    }

    fn open_gate(&self) {
        *self.open.lock().expect("gate") = true;
        self.cv.notify_all();
    }

    fn reads_started(&self) -> u64 {
        self.reads_started.load(Ordering::SeqCst)
    }
}

impl BlockStore for GatedStore {
    fn read_block(&self, block: BlockId) -> Vec<u8> {
        self.reads_started.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().expect("gate");
        while !*open {
            open = self.cv.wait(open).expect("gate");
        }
        drop(open);
        self.inner.read_block(block)
    }
}

fn catalog() -> Catalog {
    Catalog::new(vec![BLOCK_SIZE * 16, BLOCK_SIZE * 16, BLOCK_SIZE * 2 + 17])
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// THE coalescing assertion: eight concurrent misses on one block issue a
/// single physical read, everyone gets the same bytes, and the other
/// seven are accounted as coalesce hits.
#[test]
fn concurrent_same_block_misses_issue_one_physical_read() {
    let catalog = catalog();
    let store = Arc::new(GatedStore::new(catalog.clone(), 0xC0A1));
    let svc = Arc::new(DiskService::start(
        store.clone(),
        catalog.clone(),
        DiskConfig {
            readahead: 0,
            ..DiskConfig::default()
        },
    ));
    let block = BlockId::new(FileId(0), 5);
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let svc = svc.clone();
            std::thread::spawn(move || svc.read(block).expect("read through the gate"))
        })
        .collect();
    // All eight are in: one physical read started, seven attached to it.
    wait_until("one read in flight", || store.reads_started() == 1);
    wait_until("seven coalesce hits", || svc.stats().coalesce_hits == 7);
    store.open_gate();
    let want = SyntheticStore::new(catalog, 0xC0A1).read_block(block);
    for r in readers {
        assert_eq!(*r.join().expect("reader"), want, "shared bytes exact");
    }
    let stats = svc.stats();
    assert_eq!(
        stats.physical_demand_reads, 1,
        "exactly one physical read for eight concurrent misses"
    );
    assert_eq!(stats.coalesce_hits, 7);
    assert_eq!(stats.requests, 8);
}

/// With coalescing disabled the same workload pays eight physical reads.
#[test]
fn coalescing_off_issues_one_physical_read_per_request() {
    let catalog = catalog();
    let store = Arc::new(GatedStore::new(catalog.clone(), 0xC0A2));
    store.open_gate();
    let svc = Arc::new(DiskService::start(
        store.clone(),
        catalog,
        DiskConfig {
            coalesce: false,
            readahead: 0,
            ..DiskConfig::default()
        },
    ));
    let block = BlockId::new(FileId(0), 5);
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let svc = svc.clone();
            std::thread::spawn(move || svc.read(block).expect("read"))
        })
        .collect();
    for r in readers {
        r.join().expect("reader");
    }
    let stats = svc.stats();
    assert_eq!(stats.physical_demand_reads, 8);
    assert_eq!(stats.coalesce_hits, 0);
}

/// A sequential scan triggers readahead, and the prefetched bytes are
/// exact.
#[test]
fn sequential_scan_hits_readahead() {
    let catalog = catalog();
    let synth = SyntheticStore::new(catalog.clone(), 0x5E0u64);
    let svc = DiskService::start(
        Arc::new(synth.clone()),
        catalog.clone(),
        DiskConfig::default(),
    );
    let file = FileId(1);
    for i in 0..catalog.blocks_of(file) {
        let b = BlockId::new(file, i);
        assert_eq!(*svc.read(b).expect("read"), synth.read_block(b));
        // Give readahead a moment to land so later reads hit the cache.
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = svc.stats();
    assert!(stats.readahead_issued > 0, "stream was never detected");
    assert!(
        stats.readahead_hits > 0,
        "no read was served from the readahead cache: {stats:?}"
    );
    assert!(
        stats.physical_reads() <= catalog.blocks_of(file) as u64 + stats.readahead_issued,
        "readahead must not multiply physical reads: {stats:?}"
    );
}

/// The demand queue cap is real backpressure: submitter number cap+2
/// blocks until a slot frees, then completes.
#[test]
fn full_demand_queue_blocks_submitters() {
    let catalog = catalog();
    let store = Arc::new(GatedStore::new(catalog.clone(), 0xB9));
    let svc = Arc::new(DiskService::start(
        store.clone(),
        catalog,
        DiskConfig {
            queue_cap: 2,
            readahead: 0,
            coalesce: false,
            ..DiskConfig::default()
        },
    ));
    // First request: popped by the worker, held at the gate.
    let first = svc.read_async(BlockId::new(FileId(0), 0));
    wait_until("worker at the gate", || store.reads_started() == 1);
    // Two more fill the demand queue to its cap.
    let second = svc.read_async(BlockId::new(FileId(0), 1));
    let third = svc.read_async(BlockId::new(FileId(0), 2));
    // The fourth submitter must block in read_async.
    let (done_tx, done_rx) = simcore::chan::unbounded();
    let blocked = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            let r = svc.read(BlockId::new(FileId(0), 3));
            let _ = done_tx.send(());
            r
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        done_rx.try_recv().is_err(),
        "fourth submitter went through a full queue"
    );
    store.open_gate();
    for rx in [first, second, third] {
        rx.recv().expect("delivery").expect("read");
    }
    blocked
        .join()
        .expect("blocked submitter")
        .expect("read after backpressure released");
    assert_eq!(svc.stats().max_queue_depth, 2);
}

/// Fault decisions are a pure function of (seed, block): two services
/// with the same plan fail and serve exactly the same blocks, and a
/// different seed picks a different failure set.
#[test]
fn fault_injection_is_deterministic_per_seed() {
    let catalog = catalog();
    let faults = DiskFaults {
        error_prob: 0.3,
        ..DiskFaults::NONE
    };
    let pattern = |seed: u64| -> Vec<bool> {
        let svc = DiskService::start_observed(
            Arc::new(SyntheticStore::new(catalog.clone(), 1)),
            catalog.clone(),
            DiskConfig {
                readahead: 0,
                ..DiskConfig::default()
            },
            Some((seed, faults)),
            None,
            "0",
        );
        let mut out = Vec::new();
        for f in 0..catalog.num_files() {
            let file = FileId(f as u32);
            for i in 0..catalog.blocks_of(file) {
                out.push(svc.read(BlockId::new(file, i)).is_err());
            }
        }
        out
    };
    let a = pattern(7);
    assert_eq!(a, pattern(7), "same seed, same failures");
    assert!(a.iter().any(|&e| e), "error_prob 0.3 must hit something");
    assert!(!a.iter().all(|&e| e), "and must not hit everything");
    assert_ne!(a, pattern(8), "different seed, different failure set");
}

#[test]
fn injected_errors_surface_as_io_and_slow_blocks_delay() {
    let catalog = catalog();
    let all_bad = DiskService::start_observed(
        Arc::new(SyntheticStore::new(catalog.clone(), 1)),
        catalog.clone(),
        DiskConfig {
            readahead: 0,
            ..DiskConfig::default()
        },
        Some((
            3,
            DiskFaults {
                error_prob: 1.0,
                ..DiskFaults::NONE
            },
        )),
        None,
        "0",
    );
    let b = BlockId::new(FileId(0), 0);
    assert_eq!(all_bad.read(b), Err(DiskError::Io));
    assert_eq!(all_bad.stats().io_errors, 1);

    let all_slow = DiskService::start_observed(
        Arc::new(SyntheticStore::new(catalog.clone(), 1)),
        catalog,
        DiskConfig {
            readahead: 0,
            ..DiskConfig::default()
        },
        Some((
            3,
            DiskFaults {
                slow_prob: 1.0,
                slow: Duration::from_millis(25),
                ..DiskFaults::NONE
            },
        )),
        None,
        "0",
    );
    let t = Instant::now();
    all_slow.read(b).expect("slow but correct");
    assert!(t.elapsed() >= Duration::from_millis(25));
    assert_eq!(all_slow.stats().slow_faults, 1);
}

/// The MemStore write-behind interaction: a write to the store plus
/// `invalidate` guarantees the next service read returns the new bytes,
/// even when readahead prefetched the block before the write.
#[test]
fn write_then_invalidate_defeats_stale_readahead() {
    let catalog = catalog();
    let store = Arc::new(MemStore::new(catalog.clone(), 0xDB));
    let svc = DiskService::start(store.clone(), catalog.clone(), DiskConfig::default());
    let file = FileId(0);
    // Walk the start of the file so readahead has prefetched block 3.
    for i in 0..3 {
        svc.read(BlockId::new(file, i)).expect("scan");
    }
    wait_until("readahead issued", || svc.stats().readahead_issued > 0);
    std::thread::sleep(Duration::from_millis(5));
    // Write-through: mutate the store, then invalidate the service.
    let target = BlockId::new(file, 3);
    let fresh = vec![0x5A; BLOCK_SIZE as usize];
    assert!(store.write_block(target, &fresh));
    assert_eq!(store.dirty_blocks(), 1);
    svc.invalidate(target);
    assert_eq!(
        *svc.read(target).expect("post-write read"),
        fresh,
        "stale readahead bytes served after a write"
    );
}

#[test]
fn shutdown_fails_pending_and_later_reads() {
    let catalog = catalog();
    let store = Arc::new(GatedStore::new(catalog.clone(), 0xDEAD));
    let svc = DiskService::start(
        store.clone(),
        catalog,
        DiskConfig {
            readahead: 0,
            ..DiskConfig::default()
        },
    );
    let queued = svc.read_async(BlockId::new(FileId(0), 0));
    wait_until("worker at the gate", || store.reads_started() == 1);
    let waiting = svc.read_async(BlockId::new(FileId(0), 1));
    store.open_gate();
    svc.shutdown();
    // The in-flight read may have won the race; the queued one must not
    // hang either way.
    let _ = queued.recv().expect("delivery");
    let _ = waiting.recv().expect("delivery");
    assert_eq!(
        svc.read(BlockId::new(FileId(0), 2)),
        Err(DiskError::Shutdown)
    );
}

/// End to end over a real file: a batched service on a FileStore serves
/// exact bytes and pays fewer seeks than FIFO would on interleaved
/// streams.
#[test]
fn batched_service_over_file_store_serves_exact_bytes() {
    let catalog = catalog();
    let synth = SyntheticStore::new(catalog.clone(), 0xF5);
    let dir = std::env::temp_dir().join(format!("ccm-disk-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FileStore::create(&dir, &catalog, &synth).expect("create store");
    let svc = Arc::new(DiskService::start(
        Arc::new(fs),
        catalog.clone(),
        DiskConfig {
            scheduler: SchedPolicy::Batched,
            readahead: 0,
            ..DiskConfig::default()
        },
    ));
    // Two interleaved sequential streams over different files.
    let streams: Vec<_> = [FileId(0), FileId(1)]
        .into_iter()
        .map(|file| {
            let svc = svc.clone();
            let catalog = catalog.clone();
            let synth = synth.clone();
            std::thread::spawn(move || {
                for i in 0..catalog.blocks_of(file) {
                    let b = BlockId::new(file, i);
                    assert_eq!(*svc.read(b).expect("read"), synth.read_block(b));
                }
            })
        })
        .collect();
    for s in streams {
        s.join().expect("stream");
    }
    assert_eq!(svc.stats().physical_demand_reads, 32);
    drop(svc);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Synchronous writes persist through the service, invalidate cached read
/// state fetched before the write, and are refused by read-only stores.
#[test]
fn write_block_persists_and_fences_readahead() {
    let catalog = catalog();
    let store = Arc::new(MemStore::new(catalog.clone(), 0xBEEF));
    let svc = DiskService::start(
        store.clone(),
        catalog.clone(),
        DiskConfig {
            readahead: 4,
            ..DiskConfig::default()
        },
    );
    let file = FileId(0);
    // Walk a sequential stream so the readahead cache fills up.
    for i in 0..4 {
        svc.read(BlockId::new(file, i)).expect("read");
    }
    wait_until("readahead issued", || svc.stats().readahead_issued > 0);
    wait_until("readahead completed", || {
        svc.stats().physical_readahead_reads >= svc.stats().readahead_issued
    });
    // Overwrite a block that may be parked in the readahead cache.
    let target = BlockId::new(file, 5);
    let fresh = vec![0xAB; BLOCK_SIZE as usize];
    assert!(svc.write_block(target, &fresh));
    assert_eq!(svc.stats().writes, 1);
    // The next read must observe the write, not pre-write readahead bytes.
    assert_eq!(*svc.read(target).expect("read after write"), fresh);
    assert_eq!(store.read_block(target), fresh);
}

#[test]
fn write_block_to_read_only_store_is_refused() {
    let catalog = catalog();
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));
    let svc = DiskService::start(store, catalog, DiskConfig::default());
    assert!(!svc.write_block(BlockId::new(FileId(0), 0), &[1, 2, 3]));
    assert_eq!(svc.stats().writes, 0);
}
