//! The catalog → byte-address mapping shared by the scheduler and the
//! file-backed store.
//!
//! Every file gets a private extent-aligned region: file `f` starts at the
//! first 64 KB boundary past file `f-1`'s last block slot, and block `i` of
//! a file lives at `base(f) + i · BLOCK_SIZE` (each block owns a full 8 KB
//! slot even when the tail is short). Two things fall out of this layout:
//!
//! * sequential reads of one file are *head-contiguous* at the address
//!   level — including across the file's internal extent boundaries —
//!   which is exactly what [`crate::SchedQueue`]'s batched policy rewards;
//! * interleaved streams over different files are never contiguous, which
//!   is the paper's §5 pathology the scheduler exists to fix.

use crate::store::Catalog;
use ccm_core::block::{BLOCK_SIZE, EXTENT_SIZE};
use ccm_core::{BlockId, FileId};
use std::sync::Arc;

/// Byte addresses for every block in a catalog.
#[derive(Debug, Clone)]
pub struct DiskLayout {
    bases: Arc<[u64]>,
    total: u64,
}

impl DiskLayout {
    /// Lay out `catalog`'s files in id order, each in its own
    /// extent-aligned region.
    pub fn new(catalog: &Catalog) -> DiskLayout {
        let mut bases = Vec::with_capacity(catalog.num_files());
        let mut off = 0u64;
        for f in 0..catalog.num_files() {
            bases.push(off);
            let slots = catalog.blocks_of(FileId(f as u32)) as u64 * BLOCK_SIZE;
            off += slots.div_ceil(EXTENT_SIZE) * EXTENT_SIZE;
        }
        DiskLayout {
            bases: bases.into(),
            total: off,
        }
    }

    /// Byte address of a file's region.
    ///
    /// # Panics
    /// Panics if the file is out of range.
    pub fn base_of(&self, file: FileId) -> u64 {
        self.bases[file.0 as usize]
    }

    /// Byte address of one block's slot.
    pub fn addr_of(&self, block: BlockId) -> u64 {
        self.base_of(block.file) + block.index as u64 * BLOCK_SIZE
    }

    /// Total bytes the layout spans (the size of a backing data file).
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_are_extent_aligned_and_disjoint() {
        // 1 block, 8 blocks (exactly one extent), 9 blocks, empty.
        let c = Catalog::new(vec![100, BLOCK_SIZE * 8, BLOCK_SIZE * 8 + 1, 0]);
        let l = DiskLayout::new(&c);
        assert_eq!(l.base_of(FileId(0)), 0);
        assert_eq!(l.base_of(FileId(1)), EXTENT_SIZE);
        assert_eq!(l.base_of(FileId(2)), 2 * EXTENT_SIZE);
        assert_eq!(l.base_of(FileId(3)), 4 * EXTENT_SIZE);
        // The empty file still owns one block slot, extent-rounded.
        assert_eq!(l.total_bytes(), 5 * EXTENT_SIZE);
    }

    #[test]
    fn sequential_blocks_are_address_contiguous() {
        let c = Catalog::new(vec![BLOCK_SIZE * 20]);
        let l = DiskLayout::new(&c);
        for i in 0..19u32 {
            let a = l.addr_of(BlockId::new(FileId(0), i));
            let b = l.addr_of(BlockId::new(FileId(0), i + 1));
            assert_eq!(
                b,
                a + BLOCK_SIZE,
                "block {i} → {} must be contiguous",
                i + 1
            );
        }
    }
}
