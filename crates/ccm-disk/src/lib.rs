//! Asynchronous disk I/O for the cooperative caching runtime.
//!
//! The simulator's headline scheduling result (§5 of the paper: FIFO disk
//! service collapses when sequential streams interleave; batching
//! head-contiguous requests restores it) lives in `ccm_cluster::Disk`. The
//! threaded runtime, by contrast, used to serve every miss with a
//! synchronous inline `read_block` call — no queue, no scheduling, no real
//! file I/O. This crate is the missing layer:
//!
//! * [`DiskService`] — a per-node asynchronous disk service: bounded
//!   request queue with backpressure, a small worker pool, a pluggable
//!   scheduler ([`SchedPolicy::Fifo`] vs [`SchedPolicy::Batched`], the
//!   latter semantically matched to `ccm_cluster::DiskScheduler::Batched`),
//!   in-flight miss coalescing (concurrent requests for one block issue a
//!   single physical read and share the `Arc<Vec<u8>>`), and sequential
//!   readahead for detected streams.
//! * [`FileStore`] — a real file-backed [`BlockStore`]: blocks laid out in
//!   per-file extent-aligned regions of an actual data file, with correct
//!   partial tail blocks, reopenable from the same data dir.
//! * [`DiskLayout`] — the catalog → byte-address mapping both of them use,
//!   which is also what makes "head-contiguous" meaningful for the
//!   scheduler.
//! * [`DiskFaults`] — seeded slow-disk and I/O-error injection, keyed per
//!   block so same-seed replays stay bit-identical.
//!
//! The storage traits ([`BlockStore`], [`Catalog`], [`SyntheticStore`],
//! [`MemStore`]) moved here from `ccm-rt`, which now routes its miss and
//! degraded-fallback paths through [`DiskService`] and re-exports these
//! types unchanged.

#![warn(missing_docs)]

pub mod file_store;
pub mod layout;
pub mod sched;
pub mod service;
pub mod store;

pub use file_store::FileStore;
pub use layout::DiskLayout;
pub use sched::{SchedPolicy, SchedQueue};
pub use service::{DiskConfig, DiskError, DiskFaults, DiskMechanics, DiskService, DiskStats};
pub use store::{read_file_direct, BlockStore, Catalog, MemStore, SyntheticStore};
