//! The backing store — the "home disk" of the runtime.
//!
//! The middleware is storage-agnostic: anything implementing [`BlockStore`]
//! can back it (a real file system, an object store, …). For tests, examples
//! and benchmarks, [`SyntheticStore`] generates deterministic per-block
//! content so end-to-end integrity can be verified byte-for-byte: whatever
//! path a block takes through the cluster (local hit, peer fetch, forwarded
//! master, store fallback), the bytes delivered must equal the bytes the
//! store would produce. For real file I/O, see [`crate::FileStore`].

use ccm_core::block::{block_bytes, blocks_of_file};
use ccm_core::{BlockId, FileId};
use std::sync::Arc;

/// The file population served by a middleware instance.
#[derive(Debug, Clone)]
pub struct Catalog {
    sizes: Arc<[u64]>,
}

impl Catalog {
    /// A catalog over files with the given sizes (file id = index).
    pub fn new(sizes: impl Into<Arc<[u64]>>) -> Catalog {
        Catalog {
            sizes: sizes.into(),
        }
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.sizes.len()
    }

    /// Size of `file`, in bytes.
    ///
    /// # Panics
    /// Panics if the file is out of range.
    pub fn size_of(&self, file: FileId) -> u64 {
        self.sizes[file.0 as usize]
    }

    /// Number of blocks of `file`.
    pub fn blocks_of(&self, file: FileId) -> u32 {
        blocks_of_file(self.size_of(file))
    }

    /// Bytes occupied by one block of `file`.
    pub fn block_bytes(&self, block: BlockId) -> u64 {
        block_bytes(self.size_of(block.file), block.index)
    }

    /// The per-file sizes, in file-id order.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }
}

/// Authoritative block content — the disk under the cache.
pub trait BlockStore: Send + Sync + 'static {
    /// Read one block's bytes. Between writes (if any), repeated reads of
    /// the same block must return identical bytes.
    fn read_block(&self, block: BlockId) -> Vec<u8>;

    /// Durably overwrite one block (the §6 writes extension uses
    /// write-through). Returns false if the store is read-only — the
    /// default, matching the paper's read-only request streams.
    fn write_block(&self, _block: BlockId, _data: &[u8]) -> bool {
        false
    }
}

/// Deterministic synthetic content: block bytes derived from the block id.
#[derive(Debug, Clone)]
pub struct SyntheticStore {
    catalog: Catalog,
    seed: u64,
}

impl SyntheticStore {
    /// A store over `catalog` whose content is derived from `seed`.
    pub fn new(catalog: Catalog, seed: u64) -> SyntheticStore {
        SyntheticStore { catalog, seed }
    }

    /// The catalog this store serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl BlockStore for SyntheticStore {
    fn read_block(&self, block: BlockId) -> Vec<u8> {
        let len = self.catalog.block_bytes(block) as usize;
        let mut state = self
            .seed
            .wrapping_add((block.file.0 as u64) << 32 | block.index as u64);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let word = simcore::rng::splitmix64(&mut state);
            for b in word.to_le_bytes() {
                if out.len() == len {
                    break;
                }
                out.push(b);
            }
        }
        out
    }
}

/// A writable store: deterministic synthetic content overlaid with every
/// write performed so far. Backs the §6 writes extension.
pub struct MemStore {
    base: SyntheticStore,
    overlay: simcore::sync::RwLock<simcore::FxHashMap<BlockId, Vec<u8>>>,
}

impl MemStore {
    /// A writable store over `catalog`, initially containing the same
    /// synthetic content as [`SyntheticStore`] with this `seed`.
    pub fn new(catalog: Catalog, seed: u64) -> MemStore {
        MemStore {
            base: SyntheticStore::new(catalog, seed),
            overlay: simcore::sync::RwLock::new(simcore::FxHashMap::default()),
        }
    }

    /// Blocks overwritten so far.
    pub fn dirty_blocks(&self) -> usize {
        self.overlay.read().len()
    }
}

impl BlockStore for MemStore {
    fn read_block(&self, block: BlockId) -> Vec<u8> {
        if let Some(d) = self.overlay.read().get(&block) {
            return d.clone();
        }
        self.base.read_block(block)
    }

    fn write_block(&self, block: BlockId, data: &[u8]) -> bool {
        self.overlay.write().insert(block, data.to_vec());
        true
    }
}

/// Assemble a whole file's bytes straight from a store (reference path for
/// integrity checks).
pub fn read_file_direct(store: &dyn BlockStore, catalog: &Catalog, file: FileId) -> Vec<u8> {
    let mut out = Vec::with_capacity(catalog.size_of(file) as usize);
    for b in 0..catalog.blocks_of(file) {
        out.extend_from_slice(&store.read_block(BlockId::new(file, b)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm_core::block::BLOCK_SIZE;

    fn catalog() -> Catalog {
        Catalog::new(vec![100, BLOCK_SIZE, BLOCK_SIZE * 2 + 17, 0])
    }

    #[test]
    fn catalog_math() {
        let c = catalog();
        assert_eq!(c.num_files(), 4);
        assert_eq!(c.size_of(FileId(0)), 100);
        assert_eq!(c.blocks_of(FileId(0)), 1);
        assert_eq!(c.blocks_of(FileId(2)), 3);
        assert_eq!(c.block_bytes(BlockId::new(FileId(2), 2)), 17);
        assert_eq!(c.blocks_of(FileId(3)), 1, "empty file still has a frame");
    }

    #[test]
    fn synthetic_content_is_deterministic() {
        let s1 = SyntheticStore::new(catalog(), 7);
        let s2 = SyntheticStore::new(catalog(), 7);
        let b = BlockId::new(FileId(2), 1);
        assert_eq!(s1.read_block(b), s2.read_block(b));
        assert_eq!(s1.read_block(b).len(), BLOCK_SIZE as usize);
    }

    #[test]
    fn different_blocks_differ() {
        let s = SyntheticStore::new(catalog(), 7);
        let a = s.read_block(BlockId::new(FileId(2), 0));
        let b = s.read_block(BlockId::new(FileId(2), 1));
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticStore::new(catalog(), 1).read_block(BlockId::new(FileId(1), 0));
        let b = SyntheticStore::new(catalog(), 2).read_block(BlockId::new(FileId(1), 0));
        assert_ne!(a, b);
    }

    #[test]
    fn partial_tail_block_is_short() {
        let s = SyntheticStore::new(catalog(), 7);
        assert_eq!(s.read_block(BlockId::new(FileId(0), 0)).len(), 100);
    }

    #[test]
    fn synthetic_store_is_read_only() {
        let s = SyntheticStore::new(catalog(), 7);
        assert!(!s.write_block(BlockId::new(FileId(0), 0), &[1, 2, 3]));
    }

    #[test]
    fn mem_store_overlays_writes() {
        let m = MemStore::new(catalog(), 7);
        let b = BlockId::new(FileId(1), 0);
        let before = m.read_block(b);
        assert!(m.write_block(b, &[9; 16]));
        assert_eq!(m.read_block(b), vec![9; 16]);
        assert_ne!(m.read_block(b), before);
        assert_eq!(m.dirty_blocks(), 1);
        // Untouched blocks still come from the synthetic base.
        let other = BlockId::new(FileId(2), 0);
        assert_eq!(
            m.read_block(other),
            SyntheticStore::new(catalog(), 7).read_block(other)
        );
    }

    #[test]
    fn read_file_direct_concatenates_blocks() {
        let c = catalog();
        let s = SyntheticStore::new(c.clone(), 7);
        let whole = read_file_direct(&s, &c, FileId(2));
        assert_eq!(whole.len(), (BLOCK_SIZE * 2 + 17) as usize);
        let first = s.read_block(BlockId::new(FileId(2), 0));
        assert_eq!(&whole[..first.len()], &first[..]);
    }
}
