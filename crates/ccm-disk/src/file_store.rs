//! A real file-backed [`BlockStore`]: the catalog's blocks live at
//! [`DiskLayout`] addresses inside one data file under a data directory.
//!
//! Layout on disk:
//!
//! * `manifest.txt` — format tag plus the catalog's per-file sizes, so
//!   [`FileStore::open`] can rebuild the exact same [`Catalog`] and
//!   [`DiskLayout`] after a restart;
//! * `blocks.dat` — every block at `layout.addr_of(block)`; each block
//!   owns a full 8 KB slot but only `catalog.block_bytes(block)` bytes of
//!   it are meaningful (partial tails stay partial on the wire and in
//!   memory).
//!
//! Reads use positional I/O (`read_exact_at`), so concurrent readers need
//! no locking; writes go straight through (`write_all_at`), making the
//! store a valid target for the §6 write-through extension.

use crate::layout::DiskLayout;
use crate::store::{BlockStore, Catalog};
use ccm_core::BlockId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

const MANIFEST: &str = "manifest.txt";
const DATA: &str = "blocks.dat";
const FORMAT_TAG: &str = "ccm-filestore v1";

/// A block store over one real data file. See the module docs for the
/// on-disk layout.
pub struct FileStore {
    data: File,
    catalog: Catalog,
    layout: DiskLayout,
}

impl FileStore {
    /// Create (or overwrite) a store under `dir`, populated with every
    /// block of `init`'s content for `catalog`.
    pub fn create(dir: &Path, catalog: &Catalog, init: &dyn BlockStore) -> io::Result<FileStore> {
        std::fs::create_dir_all(dir)?;
        let layout = DiskLayout::new(catalog);
        let mut manifest = File::create(dir.join(MANIFEST))?;
        let mut text = String::from(FORMAT_TAG);
        text.push('\n');
        for size in catalog.sizes() {
            text.push_str(&size.to_string());
            text.push('\n');
        }
        manifest.write_all(text.as_bytes())?;
        manifest.sync_all()?;

        let data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(DATA))?;
        data.set_len(layout.total_bytes())?;
        for f in 0..catalog.num_files() {
            let file = ccm_core::FileId(f as u32);
            for i in 0..catalog.blocks_of(file) {
                let block = BlockId::new(file, i);
                data.write_all_at(&init.read_block(block), layout.addr_of(block))?;
            }
        }
        data.sync_all()?;
        Ok(FileStore {
            data,
            catalog: catalog.clone(),
            layout,
        })
    }

    /// Reopen a store previously [`FileStore::create`]d under `dir`,
    /// rebuilding the catalog from the manifest.
    pub fn open(dir: &Path) -> io::Result<FileStore> {
        let mut text = String::new();
        File::open(dir.join(MANIFEST))?.read_to_string(&mut text)?;
        let mut lines = text.lines();
        if lines.next() != Some(FORMAT_TAG) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a ccm-filestore data dir (bad manifest tag)",
            ));
        }
        let sizes: Vec<u64> = lines
            .map(|l| {
                l.trim()
                    .parse::<u64>()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad size in manifest"))
            })
            .collect::<io::Result<_>>()?;
        let catalog = Catalog::new(sizes);
        let layout = DiskLayout::new(&catalog);
        let data = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(DATA))?;
        if data.metadata()?.len() < layout.total_bytes() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "data file shorter than the manifest's layout",
            ));
        }
        Ok(FileStore {
            data,
            catalog,
            layout,
        })
    }

    /// The catalog this store serves (reconstructed from the manifest when
    /// opened).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

impl BlockStore for FileStore {
    fn read_block(&self, block: BlockId) -> Vec<u8> {
        let len = self.catalog.block_bytes(block) as usize;
        let mut buf = vec![0u8; len];
        self.data
            .read_exact_at(&mut buf, self.layout.addr_of(block))
            .expect("positional read inside the laid-out data file");
        buf
    }

    fn write_block(&self, block: BlockId, data: &[u8]) -> bool {
        if data.len() as u64 != self.catalog.block_bytes(block) {
            return false;
        }
        self.data
            .write_all_at(data, self.layout.addr_of(block))
            .is_ok()
    }
}
