//! The asynchronous disk service: a bounded scheduled queue, a small
//! worker pool, miss coalescing, and sequential readahead, per node.
//!
//! ## Request life cycle
//!
//! [`DiskService::read_async`] first consults the readahead cache, then —
//! with coalescing on — attaches to any in-flight request for the same
//! block (one physical read, everyone shares the `Arc<Vec<u8>>`). Otherwise
//! it blocks while `queue_cap` demand requests are already pending (the
//! backpressure seam: callers feel a full disk queue as latency, exactly
//! like a real device), then enqueues into a [`SchedQueue`] ordered by the
//! configured [`SchedPolicy`]. Workers pop in scheduler order, perform the
//! physical read outside the lock, and deliver to every waiter.
//!
//! ## Readahead
//!
//! A demand read of block `i` right after a demand read of block `i-1` of
//! the same file marks a sequential stream; the service then enqueues up to
//! `readahead` internal requests for the following blocks. Internal
//! requests never block on backpressure (they are shed when the queue is
//! full), never fail a caller (injected errors on them are counted and
//! dropped), and park their bytes in a small single-shot cache that
//! [`DiskService::invalidate`] clears on writes.
//!
//! ## Faults
//!
//! [`DiskFaults`] injects seeded slow-disk latency and I/O errors. The
//! decision is a pure hash of `(seed, block)` — a marked block is *always*
//! slow or bad under that seed — so chaos-harness replays stay
//! bit-identical without any per-attempt RNG state. Demand-read errors
//! surface as [`DiskError::Io`]; the runtime degrades to its synchronous
//! store fallback, the same escape hatch it uses for data-plane races.

use crate::layout::DiskLayout;
use crate::sched::{SchedPolicy, SchedQueue};
use crate::store::{BlockStore, Catalog};
use ccm_core::block::BLOCK_SIZE;
use ccm_core::BlockId;
use ccm_obs::{Counter, Gauge, Histogram, Registry, Stopwatch};
use simcore::chan::{self, Receiver, Sender};
use simcore::FxHashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Result of one block read through the service.
pub type DiskRead = Result<Arc<Vec<u8>>, DiskError>;

/// Why a disk read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// Injected I/O error (see [`DiskFaults::error_prob`]).
    Io,
    /// The service shut down before the read completed.
    Shutdown,
}

/// Seeded disk fault injection, embedded in the runtime's `FaultPlan`.
///
/// Decisions are keyed on `(seed, block)`, not per attempt: the marked
/// subset of blocks is fixed for a seed, which keeps same-seed torture
/// replays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaults {
    /// Probability a block's physical reads are slow.
    pub slow_prob: f64,
    /// Added latency for slow blocks.
    pub slow: Duration,
    /// Probability a block's physical reads fail with [`DiskError::Io`].
    pub error_prob: f64,
}

impl DiskFaults {
    /// No disk faults.
    pub const NONE: DiskFaults = DiskFaults {
        slow_prob: 0.0,
        slow: Duration::ZERO,
        error_prob: 0.0,
    };

    /// True if this plan can never fire.
    pub fn is_none(&self) -> bool {
        self.slow_prob <= 0.0 && self.error_prob <= 0.0
    }
}

impl Default for DiskFaults {
    fn default() -> DiskFaults {
        DiskFaults::NONE
    }
}

/// Emulated device physics for benchmarks: without them a synthetic store
/// serves every block at memory speed and scheduling discipline would be
/// invisible in wall-clock terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskMechanics {
    /// Cost per seek charged by the scheduler (a non-contiguous
    /// single-block request pays two: positioning + metadata).
    pub seek: Duration,
    /// Base service time per physical read.
    pub read_latency: Duration,
}

/// Disk service configuration.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Queue discipline (default: the paper's batched/C-LOOK policy).
    pub scheduler: SchedPolicy,
    /// Worker threads (spindles). Default 1 — one head, which is what
    /// makes scheduling order meaningful.
    pub workers: usize,
    /// Max pending *demand* requests before submitters block (backpressure).
    pub queue_cap: usize,
    /// Share one physical read among concurrent same-block requests.
    pub coalesce: bool,
    /// Blocks to read ahead once a sequential stream is detected (0 = off).
    pub readahead: u32,
    /// Capacity of the single-shot readahead cache, in blocks.
    pub readahead_cache: usize,
    /// Emulated seek/service physics (default: none — real store latency
    /// only).
    pub mechanics: Option<DiskMechanics>,
}

impl Default for DiskConfig {
    fn default() -> DiskConfig {
        DiskConfig {
            scheduler: SchedPolicy::Batched,
            workers: 1,
            queue_cap: 128,
            coalesce: true,
            readahead: 2,
            readahead_cache: 64,
            mechanics: None,
        }
    }
}

/// Counter snapshot for tests and reports. Counters stay live under
/// `obs-off`, so assertions on coalescing/readahead hold in every build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Demand read requests submitted.
    pub requests: u64,
    /// Physical reads performed for demand requests.
    pub physical_demand_reads: u64,
    /// Physical reads performed for readahead.
    pub physical_readahead_reads: u64,
    /// Requests satisfied by attaching to an in-flight read.
    pub coalesce_hits: u64,
    /// Requests satisfied from the readahead cache.
    pub readahead_hits: u64,
    /// Readahead requests enqueued.
    pub readahead_issued: u64,
    /// Synchronous block writes persisted to the backing store.
    pub writes: u64,
    /// Injected I/O errors (demand and readahead).
    pub io_errors: u64,
    /// Injected slow-block delays served.
    pub slow_faults: u64,
    /// Seeks charged by the scheduler.
    pub seeks: u64,
    /// Largest pending-queue depth observed.
    pub max_queue_depth: u64,
}

impl DiskStats {
    /// All physical reads, demand plus readahead.
    pub fn physical_reads(&self) -> u64 {
        self.physical_demand_reads + self.physical_readahead_reads
    }
}

/// Metric handles — registry-backed when a [`Registry`] is attached, else
/// standalone (same types, nothing scrapes them).
struct Metrics {
    requests: Counter,
    physical_demand: Counter,
    physical_ra: Counter,
    coalesce_hits: Counter,
    readahead_hits: Counter,
    readahead_issued: Counter,
    writes: Counter,
    io_errors: Counter,
    slow_faults: Counter,
    seeks: Counter,
    queue_depth: Gauge,
    inflight: Gauge,
    batch_len: Histogram,
    latency_demand: Histogram,
    latency_ra: Histogram,
}

impl Metrics {
    fn standalone() -> Metrics {
        Metrics {
            requests: Counter::new(),
            physical_demand: Counter::new(),
            physical_ra: Counter::new(),
            coalesce_hits: Counter::new(),
            readahead_hits: Counter::new(),
            readahead_issued: Counter::new(),
            writes: Counter::new(),
            io_errors: Counter::new(),
            slow_faults: Counter::new(),
            seeks: Counter::new(),
            queue_depth: Gauge::new(),
            inflight: Gauge::new(),
            batch_len: Histogram::new(),
            latency_demand: Histogram::new(),
            latency_ra: Histogram::new(),
        }
    }

    fn registered(r: &Registry, node: &str) -> Metrics {
        let l = [("node", node)];
        Metrics {
            requests: r.counter(
                "ccm_disk_requests_total",
                "Demand block reads submitted to the disk service",
                &l,
            ),
            physical_demand: r.counter(
                "ccm_disk_reads_total",
                "Physical reads issued to the backing store, by kind",
                &[("node", node), ("kind", "demand")],
            ),
            physical_ra: r.counter(
                "ccm_disk_reads_total",
                "Physical reads issued to the backing store, by kind",
                &[("node", node), ("kind", "readahead")],
            ),
            coalesce_hits: r.counter(
                "ccm_disk_coalesce_hits_total",
                "Requests that attached to an in-flight read of the same block",
                &l,
            ),
            readahead_hits: r.counter(
                "ccm_disk_readahead_hits_total",
                "Requests satisfied from the readahead cache",
                &l,
            ),
            readahead_issued: r.counter(
                "ccm_disk_readahead_issued_total",
                "Readahead requests enqueued for detected sequential streams",
                &l,
            ),
            writes: r.counter(
                "ccm_disk_writes_total",
                "Synchronous block writes persisted to the backing store",
                &l,
            ),
            io_errors: r.counter(
                "ccm_disk_io_errors_total",
                "Injected I/O errors served by the fault plan",
                &l,
            ),
            slow_faults: r.counter(
                "ccm_disk_slow_faults_total",
                "Injected slow-block delays served by the fault plan",
                &l,
            ),
            seeks: r.counter(
                "ccm_disk_seeks_total",
                "Seeks charged by the scheduler (positioning + metadata)",
                &l,
            ),
            queue_depth: r.gauge(
                "ccm_disk_queue_depth",
                "Requests pending in the disk scheduler queue",
                &l,
            ),
            inflight: r.gauge(
                "ccm_disk_inflight",
                "Physical reads currently in progress",
                &l,
            ),
            batch_len: r.histogram(
                "ccm_disk_batch_len",
                "Length of head-contiguous runs served back to back",
                &l,
            ),
            latency_demand: r.histogram(
                "ccm_disk_read_latency_ns",
                "Physical read service time by request kind",
                &[("node", node), ("kind", "demand")],
            ),
            latency_ra: r.histogram(
                "ccm_disk_read_latency_ns",
                "Physical read service time by request kind",
                &[("node", node), ("kind", "readahead")],
            ),
        }
    }
}

/// Bookkeeping for one enqueued-or-inflight request.
struct PendingEntry {
    waiters: Vec<Sender<DiskRead>>,
    /// Readahead-originated (no caller is owed a reply).
    internal: bool,
    /// Counted against the demand backpressure cap at enqueue time.
    counted_demand: bool,
    /// Write generation at creation; stale results are never cached.
    gen: u64,
}

struct Core {
    queue: SchedQueue<BlockId>,
    pending: FxHashMap<u64, PendingEntry>,
    by_block: FxHashMap<BlockId, u64>,
    demand_queued: usize,
    ra_cache: FxHashMap<BlockId, Arc<Vec<u8>>>,
    ra_order: VecDeque<BlockId>,
    /// file → index of its last demand read, for stream detection.
    last_block: FxHashMap<u32, u32>,
    write_gen: u64,
    batch_run: u64,
    stop: bool,
}

struct Inner {
    core: Mutex<Core>,
    /// Signalled when the queue gains work or the service stops.
    work: Condvar,
    /// Signalled when a demand slot frees up.
    space: Condvar,
    cfg: DiskConfig,
    store: Arc<dyn BlockStore>,
    catalog: Catalog,
    layout: DiskLayout,
    faults: Option<(u64, DiskFaults)>,
    m: Metrics,
}

/// A per-node asynchronous disk service. See the module docs for the
/// request life cycle; construction via [`DiskService::start`] or
/// [`DiskService::start_observed`].
pub struct DiskService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

const SLOW_SALT: u64 = 0x510D_15C0;
const ERR_SALT: u64 = 0xE440_D15C;

/// Per-block fault roll in `[0, 1)`: a pure function of the key, so every
/// attempt on a block under one seed decides identically.
fn roll(seed: u64, salt: u64, block: BlockId) -> f64 {
    let key =
        ((block.file.0 as u64) << 32 | block.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut s = seed ^ salt ^ key;
    (simcore::rng::splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64
}

impl DiskService {
    /// Start a service with no fault injection and unscraped metrics.
    pub fn start(store: Arc<dyn BlockStore>, catalog: Catalog, cfg: DiskConfig) -> DiskService {
        DiskService::start_observed(store, catalog, cfg, None, None, "0")
    }

    /// Start a service with optional seeded faults and, when `registry` is
    /// given, metrics registered under `ccm_disk_*` with `node` as the
    /// node label.
    pub fn start_observed(
        store: Arc<dyn BlockStore>,
        catalog: Catalog,
        cfg: DiskConfig,
        faults: Option<(u64, DiskFaults)>,
        registry: Option<&Registry>,
        node: &str,
    ) -> DiskService {
        let layout = DiskLayout::new(&catalog);
        let m = match registry {
            Some(r) => Metrics::registered(r, node),
            None => Metrics::standalone(),
        };
        let inner = Arc::new(Inner {
            core: Mutex::new(Core {
                queue: SchedQueue::new(cfg.scheduler),
                pending: FxHashMap::default(),
                by_block: FxHashMap::default(),
                demand_queued: 0,
                ra_cache: FxHashMap::default(),
                ra_order: VecDeque::new(),
                last_block: FxHashMap::default(),
                write_gen: 0,
                batch_run: 0,
                stop: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            cfg: DiskConfig {
                workers: cfg.workers.max(1),
                queue_cap: cfg.queue_cap.max(1),
                ..cfg
            },
            store,
            catalog,
            layout,
            faults: faults.filter(|(_, f)| !f.is_none()),
            m,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("ccm-disk-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn disk worker")
            })
            .collect();
        DiskService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Read one block, blocking until the service delivers it.
    pub fn read(&self, block: BlockId) -> DiskRead {
        match self.read_async(block).recv() {
            Ok(res) => res,
            Err(_) => Err(DiskError::Shutdown),
        }
    }

    /// Submit one block read; the receiver yields the result when a worker
    /// completes it. Blocks only while the demand queue is at capacity.
    pub fn read_async(&self, block: BlockId) -> Receiver<DiskRead> {
        let inner = &*self.inner;
        let (tx, rx) = chan::unbounded();
        let mut core = inner.core.lock().expect("disk core poisoned");
        inner.m.requests.inc();
        if core.stop {
            let _ = tx.send(Err(DiskError::Shutdown));
            return rx;
        }
        // 1. Readahead cache: single-shot — the runtime caches the block
        // itself after this, so holding a second copy here is waste.
        if let Some(data) = core.ra_cache.remove(&block) {
            inner.m.readahead_hits.inc();
            note_stream_and_readahead(&mut core, inner, block);
            let _ = tx.send(Ok(data));
            return rx;
        }
        // 2. Coalesce onto an in-flight or queued read of the same block.
        if inner.cfg.coalesce {
            if let Some(&seq) = core.by_block.get(&block) {
                if let Some(p) = core.pending.get_mut(&seq) {
                    inner.m.coalesce_hits.inc();
                    p.internal = false;
                    p.waiters.push(tx);
                    return rx;
                }
            }
        }
        // 3. Backpressure, then enqueue a demand request.
        while core.demand_queued >= inner.cfg.queue_cap && !core.stop {
            core = inner.space.wait(core).expect("disk core poisoned");
        }
        if core.stop {
            let _ = tx.send(Err(DiskError::Shutdown));
            return rx;
        }
        let seq = core
            .queue
            .push(inner.layout.addr_of(block), BLOCK_SIZE, 1, block);
        core.demand_queued += 1;
        let gen = core.write_gen;
        core.pending.insert(
            seq,
            PendingEntry {
                waiters: vec![tx],
                internal: false,
                counted_demand: true,
                gen,
            },
        );
        core.by_block.insert(block, seq);
        inner.m.queue_depth.set(core.queue.len() as i64);
        note_stream_and_readahead(&mut core, inner, block);
        inner.work.notify_one();
        rx
    }

    /// Drop any cached or future-cacheable copy of `block` (called on
    /// writes: readahead bytes fetched before the write must never be
    /// served after it).
    pub fn invalidate(&self, block: BlockId) {
        let mut core = self.inner.core.lock().expect("disk core poisoned");
        core.write_gen += 1;
        core.ra_cache.remove(&block);
        // Detach any in-flight read of this block: waiters that raced the
        // write still get the old bytes (the §3 staleness contract), but
        // no *new* request may coalesce onto a pre-write read, and the
        // generation bump keeps its result out of the readahead cache.
        core.by_block.remove(&block);
    }

    /// Durably persist one block, synchronously. The write path bypasses the
    /// scheduler queue — a writer has already paid the coherence protocol's
    /// latency and must know durability before acking — and is never subject
    /// to fault injection (the chaos plans model read-side device trouble;
    /// an acked write-through write is the durability anchor the torture
    /// oracles verify against). Invalidation of stale cached read state
    /// happens under the same lock acquisition that bumps the write
    /// generation, so no pre-write read result can be cached after this
    /// returns. Returns false (with no state change charged) if the backing
    /// store is read-only.
    pub fn write_block(&self, block: BlockId, data: &[u8]) -> bool {
        {
            let mut core = self.inner.core.lock().expect("disk core poisoned");
            if core.stop {
                return false;
            }
            core.write_gen += 1;
            core.ra_cache.remove(&block);
            core.by_block.remove(&block);
        }
        // The store write runs outside the lock: readers racing it get
        // before-or-after bytes (the §3 staleness contract), and the
        // generation bump above already fenced the readahead cache.
        let ok = self.inner.store.write_block(block, data);
        if ok {
            self.inner.m.writes.inc();
        }
        ok
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> DiskStats {
        let m = &self.inner.m;
        let max_queue_depth = {
            let core = self.inner.core.lock().expect("disk core poisoned");
            core.queue.max_depth() as u64
        };
        DiskStats {
            requests: m.requests.get(),
            physical_demand_reads: m.physical_demand.get(),
            physical_readahead_reads: m.physical_ra.get(),
            coalesce_hits: m.coalesce_hits.get(),
            readahead_hits: m.readahead_hits.get(),
            readahead_issued: m.readahead_issued.get(),
            writes: m.writes.get(),
            io_errors: m.io_errors.get(),
            slow_faults: m.slow_faults.get(),
            seeks: m.seeks.get(),
            max_queue_depth,
        }
    }

    /// The catalog this service reads.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// Stop the workers and fail every queued request with
    /// [`DiskError::Shutdown`]. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut core = self.inner.core.lock().expect("disk core poisoned");
            if core.stop {
                return;
            }
            core.stop = true;
            for (_, p) in core.pending.drain() {
                for w in p.waiters {
                    let _ = w.send(Err(DiskError::Shutdown));
                }
            }
            core.by_block.clear();
            self.inner.work.notify_all();
            self.inner.space.notify_all();
        }
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DiskService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for DiskService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DiskService({:?})", self.inner.cfg.scheduler)
    }
}

/// Update the per-file stream tracker with a demand read of `block` and
/// enqueue internal readahead for the blocks that follow it. Readahead is
/// best-effort: it never blocks on backpressure and is shed when the
/// scheduler queue is already `queue_cap` deep.
fn note_stream_and_readahead(core: &mut Core, inner: &Inner, block: BlockId) {
    let file = block.file;
    let prev = core.last_block.insert(file.0, block.index);
    if inner.cfg.readahead == 0 {
        return;
    }
    let sequential = block.index > 0 && prev == Some(block.index - 1);
    if !sequential {
        return;
    }
    let blocks = inner.catalog.blocks_of(file);
    for k in 1..=inner.cfg.readahead {
        let Some(next) = block.index.checked_add(k) else {
            break;
        };
        if next >= blocks {
            break;
        }
        let nb = BlockId::new(file, next);
        if core.ra_cache.contains_key(&nb) || core.by_block.contains_key(&nb) {
            continue;
        }
        if core.queue.len() >= inner.cfg.queue_cap {
            break;
        }
        let seq = core.queue.push(inner.layout.addr_of(nb), BLOCK_SIZE, 1, nb);
        let gen = core.write_gen;
        core.pending.insert(
            seq,
            PendingEntry {
                waiters: Vec::new(),
                internal: true,
                counted_demand: false,
                gen,
            },
        );
        core.by_block.insert(nb, seq);
        inner.m.readahead_issued.inc();
        inner.m.queue_depth.set(core.queue.len() as i64);
        inner.work.notify_one();
    }
}

/// Park readahead bytes in the single-shot cache, evicting oldest-first.
fn ra_insert(core: &mut Core, cap: usize, block: BlockId, data: Arc<Vec<u8>>) {
    if cap == 0 {
        return;
    }
    if core.ra_order.len() >= cap.saturating_mul(2) {
        // Taken and invalidated entries leave stale ids in the eviction
        // order; prune them before they dominate.
        let Core {
            ra_order, ra_cache, ..
        } = core;
        ra_order.retain(|b| ra_cache.contains_key(b));
    }
    while core.ra_cache.len() >= cap {
        let Some(old) = core.ra_order.pop_front() else {
            break;
        };
        // Entries already taken or invalidated leave stale ids behind;
        // popping them frees nothing, so keep going.
        core.ra_cache.remove(&old);
    }
    core.ra_order.push_back(block);
    core.ra_cache.insert(block, data);
}

fn worker_loop(inner: &Inner) {
    let mut core = inner.core.lock().expect("disk core poisoned");
    loop {
        if core.stop {
            return;
        }
        let Some(picked) = core.queue.pop() else {
            core = inner.work.wait(core).expect("disk core poisoned");
            continue;
        };
        let seq = picked.seq;
        let block = picked.payload;
        // The pending entry outlives the pop (delivery removes it), but
        // shutdown may have drained it while we held no lock earlier.
        let Some(p) = core.pending.get(&seq) else {
            continue;
        };
        let internal = p.internal;
        let gen = p.gen;
        if p.counted_demand {
            core.demand_queued -= 1;
            inner.space.notify_one();
        }
        if picked.contiguous {
            core.batch_run += 1;
        } else {
            if core.batch_run > 0 {
                inner.m.batch_len.record(core.batch_run);
            }
            core.batch_run = 1;
        }
        inner.m.seeks.add(picked.seeks as u64);
        inner.m.queue_depth.set(core.queue.len() as i64);
        inner.m.inflight.adjust(1);
        drop(core);

        // Physical service, no lock held: injected faults, emulated
        // mechanics, then the real store read.
        let sw = Stopwatch::start();
        let mut injected_err = false;
        if let Some((seed, f)) = inner.faults {
            if f.slow_prob > 0.0 && roll(seed, SLOW_SALT, block) < f.slow_prob {
                inner.m.slow_faults.inc();
                std::thread::sleep(f.slow);
            }
            if f.error_prob > 0.0 && roll(seed, ERR_SALT, block) < f.error_prob {
                injected_err = true;
            }
        }
        if let Some(mech) = inner.cfg.mechanics {
            let d = mech.read_latency + mech.seek * picked.seeks;
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
        let res: DiskRead = if injected_err {
            inner.m.io_errors.inc();
            Err(DiskError::Io)
        } else {
            if internal {
                inner.m.physical_ra.inc();
            } else {
                inner.m.physical_demand.inc();
            }
            Ok(Arc::new(inner.store.read_block(block)))
        };
        sw.stop(if internal {
            &inner.m.latency_ra
        } else {
            &inner.m.latency_demand
        });

        core = inner.core.lock().expect("disk core poisoned");
        inner.m.inflight.adjust(-1);
        if let Some(p) = core.pending.remove(&seq) {
            if core.by_block.get(&block) == Some(&seq) {
                core.by_block.remove(&block);
            }
            if p.waiters.is_empty() {
                // Pure readahead: cache unless a write intervened.
                if let Ok(data) = &res {
                    if p.gen == core.write_gen && gen == p.gen {
                        ra_insert(&mut core, inner.cfg.readahead_cache, block, data.clone());
                    }
                }
            } else {
                for w in p.waiters {
                    let _ = w.send(res.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_rolls_are_deterministic_per_block() {
        let b = BlockId::new(ccm_core::FileId(3), 7);
        assert_eq!(roll(42, SLOW_SALT, b), roll(42, SLOW_SALT, b));
        assert_ne!(roll(42, SLOW_SALT, b), roll(43, SLOW_SALT, b));
        assert_ne!(roll(42, SLOW_SALT, b), roll(42, ERR_SALT, b));
        let r = roll(42, SLOW_SALT, b);
        assert!((0.0..1.0).contains(&r));
    }

    #[test]
    fn disk_faults_none_never_fires() {
        assert!(DiskFaults::NONE.is_none());
        assert!(DiskFaults::default().is_none());
        assert!(!DiskFaults {
            error_prob: 0.5,
            ..DiskFaults::NONE
        }
        .is_none());
    }
}
