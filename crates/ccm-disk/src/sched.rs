//! The runtime disk scheduler: the simulator's queue discipline, extracted
//! as a pure data structure.
//!
//! [`SchedQueue`] mirrors `ccm_cluster::Disk`'s pending queue exactly —
//! same pick rule, same `(address, arrival)` tie-breaks, same head and
//! seek accounting — so the simulator and the threaded runtime provably
//! agree on service order (the parity test in `tests/parity.rs` feeds both
//! the same arrival sequence and asserts identical order). The pick rule
//! for [`SchedPolicy::Batched`], from the paper's "simple scheduling
//! algorithm in our queue of disk requests":
//!
//! 1. a request whose address equals the current head position (earliest
//!    arrival among them) — continuing the sequential run is free;
//! 2. otherwise C-LOOK: the smallest `(address, arrival)` at or above the
//!    head;
//! 3. otherwise wrap to the smallest `(address, arrival)` overall.
//!
//! [`SchedPolicy::Fifo`] is the paper's -Basic strawman: strict arrival
//! order, which collapses under interleaved sequential streams (12 seeks
//! where batching pays 4 — the simulator's
//! `paper_interleaving_example_12_vs_4_seeks` test, reproduced at the
//! runtime level by `bench_rt`'s `disk` section).

use std::collections::VecDeque;

/// How the pending-request queue is ordered. Runtime analog of
/// `ccm_cluster::DiskScheduler`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Serve strictly in arrival order.
    Fifo,
    /// Prefer the head-contiguous request; otherwise sweep upward by
    /// address, wrapping (C-LOOK).
    #[default]
    Batched,
}

/// One pending request with its scheduling key and caller payload.
#[derive(Debug, Clone)]
struct Pending<T> {
    seq: u64,
    addr: u64,
    bytes: u64,
    extents: u32,
    payload: T,
}

/// A request the scheduler has picked for service.
#[derive(Debug, Clone)]
pub struct Picked<T> {
    /// Arrival sequence number (from [`SchedQueue::push`]).
    pub seq: u64,
    /// Starting byte address.
    pub addr: u64,
    /// Whether the request continued the head's sequential run.
    pub contiguous: bool,
    /// Seeks charged, using the simulator's rule: a contiguous request
    /// pays `extents - 1`, anything else `1 + extents`.
    pub seeks: u32,
    /// The caller's payload.
    pub payload: T,
}

/// The pending-request queue plus head position: everything the disk
/// scheduler needs, with no threads or I/O attached.
#[derive(Debug, Clone)]
pub struct SchedQueue<T> {
    policy: SchedPolicy,
    queue: VecDeque<Pending<T>>,
    seq: u64,
    head: u64,
    max_depth: usize,
}

impl<T> SchedQueue<T> {
    /// An empty queue with the head unpositioned (the first request always
    /// pays a positioning seek), matching `ccm_cluster::Disk::new`.
    pub fn new(policy: SchedPolicy) -> SchedQueue<T> {
        SchedQueue {
            policy,
            queue: VecDeque::new(),
            seq: 0,
            head: u64::MAX,
            max_depth: 0,
        }
    }

    /// Which policy this queue uses.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Pending requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Largest pending depth observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Current head position (byte address just past the last pop).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Enqueue a request; returns its arrival sequence number.
    pub fn push(&mut self, addr: u64, bytes: u64, extents: u32, payload: T) -> u64 {
        self.seq += 1;
        self.queue.push_back(Pending {
            seq: self.seq,
            addr,
            bytes,
            extents,
            payload,
        });
        self.max_depth = self.max_depth.max(self.queue.len());
        self.seq
    }

    /// Pick the next request per the policy, advance the head past its
    /// transfer, and charge seeks — the exact decision
    /// `ccm_cluster::Disk::start_next` makes.
    pub fn pop(&mut self) -> Option<Picked<T>> {
        let idx = self.pick_index()?;
        let p = self.queue.remove(idx).expect("index in range");
        let contiguous = p.addr == self.head;
        let seeks = if contiguous {
            p.extents.saturating_sub(1)
        } else {
            1 + p.extents
        };
        self.head = p.addr + p.bytes;
        Some(Picked {
            seq: p.seq,
            addr: p.addr,
            contiguous,
            seeks,
            payload: p.payload,
        })
    }

    fn pick_index(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        match self.policy {
            SchedPolicy::Fifo => Some(0),
            SchedPolicy::Batched => {
                // 1. A request continuing the current head run is free.
                if let Some(i) = self.queue.iter().position(|p| p.addr == self.head) {
                    return Some(i);
                }
                // 2. C-LOOK: smallest address at or above the head...
                let mut best: Option<(usize, u64, u64)> = None; // (idx, addr, seq)
                for (i, p) in self.queue.iter().enumerate() {
                    if p.addr >= self.head {
                        let better = match best {
                            None => true,
                            Some((_, a, s)) => (p.addr, p.seq) < (a, s),
                        };
                        if better {
                            best = Some((i, p.addr, p.seq));
                        }
                    }
                }
                if let Some((i, _, _)) = best {
                    return Some(i);
                }
                // 3. ...wrapping to the smallest address overall.
                let mut best: Option<(usize, u64, u64)> = None;
                for (i, p) in self.queue.iter().enumerate() {
                    let better = match best {
                        None => true,
                        Some((_, a, s)) => (p.addr, p.seq) < (a, s),
                    };
                    if better {
                        best = Some((i, p.addr, p.seq));
                    }
                }
                best.map(|(i, _, _)| i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u64 = 8192;

    fn drain(q: &mut SchedQueue<u64>) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some(p) = q.pop() {
            order.push(p.payload);
        }
        order
    }

    #[test]
    fn fifo_is_arrival_order() {
        let mut q = SchedQueue::new(SchedPolicy::Fifo);
        for (tag, addr) in [(1, 3 * B), (2, 0), (3, B)] {
            q.push(addr, B, 1, tag);
        }
        assert_eq!(drain(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn batched_prefers_head_contiguity_then_sweeps() {
        let mut q = SchedQueue::new(SchedPolicy::Batched);
        // Head unpositioned: first pop wraps to the smallest address (0),
        // then the run 0→B→2B is contiguous, then sweep picks 10B.
        q.push(10 * B, B, 1, 4);
        q.push(2 * B, B, 1, 3);
        q.push(0, B, 1, 1);
        q.push(B, B, 1, 2);
        assert_eq!(drain(&mut q), vec![1, 2, 3, 4]);
    }

    #[test]
    fn batched_wraps_like_c_look() {
        let mut q = SchedQueue::new(SchedPolicy::Batched);
        q.push(5 * B, B, 1, 1);
        assert_eq!(q.pop().expect("one pending").payload, 1);
        // Head is now past 5B; only smaller addresses remain → wrap to the
        // smallest, then sweep upward.
        q.push(4 * B, B, 1, 3);
        q.push(2 * B, B, 1, 2);
        assert_eq!(drain(&mut q), vec![2, 3]);
    }

    #[test]
    fn equal_addresses_break_ties_by_arrival() {
        let mut q = SchedQueue::new(SchedPolicy::Batched);
        q.push(7 * B, B, 1, 1);
        q.push(7 * B, B, 1, 2);
        q.push(7 * B, B, 1, 3);
        assert_eq!(drain(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn seek_accounting_matches_the_simulator_rule() {
        let mut q = SchedQueue::new(SchedPolicy::Batched);
        q.push(0, B, 1, 1);
        q.push(B, B, 1, 2);
        q.push(10 * B, B, 1, 3);
        let first = q.pop().expect("pending");
        assert!(!first.contiguous, "unpositioned head always seeks");
        assert_eq!(first.seeks, 2, "1 positioning + 1 metadata");
        let second = q.pop().expect("pending");
        assert!(second.contiguous);
        assert_eq!(second.seeks, 0, "continuing the run is free");
        let third = q.pop().expect("pending");
        assert_eq!(third.seeks, 2);
    }

    #[test]
    fn head_tracks_transfer_end() {
        let mut q = SchedQueue::new(SchedPolicy::Batched);
        assert_eq!(q.head(), u64::MAX);
        q.push(3 * B, 2 * B, 1, 1);
        q.pop().expect("pending");
        assert_eq!(q.head(), 5 * B);
    }
}
