//! Node service threads and the public middleware API.
//!
//! One [`Middleware`] instance is one emulated cluster: the shared protocol
//! state (`ccm-core`'s [`ClusterCache`] behind a mutex — the "perfect
//! directory" realized as shared memory), one block store per node, one
//! service thread per node answering peer traffic, and any number of
//! [`NodeHandle`]s through which the hosting service reads.
//!
//! Consistency model: protocol decisions are atomic (the cache mutex), but
//! data movement is not — bytes chase the decision over channels. Whenever
//! the data has not caught up with the metadata (a peer answers "don't have
//! it", a local hit's bytes are still in flight), the reader falls through
//! to the backing store, exactly the "eventual disk read" escape hatch the
//! paper describes for in-flight races (§3). The `store_fallbacks` counter
//! makes the frequency of that path observable.

use crate::fault::{ChaosLan, FaultPlan};
use crate::membership::{MemberState, Membership};
use crate::obs::{ReadClass, RtObs};
use crate::store::{BlockStore, Catalog};
use crate::transport::{Lan, PeerMsg, Transport};
use crate::write::{WriteConfig, WriteMode, WriteStats};
use ccm_core::{
    AccessOutcome, AdmissionConfig, AdmissionStats, BlockId, CacheConfig, CacheStats, ClusterCache,
    CopyKind, DirectoryKind, Disposition, EvictionEffect, FileId, HintStats, NodeId, RepairReport,
    ReplacementPolicy,
};
use ccm_disk::{DiskConfig, DiskService, DiskStats};
use ccm_obs::{Hop, Registry, Snapshot, Stopwatch, TraceRing};
use simcore::chan::Receiver;
use simcore::sync::Mutex;
use simcore::FxHashMap;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Error from [`NodeHandle::write_block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The backing [`BlockStore`] refused the write (read-only store).
    ReadOnlyStore,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::ReadOnlyStore => write!(f, "backing store is read-only"),
        }
    }
}

impl std::error::Error for WriteError {}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Cluster size (service threads).
    pub nodes: usize,
    /// Per-node cache capacity in 8 KB block frames.
    pub capacity_blocks: usize,
    /// Replacement policy; defaults to the paper's winning variant.
    pub policy: ReplacementPolicy,
    /// How long a reader waits for a peer's block before falling through to
    /// the backing store. Bounded so a lost request or reply degrades to a
    /// disk read instead of hanging the reader.
    pub fetch_timeout: Duration,
    /// Link-level fault injection, if any (testing).
    pub faults: Option<FaultPlan>,
    /// Per-node disk service configuration: scheduler policy, worker count,
    /// queue bound, coalescing, and readahead. Every miss and degraded
    /// fallback is read through a node's [`DiskService`] rather than
    /// touching the [`BlockStore`] inline.
    pub disk: DiskConfig,
    /// Metric registry the cluster reports into. `None` creates a private
    /// one (reachable via [`Middleware::registry`]); pass a shared registry
    /// to co-locate runtime, transport, and HTTP metrics in one scrape.
    pub obs: Option<Registry>,
    /// Write-path coherence: write-through (the default) persists before
    /// acknowledging; write-back defers persistence to a flush under a
    /// bounded dirty budget. See [`crate::write`] for the durability
    /// contract.
    pub write: WriteConfig,
    /// Replica-admission control: `Some` installs the ghost-LRU scan
    /// filter at remote-hit replica admission (one-touch blocks are served
    /// without being cached until they re-touch); `None` (the default)
    /// admits everything, exactly the paper's behavior.
    pub admission: Option<AdmissionConfig>,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            nodes: 4,
            capacity_blocks: 1024,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: Duration::from_secs(2),
            faults: None,
            disk: DiskConfig::default(),
            obs: None,
            write: WriteConfig::default(),
            admission: None,
        }
    }
}

type NodeStore = Mutex<FxHashMap<BlockId, Arc<Vec<u8>>>>;

/// One acknowledged, unpersisted write: whose store holds the bytes, and a
/// digest of exactly the payload that was acknowledged. The digest is what
/// keeps crash recovery honest — a survivor's copy only counts as the
/// write if its bytes hash to the acknowledged image (a replica whose
/// refresh was still in flight at the crash holds the *pre*-write image
/// and must be treated as a loss, not silently persisted as current).
#[derive(Clone, Copy)]
struct DirtyEntry {
    owner: NodeId,
    digest: u64,
}

/// The write-back dirty ledger: which node's store holds the authoritative
/// (acknowledged but unpersisted) bytes of each dirty block, plus a
/// first-dirtied queue for oldest-first flushing. Rewrites of an
/// already-dirty block leave a stale queue entry behind; pops skip entries
/// whose block is no longer in `owners`.
#[derive(Default)]
struct DirtyLedger {
    owners: FxHashMap<BlockId, DirtyEntry>,
    order: VecDeque<BlockId>,
}

/// FNV-1a over a block payload (the dirty-entry acknowledgment digest).
fn digest_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl DirtyLedger {
    /// Pop the oldest block that is still dirty.
    fn pop_oldest(&mut self) -> Option<BlockId> {
        while let Some(b) = self.order.pop_front() {
            if self.owners.contains_key(&b) {
                return Some(b);
            }
        }
        None
    }
}

/// What `Shared::flush_block` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushOutcome {
    /// The block was not dirty.
    Clean,
    /// Dirty bytes persisted to the backing store.
    Flushed,
    /// The dirty bytes were unreachable (owner store empty or the store
    /// refused the write); the block is now in the lost set.
    Lost,
}

struct Shared {
    cache: Mutex<ClusterCache>,
    stores: Vec<NodeStore>,
    disk: Arc<dyn BlockStore>,
    /// One asynchronous disk service per node: queued, scheduled,
    /// coalesced reads against `disk`. Kept by value so dropping `Shared`
    /// joins the worker threads.
    disks: Vec<DiskService>,
    catalog: Catalog,
    chaos: ChaosLan,
    /// Liveness flags: cleared first thing on crash so readers stop
    /// targeting a dying node before its repair completes.
    alive: Vec<AtomicBool>,
    /// The epoch-versioned member table: which of the provisioned slots
    /// currently participate in the protocol. Transitions are paired with
    /// cache re-mastering by `Middleware` (join/leave/crash) and the
    /// heartbeat monitor (failure detection).
    membership: Membership,
    fetch_timeout: Duration,
    /// Metric handles and the block-path trace ring. Store fallbacks (reads
    /// that had to fall through to the backing store because the data plane
    /// had not caught up with a protocol decision) live here too, as
    /// per-node counters.
    obs: RtObs,
    /// Write-path coherence configuration (mode, dirty budget, flusher).
    write_cfg: WriteConfig,
    /// Monotonic cluster-wide write version, carried on
    /// [`PeerMsg::WriteInvalidate`] frames so a networked observer can
    /// order invalidations; the in-process protocol does not consume it.
    write_version: AtomicU64,
    /// Per-block write serialization: the lock is held across persist (or
    /// dirty-record), the protocol write, invalidation fan-out, and the
    /// writer's store install, so concurrent same-block writers persist in
    /// exactly the order the protocol observes. Locks are created on first
    /// write of a block and retained (one `Arc` per ever-written block).
    write_locks: Mutex<FxHashMap<BlockId, Arc<Mutex<()>>>>,
    /// Write-back dirty ledger (empty under write-through).
    dirty: Mutex<DirtyLedger>,
    /// Acknowledged write-back writes whose dirty bytes died with a
    /// crashed master and could not be recovered. Reads of these blocks
    /// serve the last *persisted* (pre-write) image; the set makes the
    /// loss detectable instead of silent.
    lost_writes: Mutex<BTreeSet<BlockId>>,
}

impl Shared {
    fn lan(&self) -> &dyn Transport {
        self.chaos.inner()
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()].load(Ordering::Acquire)
    }

    fn store_insert(&self, node: NodeId, block: BlockId, data: Arc<Vec<u8>>) {
        let mut store = self.stores[node.index()].lock();
        store.insert(block, data);
        self.obs.node(node).store_blocks.set(store.len() as i64);
    }

    fn store_take(&self, node: NodeId, block: BlockId) -> Option<Arc<Vec<u8>>> {
        let mut store = self.stores[node.index()].lock();
        let out = store.remove(&block);
        self.obs.node(node).store_blocks.set(store.len() as i64);
        out
    }

    fn store_get(&self, node: NodeId, block: BlockId) -> Option<Arc<Vec<u8>>> {
        self.stores[node.index()].lock().get(&block).cloned()
    }

    /// Read `block` through `node`'s disk service (queued behind its
    /// scheduler, coalesced with concurrent misses of the same block). An
    /// injected I/O error is absorbed here: the read retries synchronously
    /// against the backing store, which cannot fail, so disk faults degrade
    /// latency but never the bytes served.
    fn disk_read(&self, node: NodeId, block: BlockId) -> Arc<Vec<u8>> {
        match self.disks[node.index()].read(block) {
            Ok(data) => data,
            Err(_) => {
                self.obs.node(node).disk_error_fallbacks.inc();
                Arc::new(self.disk.read_block(block))
            }
        }
    }

    /// The per-block write serialization lock for `block`.
    fn write_lock(&self, block: BlockId) -> Arc<Mutex<()>> {
        self.write_locks
            .lock()
            .entry(block)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// Persist `block` through `node`'s disk service (which fences its own
    /// readahead/coalescing state) and invalidate every other service's
    /// caches, so no reader anywhere can be served the superseded image
    /// from a disk-side cache.
    fn persist(&self, node: NodeId, block: BlockId, data: &[u8]) -> bool {
        if !self.disks[node.index()].write_block(block, data) {
            return false;
        }
        for (i, svc) in self.disks.iter().enumerate() {
            if i != node.index() {
                svc.invalidate(block);
            }
        }
        true
    }

    /// Record `block` as dirty with its authoritative bytes in `owner`'s
    /// store (write-back ack). A rewrite retargets the owner and digest in
    /// place.
    fn mark_dirty(&self, owner: NodeId, block: BlockId, digest: u64) {
        let mut d = self.dirty.lock();
        d.owners.insert(block, DirtyEntry { owner, digest });
        d.order.push_back(block);
        self.obs.wb_dirty_blocks.set(d.owners.len() as i64);
    }

    /// Who currently owns `block`'s dirty bytes, if anyone.
    fn dirty_owner(&self, block: BlockId) -> Option<NodeId> {
        self.dirty.lock().owners.get(&block).map(|e| e.owner)
    }

    fn mark_lost(&self, block: BlockId) {
        self.lost_writes.lock().insert(block);
        self.obs.wb_lost.inc();
    }

    /// Flush `block`'s dirty bytes (if any) to the backing store,
    /// serialized against concurrent writers of the same block. Callers
    /// must hold no block write lock (the flush takes `block`'s).
    fn flush_block(&self, block: BlockId) -> FlushOutcome {
        let lock = self.write_lock(block);
        let _guard = lock.lock();
        let owner = {
            let mut d = self.dirty.lock();
            let owner = d.owners.remove(&block);
            self.obs.wb_dirty_blocks.set(d.owners.len() as i64);
            owner
        };
        let Some(entry) = owner else {
            return FlushOutcome::Clean;
        };
        match self.store_get(entry.owner, block) {
            Some(bytes) if self.persist(entry.owner, block, &bytes) => {
                self.obs.wb_flushes.inc();
                FlushOutcome::Flushed
            }
            _ => {
                // The owner's bytes are gone (should only happen in a
                // crash window) or the store is read-only: the write
                // cannot be persisted. Record the loss.
                self.mark_lost(block);
                FlushOutcome::Lost
            }
        }
    }

    /// Drain the whole dirty ledger, oldest first. Returns how many blocks
    /// were persisted.
    fn flush_dirty(&self) -> usize {
        let mut flushed = 0;
        loop {
            let block = self.dirty.lock().pop_oldest();
            let Some(block) = block else { break };
            if self.flush_block(block) == FlushOutcome::Flushed {
                flushed += 1;
            }
        }
        flushed
    }

    /// Flush oldest dirty blocks until the ledger fits the budget again
    /// (write-back acks call this after releasing their block lock).
    fn enforce_dirty_budget(&self) {
        loop {
            let victim = {
                let mut d = self.dirty.lock();
                if d.owners.len() <= self.write_cfg.dirty_budget {
                    return;
                }
                d.pop_oldest()
            };
            let Some(victim) = victim else { return };
            self.flush_block(victim);
        }
    }

    /// Reconcile the dirty ledger after `crashed`'s store was wiped and
    /// the directory repaired. For each dirty block the crashed node
    /// owned: if re-mastering handed the block to a survivor (`moves`)
    /// whose store holds bytes matching the acknowledged digest, persist
    /// them — the write survives. Otherwise the write is lost: recorded
    /// in the lost set, never silently replaced by the stale persisted
    /// image. A survivor copy that fails the digest check is a replica
    /// whose refresh was still in flight at the crash (pre-write bytes)
    /// and counts as a loss too.
    fn recover_dirty_after_crash(&self, crashed: NodeId, moves: &[(BlockId, NodeId)]) {
        let owned: Vec<(BlockId, u64)> = {
            let mut d = self.dirty.lock();
            let owned: Vec<(BlockId, u64)> = d
                .owners
                .iter()
                .filter(|&(_, e)| e.owner == crashed)
                .map(|(&b, e)| (b, e.digest))
                .collect();
            for &(b, _) in &owned {
                d.owners.remove(&b);
            }
            self.obs.wb_dirty_blocks.set(d.owners.len() as i64);
            owned
        };
        if owned.is_empty() {
            return;
        }
        let targets: FxHashMap<BlockId, NodeId> = moves.iter().copied().collect();
        for (block, digest) in owned {
            let rescued = targets
                .get(&block)
                .and_then(|&to| self.store_get(to, block).map(|bytes| (to, bytes)))
                .filter(|(_, bytes)| digest_bytes(bytes) == digest);
            match rescued {
                Some((to, bytes)) if self.persist(to, block, &bytes) => {
                    self.obs.wb_recovered.inc();
                }
                _ => self.mark_lost(block),
            }
        }
    }

    /// Data-plane fallback read. Normally the backing store; but if the
    /// block is write-back dirty, disk holds the superseded image — the
    /// dirty owner's in-process store is authoritative, so read it
    /// directly (a networked deployment would re-request from the owner).
    /// Only if the owner's bytes are unreachable does this degrade to the
    /// store, which then serves the last persisted image.
    fn fallback_read(&self, node: NodeId, block: BlockId) -> Arc<Vec<u8>> {
        if let Some(owner) = self.dirty_owner(block) {
            if let Some(bytes) = self.store_get(owner, block) {
                return bytes;
            }
        }
        self.disk_read(node, block)
    }

    /// Move data in sympathy with an eviction decision. `req` is the trace
    /// request id of the read that triggered the eviction (0 = untraced,
    /// e.g. a write-path eviction).
    fn apply_eviction(&self, evictor: NodeId, effect: EvictionEffect, req: u64) {
        // A dirty master never leaves the cache unpersisted: if the victim
        // is dirty *and this evictor owns its bytes*, flush before they
        // move or drop. (Forwarded masters would otherwise ride a
        // chaos-droppable Forward frame; a lost frame would leave the only
        // current copy nowhere and later disk fallbacks stale.) Evicting a
        // mere replica of someone else's dirty block needs no flush — the
        // owner still holds the bytes.
        if self.dirty_owner(effect.victim) == Some(evictor) {
            self.flush_block(effect.victim);
        }
        self.obs.node(evictor).evictions.inc();
        match effect.disposition {
            Disposition::Dropped | Disposition::DroppedWithPromotion { .. } => {
                // Promotion keeps the holder's existing bytes; the evictor's
                // copy is gone either way.
                self.store_take(evictor, effect.victim);
            }
            Disposition::Forwarded {
                to,
                displaced,
                merged_with_replica,
            } => {
                self.obs.node(evictor).forwards.inc();
                let data = self.store_take(evictor, effect.victim);
                if merged_with_replica {
                    // The destination already holds the bytes as a replica.
                    return;
                }
                // If our bytes were already gone (data-plane race), the
                // destination will fall back to the backing store on demand;
                // re-reading here keeps its store warm instead.
                let data = data.unwrap_or_else(|| {
                    self.obs.node(evictor).store_fallbacks.inc();
                    self.obs.node(evictor).move_fallbacks.inc();
                    self.disk_read(evictor, effect.victim)
                });
                self.obs.trace.push(
                    req,
                    evictor.index() as u16,
                    Hop::Forward {
                        to: to.index() as u16,
                    },
                );
                self.chaos.send(
                    evictor,
                    to,
                    PeerMsg::Forward {
                        block: effect.victim,
                        data: data.to_vec(),
                        displace: displaced.map(|(b, _)| b),
                    },
                );
            }
        }
    }
}

/// A running middleware cluster.
pub struct Middleware {
    shared: Arc<Shared>,
    /// One slot per node; `None` while that node is crashed (or not yet a
    /// member).
    threads: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// The heartbeat failure detector, once started: its stop flag and
    /// thread handle (joined on shutdown).
    monitor: Mutex<Option<(Arc<AtomicBool>, JoinHandle<()>)>>,
    /// The background write-back flusher, if `WriteConfig::flush_interval`
    /// asked for one: its stop flag and thread handle (joined on shutdown).
    flusher: Mutex<Option<(Arc<AtomicBool>, JoinHandle<()>)>>,
}

/// A per-node client handle; cheap to clone and `Send`.
#[derive(Clone)]
pub struct NodeHandle {
    shared: Arc<Shared>,
    node: NodeId,
}

/// Serve one node's peer traffic until shutdown.
fn service_loop(shared: Arc<Shared>, node: NodeId, inbox: Receiver<PeerMsg>) {
    for msg in inbox.iter() {
        match msg {
            PeerMsg::BlockRequest { block, reply } => {
                let data = shared.store_get(node, block).map(|a| a.to_vec());
                // A send failure just means the requester gave up; ignore.
                let _ = reply.send(data);
            }
            PeerMsg::Forward {
                block,
                data,
                displace,
            } => {
                let mut store = shared.stores[node.index()].lock();
                if let Some(d) = displace {
                    store.remove(&d);
                }
                store.insert(block, Arc::new(data));
                shared.obs.node(node).store_blocks.set(store.len() as i64);
            }
            PeerMsg::Invalidate { block } => {
                shared.store_take(node, block);
            }
            PeerMsg::WriteInvalidate { block, .. } => {
                // Coherence invalidation: drop the superseded bytes; the
                // next read re-routes through the (possibly dirty) master.
                // Guard: the protocol removed this node's copy *before* the
                // frame was sent, so if the node holds one again by the
                // time the frame arrives, it re-acquired the block after
                // the write (a re-fetch from the new master, or its own
                // newer write) and those bytes are current — a stale
                // invalidation must not wipe them. Unguarded, a delayed
                // frame could even delete a dirty master's only copy and
                // turn an acked write into a spurious loss.
                let holds = shared.cache.lock().node(node).lookup(block).is_some();
                if !holds {
                    shared.store_take(node, block);
                }
            }
            PeerMsg::Barrier { reply } => {
                // Every message enqueued before the barrier has been
                // processed by now; the requester may have timed out.
                let _ = reply.send(());
            }
            PeerMsg::Ping { reply } => {
                // Heartbeat: answering at all is the proof of liveness.
                let _ = reply.send(());
            }
            PeerMsg::Shutdown => break,
        }
    }
}

impl Middleware {
    /// Spawn a cluster over the in-process channel LAN: `cfg.nodes` service
    /// threads over `catalog` backed by `disk`.
    ///
    /// # Panics
    /// Panics on a zero-node or zero-capacity configuration (via
    /// [`ClusterCache::new`]).
    pub fn start(cfg: RtConfig, catalog: Catalog, disk: Arc<dyn BlockStore>) -> Middleware {
        let lan = Arc::new(Lan::with_nodes(cfg.nodes));
        Middleware::start_on(cfg, catalog, disk, lan)
    }

    /// Spawn a cluster over an externally built transport — the channel
    /// [`Lan`], `ccm-net`'s `TcpLan`, or anything else implementing
    /// [`Transport`]. The middleware claims each node's inbox through
    /// [`Transport::reconnect`] and runs identically over every backend;
    /// `cfg.faults` composes on top of whichever transport is given.
    ///
    /// Compatibility constructor: every provisioned slot starts as an `Up`
    /// member and the paper's perfect directory is used, so the cluster
    /// behaves exactly as it did before dynamic membership existed. Use
    /// [`Middleware::start_member`] to start with a partial member set or
    /// the hint-based directory.
    ///
    /// # Panics
    /// Panics if `transport.nodes() != cfg.nodes`, and on a zero-node or
    /// zero-capacity configuration (via [`ClusterCache::new`]).
    pub fn start_on(
        cfg: RtConfig,
        catalog: Catalog,
        disk: Arc<dyn BlockStore>,
        transport: Arc<dyn Transport>,
    ) -> Middleware {
        let members = Membership::all_up(cfg.nodes);
        Middleware::start_member(
            cfg,
            catalog,
            disk,
            transport,
            members,
            DirectoryKind::Perfect,
        )
    }

    /// Spawn a cluster with an explicit [`Membership`] table and directory
    /// choice — the primary constructor. The cluster is *provisioned* at
    /// `cfg.nodes` slots (transport endpoints, stores, disk services, and
    /// metrics are all sized once, here), but only slots that are members
    /// of `membership` get a service thread and participate in the
    /// protocol; the rest sit cold until [`Middleware::join_node`] brings
    /// them in.
    ///
    /// # Panics
    /// Panics if `transport.nodes()`, `membership.capacity()`, and
    /// `cfg.nodes` disagree, and on a zero-node or zero-capacity
    /// configuration (via [`ClusterCache::new`]).
    pub fn start_member(
        cfg: RtConfig,
        catalog: Catalog,
        disk: Arc<dyn BlockStore>,
        transport: Arc<dyn Transport>,
        membership: Membership,
        directory: DirectoryKind,
    ) -> Middleware {
        assert_eq!(
            transport.nodes(),
            cfg.nodes,
            "transport size does not match cfg.nodes"
        );
        assert_eq!(
            membership.capacity(),
            cfg.nodes,
            "membership capacity does not match cfg.nodes"
        );
        let inboxes: Vec<_> = (0..cfg.nodes)
            .map(|i| transport.reconnect(NodeId(i as u16)))
            .collect();
        let plan = cfg.faults.unwrap_or_else(|| FaultPlan::quiet(0));
        let registry = cfg.obs.unwrap_or_default();
        let chaos = ChaosLan::with_registry(transport, &plan, &registry);
        let mut cache_cfg = CacheConfig::paper(cfg.nodes, cfg.capacity_blocks, cfg.policy);
        cache_cfg.directory = directory;
        cache_cfg.admission = cfg.admission;
        let mut cache = ClusterCache::new(cache_cfg);
        for i in 0..cfg.nodes {
            if !membership.is_member(NodeId(i as u16)) {
                cache.deactivate_slot(NodeId(i as u16));
            }
        }
        let disks: Vec<DiskService> = (0..cfg.nodes)
            .map(|i| {
                DiskService::start_observed(
                    disk.clone(),
                    catalog.clone(),
                    cfg.disk.clone(),
                    Some((plan.seed, plan.disk)),
                    Some(&registry),
                    &i.to_string(),
                )
            })
            .collect();
        let obs = RtObs::new(registry, cfg.nodes);
        obs.epoch.set(membership.epoch() as i64);
        let shared = Arc::new(Shared {
            cache: Mutex::new(cache),
            stores: (0..cfg.nodes)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            disk,
            disks,
            catalog,
            chaos,
            alive: (0..cfg.nodes)
                .map(|i| AtomicBool::new(membership.is_member(NodeId(i as u16))))
                .collect(),
            membership,
            fetch_timeout: cfg.fetch_timeout,
            obs,
            write_cfg: cfg.write,
            write_version: AtomicU64::new(0),
            write_locks: Mutex::new(FxHashMap::default()),
            dirty: Mutex::new(DirtyLedger::default()),
            lost_writes: Mutex::new(BTreeSet::new()),
        });
        let threads = inboxes
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| {
                let node = NodeId(i as u16);
                // Non-members get no thread; dropping their inbox makes
                // sends to them fail fast until they join.
                shared
                    .membership
                    .is_member(node)
                    .then(|| spawn_service(&shared, node, inbox))
            })
            .collect();
        let mw = Middleware {
            shared,
            threads: Mutex::new(threads),
            monitor: Mutex::new(None),
            flusher: Mutex::new(None),
        };
        if cfg.write.mode == WriteMode::Back {
            if let Some(interval) = cfg.write.flush_interval {
                let stop = Arc::new(AtomicBool::new(false));
                let shared = mw.shared.clone();
                let flag = stop.clone();
                let handle = std::thread::Builder::new()
                    .name("ccm-wb-flusher".into())
                    .spawn(move || flusher_loop(shared, flag, interval))
                    .expect("spawn write-back flusher");
                *mw.flusher.lock() = Some((stop, handle));
            }
        }
        mw
    }

    /// A client handle bound to `node`.
    ///
    /// # Panics
    /// Panics if the node is out of range.
    pub fn handle(&self, node: NodeId) -> NodeHandle {
        assert!(node.index() < self.shared.chaos.nodes(), "no such node");
        NodeHandle {
            shared: self.shared.clone(),
            node,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.shared.chaos.nodes()
    }

    /// The file catalog being served.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Protocol counters so far, with the runtime's store-fallback count
    /// merged in (read from the metric registry, where the counters live).
    pub fn stats(&self) -> CacheStats {
        let mut s = self.shared.cache.lock().stats();
        s.store_fallbacks = self.shared.obs.store_fallbacks();
        s
    }

    /// Data-plane races resolved through the backing store.
    ///
    /// Compatibility shim: the count now lives on the metric registry as
    /// the per-node `ccm_rt_store_fallbacks_total` family; this returns its
    /// sum, exactly the old aggregate.
    pub fn store_fallbacks(&self) -> u64 {
        self.shared.obs.store_fallbacks()
    }

    /// `node`'s disk-service statistics: physical reads, coalesce and
    /// readahead hits, queue high-water mark, injected faults.
    ///
    /// # Panics
    /// Panics if the node is out of range.
    pub fn disk_stats(&self, node: NodeId) -> DiskStats {
        self.shared.disks[node.index()].stats()
    }

    /// Disk-service reads that failed with an injected I/O error and were
    /// satisfied synchronously from the backing store instead (summed over
    /// nodes; deterministic for a fixed plan and quiesced history).
    pub fn disk_error_fallbacks(&self) -> u64 {
        self.shared.obs.disk_error_fallbacks()
    }

    /// Link faults injected so far (all zero without a fault plan).
    pub fn chaos_stats(&self) -> crate::fault::ChaosStats {
        self.shared.chaos.chaos_stats()
    }

    /// The metric registry this cluster reports into (the one passed via
    /// [`RtConfig::obs`], or a private one).
    pub fn registry(&self) -> &Registry {
        &self.shared.obs.registry
    }

    /// The per-cluster block-path trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.shared.obs.trace
    }

    /// Refresh snapshot-time gauges (directory occupancy; takes the cache
    /// lock briefly) and scrape the registry.
    pub fn obs_snapshot(&self) -> Snapshot {
        let resident = self.shared.cache.lock().resident_blocks();
        self.shared.obs.directory_blocks.set(resident as i64);
        self.shared
            .obs
            .epoch
            .set(self.shared.membership.epoch() as i64);
        self.shared.obs.registry.snapshot()
    }

    /// True if `node`'s service thread is running.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.shared.is_alive(node)
    }

    /// The cluster's membership table (an `Arc` clone; shared with the
    /// running middleware, so transitions made by the middleware are
    /// visible through it and [`Membership::wait_for_epoch`] works).
    pub fn membership(&self) -> Membership {
        self.shared.membership.clone()
    }

    /// The current membership epoch (also exported as `ccm_rt_epoch`).
    pub fn epoch(&self) -> u64 {
        self.shared.membership.epoch()
    }

    /// Hint-directory accuracy statistics (all zero under the perfect
    /// directory; takes the cache lock briefly).
    pub fn hint_stats(&self) -> HintStats {
        self.shared.cache.lock().hint_stats()
    }

    /// Replica-admission statistics (all zero with admission off; takes
    /// the cache lock briefly).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.cache.lock().admission_stats()
    }

    /// Write-path counters: acknowledged writes, flushes, current dirty
    /// backlog, losses, recoveries.
    pub fn write_stats(&self) -> WriteStats {
        let obs = &self.shared.obs;
        WriteStats {
            writes: obs.nodes.iter().map(|n| n.writes.get()).sum(),
            flushes: obs.wb_flushes.get(),
            dirty: self.shared.dirty.lock().owners.len() as u64,
            lost: obs.wb_lost.get(),
            recovered: obs.wb_recovered.get(),
        }
    }

    /// Persist every dirty (acknowledged, unpersisted) write-back block,
    /// oldest first. Returns how many blocks were flushed. A no-op under
    /// write-through.
    pub fn flush_dirty(&self) -> usize {
        self.shared.flush_dirty()
    }

    /// How many acknowledged write-back writes are currently unpersisted.
    pub fn dirty_blocks(&self) -> usize {
        self.shared.dirty.lock().owners.len()
    }

    /// Every block whose acknowledged write-back write was lost (its dirty
    /// master crashed with no recoverable copy). Reads of these blocks
    /// serve the last persisted image — the loss is detected here, never
    /// silent. Sorted; empty under write-through and on graceful paths.
    pub fn lost_writes(&self) -> Vec<BlockId> {
        self.shared.lost_writes.lock().iter().copied().collect()
    }

    /// Bring a provisioned (or previously departed/crashed) slot into the
    /// cluster: start its service thread cold, re-master a deterministic
    /// share of the resident blocks onto it, ship their bytes, and bump the
    /// membership epoch. Returns how many blocks were re-mastered onto the
    /// joiner.
    ///
    /// The byte transfer is out-of-band: blocks move store-to-store in
    /// sympathy with the re-mastering decision (both backends keep node
    /// stores in-process; a networked deployment would stream them).
    ///
    /// # Panics
    /// Panics if the node is out of range or already a member.
    pub fn join_node(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes(), "no such node");
        assert!(
            !self.shared.membership.is_member(node),
            "node {node:?} is already a member"
        );
        let inbox = self.shared.lan().reconnect(node);
        let handle = spawn_service(&self.shared, node, inbox);
        self.threads.lock()[node.index()] = Some(handle);
        self.shared.alive[node.index()].store(true, Ordering::Release);
        let moved = {
            let mut cache = self.shared.cache.lock();
            cache.revive_node(node);
            cache.rebalance_on_join(node)
        };
        for &(block, from) in &moved {
            let dirty_from = self.shared.dirty_owner(block) == Some(from);
            let data = match self.shared.store_take(from, block) {
                Some(d) => {
                    if dirty_from {
                        // The dirty bytes move with the mastership: the
                        // joiner now owns the unpersisted image.
                        if let Some(e) = self.shared.dirty.lock().owners.get_mut(&block) {
                            e.owner = node;
                        }
                    }
                    d
                }
                None => {
                    // Data-plane race: the old holder's bytes were already
                    // gone; warm the joiner from disk instead. For a dirty
                    // block that means the acknowledged write is gone too —
                    // record the loss rather than silently re-mastering the
                    // stale persisted image as current.
                    if dirty_from {
                        let mut d = self.shared.dirty.lock();
                        d.owners.remove(&block);
                        self.shared.obs.wb_dirty_blocks.set(d.owners.len() as i64);
                        drop(d);
                        self.shared.mark_lost(block);
                    }
                    self.shared.obs.node(from).store_fallbacks.inc();
                    self.shared.obs.node(from).move_fallbacks.inc();
                    self.shared.disk_read(node, block)
                }
            };
            self.shared.store_insert(node, block, data);
        }
        let epoch = self.shared.membership.transition(node, MemberState::Up);
        self.shared.obs.epoch.set(epoch as i64);
        moved.len()
    }

    /// Gracefully remove `node` from the cluster: stop its service thread,
    /// hand its masters to survivors (promoting an existing replica where
    /// one exists, shipping bytes where not), purge its replicas, and bump
    /// the membership epoch. Unlike [`Middleware::crash_node`], no block is
    /// lost and no master degrades to disk-only. Returns how many masters
    /// were handed off with their bytes.
    ///
    /// # Panics
    /// Panics if the node is out of range, not an alive member, or the last
    /// live node.
    pub fn leave_node(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes(), "no such node");
        assert!(
            self.shared.membership.is_member(node),
            "node {node:?} is not a member"
        );
        assert!(
            self.shared.alive[node.index()].swap(false, Ordering::AcqRel),
            "node {node:?} is already down"
        );
        // Stop the service thread before snapshotting the store so no
        // queued forward lands after the handoff.
        self.shared.lan().send(node, node, PeerMsg::Shutdown);
        let handle = self.threads.lock()[node.index()]
            .take()
            .expect("alive node must have a thread");
        handle.join().expect("node thread panicked");
        // A graceful leave loses nothing: the leaver's dirty blocks are
        // persisted (its store is intact — only the thread has stopped)
        // before its masters are handed off, so survivors inherit clean
        // copies and the backing store is current.
        let leaver_dirty: Vec<BlockId> = {
            let d = self.shared.dirty.lock();
            d.owners
                .iter()
                .filter(|&(_, e)| e.owner == node)
                .map(|(&b, _)| b)
                .collect()
        };
        for block in leaver_dirty {
            if self.shared.dirty_owner(block) == Some(node) {
                self.shared.flush_block(block);
            }
        }
        let moved = self.shared.cache.lock().retire_node(node);
        for &(block, to) in &moved {
            let data = match self.shared.store_take(node, block) {
                Some(d) => d,
                None => {
                    self.shared.obs.node(node).store_fallbacks.inc();
                    self.shared.obs.node(node).move_fallbacks.inc();
                    self.shared.disk_read(to, block)
                }
            };
            self.shared.store_insert(to, block, data);
        }
        self.shared.stores[node.index()].lock().clear();
        self.shared.obs.node(node).store_blocks.set(0);
        let epoch = self.shared.membership.transition(node, MemberState::Left);
        self.shared.obs.epoch.set(epoch as i64);
        moved.len()
    }

    /// Test aid: silently kill `node`'s service thread *without* repairing
    /// anything — liveness gating, the directory, the membership table, and
    /// its store all stay stale, which is what a power failure looks like
    /// from the outside. Reads degrade to store fallbacks until the
    /// heartbeat monitor (or an explicit [`Middleware::crash_node`]-style
    /// repair) notices.
    ///
    /// # Panics
    /// Panics if the node is out of range or its thread is already gone.
    pub fn sever_node(&self, node: NodeId) {
        assert!(node.index() < self.nodes(), "no such node");
        self.shared.lan().send(node, node, PeerMsg::Shutdown);
        let handle = self.threads.lock()[node.index()]
            .take()
            .expect("node thread already gone");
        handle.join().expect("node thread panicked");
    }

    /// Start the heartbeat failure detector: every `interval` it pings each
    /// member's service thread through the transport and walks unresponsive
    /// members `Up` → `Suspect` → (after `max_misses` consecutive misses)
    /// `Down`, repairing the directory around them exactly like
    /// [`Middleware::crash_node`]. Pings bypass the chaos wrapper, so
    /// detection reflects real thread liveness rather than injected link
    /// faults.
    ///
    /// Detection timing is wall-clock driven and thus intentionally *not*
    /// deterministic; replay-exact tests drive membership transitions
    /// explicitly instead of enabling the monitor.
    ///
    /// # Panics
    /// Panics if a monitor is already running.
    pub fn start_heartbeat(&self, interval: Duration, timeout: Duration, max_misses: u32) {
        let mut slot = self.monitor.lock();
        assert!(slot.is_none(), "heartbeat monitor already running");
        let stop = Arc::new(AtomicBool::new(false));
        let shared = self.shared.clone();
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("ccm-hb-monitor".into())
            .spawn(move || heartbeat_loop(shared, flag, interval, timeout, max_misses))
            .expect("spawn heartbeat monitor");
        *slot = Some((stop, handle));
    }

    /// Quiescent-state audit (tests): protocol invariants plus hint-chain
    /// convergence — every live node locates every master within one
    /// bounded forwarding chain, after which its hint is exact. Mutates
    /// hint state, so capture [`Middleware::hint_stats`] *before* auditing
    /// when comparing runs.
    pub fn audit_quiescent(&self) {
        self.shared.cache.lock().audit_hint_convergence();
    }

    /// Crash `node`: its service thread stops, its block store is wiped, and
    /// the protocol directory is repaired — each of its masters is
    /// re-mastered from a surviving replica or degraded to disk-only, and
    /// its replicas are purged. Messages queued at the node die with it.
    ///
    /// # Panics
    /// Panics if the node is out of range or already down.
    pub fn crash_node(&self, node: NodeId) -> RepairReport {
        assert!(node.index() < self.nodes(), "no such node");
        assert!(
            self.shared.alive[node.index()].swap(false, Ordering::AcqRel),
            "node {node:?} is already down"
        );
        // The Shutdown races ahead of the join: once the thread exits, its
        // receiver drops and in-flight sends to it start failing fast.
        // (Shutdown is control-plane: every transport delivers it locally.)
        self.shared.lan().send(node, node, PeerMsg::Shutdown);
        let handle = self.threads.lock()[node.index()]
            .take()
            .expect("alive node must have a thread");
        handle.join().expect("node thread panicked");
        self.shared.stores[node.index()].lock().clear();
        self.shared.obs.node(node).store_blocks.set(0);
        let (report, moves) = self.shared.cache.lock().fail_node_with_moves(node);
        self.shared.recover_dirty_after_crash(node, &moves);
        let epoch = self.shared.membership.transition(node, MemberState::Down);
        self.shared.obs.epoch.set(epoch as i64);
        report
    }

    /// Restart a crashed `node` with a cold cache and an empty inbox.
    ///
    /// # Panics
    /// Panics if the node is out of range or not down.
    pub fn restart_node(&self, node: NodeId) {
        assert!(node.index() < self.nodes(), "no such node");
        assert!(!self.shared.is_alive(node), "node {node:?} is not down");
        let inbox = self.shared.lan().reconnect(node);
        let handle = spawn_service(&self.shared, node, inbox);
        self.threads.lock()[node.index()] = Some(handle);
        self.shared.cache.lock().revive_node(node);
        self.shared.alive[node.index()].store(true, Ordering::Release);
        let epoch = self.shared.membership.transition(node, MemberState::Up);
        self.shared.obs.epoch.set(epoch as i64);
    }

    /// Quiesce the data plane: release every delayed message, then round-trip
    /// a [`PeerMsg::Barrier`] through each live node so all queued traffic is
    /// processed. After this, node stores reflect every protocol decision
    /// made so far — the state is a deterministic function of the operation
    /// history, which the replayability tests rely on.
    pub fn quiesce(&self) {
        self.shared.chaos.flush();
        for i in 0..self.nodes() {
            let node = NodeId(i as u16);
            if self.shared.is_alive(node) {
                self.shared.lan().barrier(node, Duration::from_secs(10));
            }
        }
    }

    /// Verify protocol invariants (tests; takes the cache lock).
    pub fn check_invariants(&self) {
        self.shared.cache.lock().check_invariants();
    }

    /// Stop all service threads and join them. Under write-back the dirty
    /// set is drained first (graceful shutdown loses nothing); an abortive
    /// teardown is `drop` without `shutdown`, which skips the flush.
    pub fn shutdown(self) {
        self.shared.flush_dirty();
        self.stop_threads(true);
    }

    fn stop_threads(&self, strict: bool) {
        if let Some((stop, handle)) = self.flusher.lock().take() {
            stop.store(true, Ordering::Release);
            let joined = handle.join();
            if strict {
                joined.expect("write-back flusher panicked");
            }
        }
        if let Some((stop, handle)) = self.monitor.lock().take() {
            stop.store(true, Ordering::Release);
            let joined = handle.join();
            if strict {
                joined.expect("heartbeat monitor panicked");
            }
        }
        for i in 0..self.nodes() {
            // Sends to already-crashed nodes fail harmlessly.
            let node = NodeId(i as u16);
            self.shared.lan().send(node, node, PeerMsg::Shutdown);
        }
        for slot in self.threads.lock().iter_mut() {
            if let Some(t) = slot.take() {
                let joined = t.join();
                if strict {
                    joined.expect("node thread panicked");
                }
            }
        }
    }
}

impl Drop for Middleware {
    fn drop(&mut self) {
        // Best-effort shutdown if the user forgot; ignore already-dead nodes.
        self.stop_threads(false);
    }
}

/// The background write-back flusher behind `WriteConfig::flush_interval`:
/// drain the dirty ledger every interval. Wall-clock driven, hence (like
/// the heartbeat monitor) intentionally not deterministic; replay-exact
/// tests flush explicitly instead.
fn flusher_loop(shared: Arc<Shared>, stop: Arc<AtomicBool>, interval: Duration) {
    while !stop.load(Ordering::Acquire) {
        // Sleep in small slices so a stop request is honored promptly.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::Acquire) {
            let slice = (interval - slept).min(Duration::from_millis(10));
            std::thread::sleep(slice);
            slept += slice;
        }
        if !stop.load(Ordering::Acquire) {
            shared.flush_dirty();
        }
    }
}

fn spawn_service(shared: &Arc<Shared>, node: NodeId, inbox: Receiver<PeerMsg>) -> JoinHandle<()> {
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("ccm-node-{}", node.index()))
        .spawn(move || service_loop(shared, node, inbox))
        .expect("spawn node thread")
}

/// The failure-detector loop behind [`Middleware::start_heartbeat`]: sweep
/// every member each `interval`, walking non-responders Up → Suspect →
/// Down and repairing the directory around the declared-dead node.
fn heartbeat_loop(
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    interval: Duration,
    timeout: Duration,
    max_misses: u32,
) {
    let nodes = shared.chaos.nodes();
    let mut misses = vec![0u32; nodes];
    while !stop.load(Ordering::Acquire) {
        for (i, missed) in misses.iter_mut().enumerate() {
            let node = NodeId(i as u16);
            if !shared.membership.is_member(node) {
                *missed = 0;
                continue;
            }
            // Pings bypass the chaos wrapper (shared.lan() is the inner
            // transport): detection reflects real thread liveness, not
            // injected link faults.
            if shared.lan().ping(node, node, timeout) {
                *missed = 0;
                if shared.membership.state(node) == MemberState::Suspect {
                    let epoch = shared.membership.transition(node, MemberState::Up);
                    shared.obs.epoch.set(epoch as i64);
                }
                continue;
            }
            *missed += 1;
            if *missed >= max_misses {
                // Declare it dead and repair around it, exactly like an
                // explicit crash. The thread is unreachable — there is
                // nothing to join; its handle (if any) is reaped by
                // shutdown.
                shared.alive[i].store(false, Ordering::Release);
                shared.stores[i].lock().clear();
                shared.obs.node(node).store_blocks.set(0);
                let moves = {
                    let mut cache = shared.cache.lock();
                    if !cache.is_down(node) {
                        cache.fail_node_with_moves(node).1
                    } else {
                        Vec::new()
                    }
                };
                shared.recover_dirty_after_crash(node, &moves);
                let epoch = shared.membership.transition(node, MemberState::Down);
                shared.obs.epoch.set(epoch as i64);
                *missed = 0;
            } else if shared.membership.state(node) == MemberState::Up {
                let epoch = shared.membership.transition(node, MemberState::Suspect);
                shared.obs.epoch.set(epoch as i64);
            }
        }
        // Sleep in small slices so a stop request is honored promptly.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::Acquire) {
            let slice = (interval - slept).min(Duration::from_millis(10));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

impl NodeHandle {
    /// The node this handle reads through.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Read one block through the cooperative cache.
    ///
    /// # Panics
    /// Panics if this handle's node is crashed.
    pub fn read_block(&self, block: BlockId) -> Arc<Vec<u8>> {
        self.read_block_traced(block).0
    }

    /// Read one block, also returning its trace-ring request id so the
    /// block-path hops can be pulled from [`Middleware::trace`] afterwards
    /// (0 means untraced — the `obs-off` build).
    ///
    /// # Panics
    /// Panics if this handle's node is crashed.
    pub fn read_block_traced(&self, block: BlockId) -> (Arc<Vec<u8>>, u64) {
        assert!(
            self.shared.is_alive(self.node),
            "node {:?} is down",
            self.node
        );
        let obs = &self.shared.obs;
        let me = self.node.index() as u16;
        let req = obs.trace.next_req_id();
        obs.trace.push(
            req,
            me,
            Hop::Dispatch {
                file: block.file.0,
                block: block.index,
            },
        );
        let sw = Stopwatch::start();
        let (outcome, trail, hints_before, hints_after, adm_before, adm_after) = {
            let mut cache = self.shared.cache.lock();
            let before = cache.hint_stats();
            let adm_before = cache.admission_stats();
            let outcome = cache.access(self.node, block);
            let after = cache.hint_stats();
            let adm_after = cache.admission_stats();
            (
                outcome,
                cache.take_hint_trail(),
                before,
                after,
                adm_before,
                adm_after,
            )
        };
        obs.hint_hits
            .add(hints_after.correct - hints_before.correct);
        obs.hint_stale.add(hints_after.stale - hints_before.stale);
        obs.hint_forward_hops
            .add(hints_after.forward_hops - hints_before.forward_hops);
        obs.admission_admitted
            .add(adm_after.admitted - adm_before.admitted);
        obs.admission_rejected
            .add(adm_after.rejected - adm_before.rejected);
        obs.admission_ghost_hits
            .add(adm_after.ghost_hits - adm_before.ghost_hits);
        // Replay the wasted hint-chain hops as real round trips: each node a
        // stale hint pointed at is asked and answers "not here"; the reply
        // is discarded — the authoritative outcome below already accounts
        // for where the bytes are. This is what makes stale hints cost real
        // network time on both backends.
        for hop in trail {
            if self.shared.is_alive(hop) {
                let _ =
                    self.shared
                        .chaos
                        .fetch_block(self.node, hop, block, self.shared.fetch_timeout);
            }
        }
        let (data, class) = match outcome {
            AccessOutcome::LocalHit { kind } => {
                let _ = kind;
                match self.shared.store_get(self.node, block) {
                    Some(data) => {
                        obs.trace.push(req, me, Hop::LocalHit);
                        (data, ReadClass::Local)
                    }
                    None => {
                        // Our bytes are still in flight (concurrent fetch of
                        // the same block); the backing store is authoritative
                        // — unless the block is write-back dirty, in which
                        // case the dirty owner's store is.
                        obs.node(self.node).store_fallbacks.inc();
                        obs.trace.push(req, me, Hop::DiskFallback);
                        let data = self.shared.fallback_read(self.node, block);
                        self.shared.store_insert(self.node, block, data.clone());
                        (data, ReadClass::Fallback)
                    }
                }
            }
            AccessOutcome::RemoteHit {
                from,
                eviction,
                admitted,
                ..
            } => {
                if let Some(e) = eviction {
                    self.shared.apply_eviction(self.node, e, req);
                }
                obs.trace.push(
                    req,
                    me,
                    Hop::PeerFetch {
                        from: from.index() as u16,
                    },
                );
                // A holder that died since the directory decision cannot
                // answer; skip the round trip and its timeout.
                let fetched = if self.shared.is_alive(from) {
                    self.shared
                        .chaos
                        .fetch_block(self.node, from, block, self.shared.fetch_timeout)
                } else {
                    None
                };
                let (data, class) = match fetched {
                    Some(bytes) => {
                        obs.trace.push(
                            req,
                            me,
                            Hop::PeerReply {
                                bytes: bytes.len() as u64,
                            },
                        );
                        (Arc::new(bytes), ReadClass::Remote)
                    }
                    None => {
                        // The §3 race: the holder discarded the block (or the
                        // message was lost, or the holder crashed) while our
                        // request was in flight → eventual disk read. For a
                        // write-back dirty block the disk image is stale;
                        // `fallback_read` serves the dirty owner's bytes.
                        obs.node(self.node).store_fallbacks.inc();
                        obs.trace.push(req, me, Hop::DiskFallback);
                        (
                            self.shared.fallback_read(self.node, block),
                            ReadClass::Fallback,
                        )
                    }
                };
                // The admission filter can serve the bytes without caching
                // them: the data plane mirrors the protocol decision, so a
                // rejected replica is never installed in our store.
                if admitted {
                    self.shared.store_insert(self.node, block, data.clone());
                }
                (data, class)
            }
            AccessOutcome::DiskRead { eviction, .. } => {
                if let Some(e) = eviction {
                    self.shared.apply_eviction(self.node, e, req);
                }
                obs.trace.push(req, me, Hop::DiskRead);
                let data = self.shared.disk_read(self.node, block);
                self.shared.store_insert(self.node, block, data.clone());
                (data, ReadClass::Disk)
            }
        };
        sw.stop(&obs.fetch_ns[class as usize]);
        obs.node(self.node).reads[class as usize].inc();
        obs.trace.push(
            req,
            me,
            Hop::Serve {
                bytes: data.len() as u64,
            },
        );
        (data, req)
    }

    /// Read a whole file through the cooperative cache.
    ///
    /// # Panics
    /// Panics if the file is outside the catalog.
    pub fn read_file(&self, file: FileId) -> Vec<u8> {
        self.read_file_traced(file).0
    }

    /// Read a whole file, also returning the trace-ring request id of each
    /// block read (for post-mortem trace dumps; all 0 under `obs-off`).
    ///
    /// # Panics
    /// Panics if the file is outside the catalog.
    pub fn read_file_traced(&self, file: FileId) -> (Vec<u8>, Vec<u64>) {
        let size = self.shared.catalog.size_of(file) as usize;
        let blocks = self.shared.catalog.blocks_of(file);
        let mut out = Vec::with_capacity(size);
        let mut reqs = Vec::with_capacity(blocks as usize);
        for b in 0..blocks {
            let (data, req) = self.read_block_traced(BlockId::new(file, b));
            out.extend_from_slice(&data);
            reqs.push(req);
        }
        (out, reqs)
    }

    /// Overwrite one whole block through the cooperative cache (the §6
    /// writes extension): invalidate every other node's copy and become
    /// the master holder. Persistence depends on the configured
    /// [`WriteMode`]: write-through persists to the backing store before
    /// the protocol invalidation fans out (a returned `Ok` is durable);
    /// write-back acknowledges from this node's store as a *dirty master*
    /// and defers persistence to a flush (see [`crate::write`] for the
    /// durability contract).
    ///
    /// Same-block writes are serialized on a per-block lock held across
    /// persist, the protocol write, and the invalidation fan-out, so
    /// concurrent writers to one block persist in exactly the order the
    /// protocol observes. Writes to distinct blocks and concurrent reads
    /// of anything proceed in parallel.
    ///
    /// # Errors
    /// [`WriteError::ReadOnlyStore`] if the backing store refuses writes
    /// (write-through only; write-back defers the store to flush time,
    /// where a refusal surfaces as a recorded lost write).
    ///
    /// # Panics
    /// Panics if this handle's node is crashed.
    pub fn write_block(&self, block: BlockId, data: &[u8]) -> Result<(), WriteError> {
        assert!(
            self.shared.is_alive(self.node),
            "node {:?} is down",
            self.node
        );
        let mode = self.shared.write_cfg.mode;
        let lock = self.shared.write_lock(block);
        let eviction;
        {
            let _serialize = lock.lock();
            if mode == WriteMode::Through {
                // 1. Write-through first: once peers are invalidated, any
                //    of their re-reads may fall through to the store and
                //    must see new data. `persist` also fences every disk
                //    service's readahead/coalescing state so no superseded
                //    bytes linger in (or keep flowing into) a disk-side
                //    cache.
                if !self.shared.persist(self.node, block, data) {
                    return Err(WriteError::ReadOnlyStore);
                }
            }
            // 2. Protocol write (atomic): invalidate + become master.
            let version = self.shared.write_version.fetch_add(1, Ordering::Relaxed) + 1;
            let out = self.shared.cache.lock().write(self.node, block);
            eviction = out.eviction;
            // 3. Data plane: drop superseded copies, install ours.
            //    Coherence invalidations route through the chaos wrapper
            //    but are never dropped (see the fault model); they do
            //    flush any delayed traffic on their link.
            for peer in out.invalidated {
                self.shared.chaos.send(
                    self.node,
                    peer,
                    PeerMsg::WriteInvalidate { block, version },
                );
            }
            if let Some(m) = out.superseded_master {
                self.shared
                    .chaos
                    .send(self.node, m, PeerMsg::WriteInvalidate { block, version });
            }
            self.shared
                .store_insert(self.node, block, Arc::new(data.to_vec()));
            if mode == WriteMode::Back {
                // The ack: our store now holds the only current copy.
                // (This also retargets the ledger when we supersede
                // another node's dirty master — its queued invalidation
                // will drop the old bytes.)
                self.shared.mark_dirty(self.node, block, digest_bytes(data));
            }
            self.shared.obs.node(self.node).writes.inc();
        }
        // Outside the per-block lock: the eviction concerns a *different*
        // block (a dirty victim is flushed under its own lock — nesting
        // the two would invert lock order against a concurrent writer of
        // the victim), and budget enforcement flushes other blocks too.
        if let Some(e) = eviction {
            self.shared.apply_eviction(self.node, e, 0);
        }
        if mode == WriteMode::Back {
            self.shared.enforce_dirty_budget();
        }
        Ok(())
    }

    /// What kind of copy of `block` this node currently caches (diagnostic).
    pub fn cached_as(&self, block: BlockId) -> Option<CopyKind> {
        self.shared.cache.lock().node(self.node).lookup(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{read_file_direct, SyntheticStore};

    fn catalog(files: usize, size: u64) -> Catalog {
        Catalog::new(vec![size; files])
    }

    fn start(nodes: usize, cap: usize, files: usize, size: u64) -> Middleware {
        let cat = catalog(files, size);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        Middleware::start(
            RtConfig {
                nodes,
                capacity_blocks: cap,
                policy: ReplacementPolicy::MasterPreserving,
                ..RtConfig::default()
            },
            cat,
            store,
        )
    }

    #[test]
    fn single_node_read_round_trip() {
        let mw = start(1, 64, 4, 20_000);
        let h = mw.handle(NodeId(0));
        let cat = mw.catalog().clone();
        let store = SyntheticStore::new(cat.clone(), 42);
        for f in 0..4u32 {
            let got = h.read_file(FileId(f));
            let want = read_file_direct(&store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} corrupted");
        }
        let s = mw.stats();
        assert!(s.disk_reads > 0);
        assert_eq!(s.remote_hits, 0, "single node has no peers");
        mw.shutdown();
    }

    #[test]
    fn remote_hits_serve_peer_cached_blocks() {
        let mw = start(2, 64, 2, 20_000);
        let h0 = mw.handle(NodeId(0));
        let h1 = mw.handle(NodeId(1));
        let a = h0.read_file(FileId(0));
        let b = h1.read_file(FileId(0));
        assert_eq!(a, b);
        let s = mw.stats();
        assert!(
            s.remote_hits > 0,
            "second reader should hit node 0's masters"
        );
        assert_eq!(mw.store_fallbacks(), 0, "no races in sequential use");
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn repeated_reads_are_local_hits() {
        let mw = start(2, 64, 1, 30_000);
        let h = mw.handle(NodeId(1));
        h.read_file(FileId(0));
        let before = mw.stats();
        h.read_file(FileId(0));
        let after = mw.stats();
        assert_eq!(
            after.local_hits - before.local_hits,
            mw.catalog().blocks_of(FileId(0)) as u64
        );
        assert_eq!(after.disk_reads, before.disk_reads);
        mw.shutdown();
    }

    #[test]
    fn eviction_and_forwarding_preserve_integrity() {
        // Tiny caches force heavy eviction/forwarding traffic.
        let mw = start(3, 8, 20, 24_000);
        let cat = mw.catalog().clone();
        let store = SyntheticStore::new(cat.clone(), 42);
        for round in 0..3 {
            for f in 0..20u32 {
                let node = NodeId(((f as usize + round) % 3) as u16);
                let got = mw.handle(node).read_file(FileId(f));
                let want = read_file_direct(&store, &cat, FileId(f));
                assert_eq!(got, want, "file {f} corrupted in round {round}");
            }
        }
        mw.check_invariants();
        let s = mw.stats();
        assert!(s.evict_drops + s.forwards > 0, "caches must have churned");
        mw.shutdown();
    }

    #[test]
    fn concurrent_readers_stay_consistent() {
        let mw = Arc::new(start(4, 32, 30, 20_000));
        let cat = mw.catalog().clone();
        let mut threads = Vec::new();
        for t in 0..8u16 {
            let mw = mw.clone();
            let cat = cat.clone();
            threads.push(std::thread::spawn(move || {
                let store = SyntheticStore::new(cat.clone(), 42);
                let h = mw.handle(NodeId(t % 4));
                let mut rng = simcore::Rng::new(t as u64);
                for _ in 0..200 {
                    let f = FileId(rng.next_below(30) as u32);
                    let got = h.read_file(f);
                    let want = read_file_direct(&store, &cat, f);
                    assert_eq!(got, want, "file {f:?} corrupted under concurrency");
                }
            }));
        }
        for t in threads {
            t.join().expect("reader panicked");
        }
        mw.check_invariants();
        // Fallbacks may legitimately occur under concurrency; the point is
        // that they never broke integrity above.
        let s = mw.stats();
        assert!(s.accesses() >= 8 * 200);
        Arc::try_unwrap(mw).ok().expect("sole owner").shutdown();
    }

    #[test]
    fn capacity_is_respected() {
        let mw = start(2, 16, 10, 40_000);
        for f in 0..10u32 {
            mw.handle(NodeId(0)).read_file(FileId(f));
        }
        let total = {
            let cache = &mw.shared.cache;
            let c = cache.lock();
            c.resident_blocks()
        };
        assert!(total <= 2 * 16, "resident {total} blocks exceed capacity");
        mw.shutdown();
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let mw = start(2, 16, 2, 10_000);
        mw.handle(NodeId(0)).read_file(FileId(0));
        drop(mw); // Drop impl joins the threads
    }

    #[test]
    fn writes_propagate_to_all_readers() {
        use crate::store::MemStore;
        let cat = catalog(4, 20_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 64,
                policy: ReplacementPolicy::MasterPreserving,
                ..RtConfig::default()
            },
            cat.clone(),
            store,
        );
        // Everyone warms up on file 0.
        for n in 0..3u16 {
            mw.handle(NodeId(n)).read_file(FileId(0));
        }
        // Node 2 overwrites block 1 of file 0.
        let block = BlockId::new(FileId(0), 1);
        let new_data = vec![0xAB; cat.block_bytes(block) as usize];
        mw.handle(NodeId(2))
            .write_block(block, &new_data)
            .expect("MemStore accepts writes");
        // Every node now reads the new bytes.
        for n in 0..3u16 {
            let got = mw.handle(NodeId(n)).read_block(block);
            assert_eq!(&*got, &new_data, "node {n} saw stale data");
        }
        let s = mw.stats();
        assert_eq!(s.writes, 1);
        assert!(s.invalidations >= 1);
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn writes_to_read_only_store_are_rejected() {
        let mw = start(2, 16, 2, 10_000);
        let block = BlockId::new(FileId(0), 0);
        let err = mw.handle(NodeId(0)).write_block(block, &[1, 2, 3]);
        assert_eq!(err, Err(WriteError::ReadOnlyStore));
        assert_eq!(mw.stats().writes, 0, "protocol untouched on refusal");
        mw.shutdown();
    }

    #[test]
    fn concurrent_disjoint_writers_and_readers() {
        use crate::store::MemStore;
        let cat = catalog(16, 16_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Arc::new(Middleware::start(
            RtConfig {
                nodes: 4,
                capacity_blocks: 32,
                policy: ReplacementPolicy::MasterPreserving,
                ..RtConfig::default()
            },
            cat.clone(),
            store,
        ));
        let mut threads = Vec::new();
        for t in 0..4u16 {
            let mw = mw.clone();
            let cat = cat.clone();
            threads.push(std::thread::spawn(move || {
                let h = mw.handle(NodeId(t));
                // Each thread owns files 4t..4t+4 for writing.
                for round in 0..20u8 {
                    for f in (t as u32 * 4)..(t as u32 * 4 + 4) {
                        let file = FileId(f);
                        let block = BlockId::new(file, 0);
                        let payload = vec![round ^ t as u8; cat.block_bytes(block) as usize];
                        h.write_block(block, &payload)
                            .expect("MemStore accepts writes");
                        let got = h.read_block(block);
                        assert_eq!(&*got, &payload, "writer read back stale data");
                    }
                }
            }));
        }
        for t in threads {
            t.join().expect("writer panicked");
        }
        mw.check_invariants();
        assert_eq!(mw.stats().writes, 4 * 20 * 4);
        Arc::try_unwrap(mw).ok().expect("sole owner").shutdown();
    }

    #[test]
    fn node_failure_degrades_to_store_fallback() {
        // Raw failure (no repair): kill one node's service thread behind the
        // protocol's back; peers whose remote hits target it must fall back
        // to the backing store and keep returning correct bytes.
        use crate::store::read_file_direct;
        let cat = catalog(6, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 64,
                policy: ReplacementPolicy::MasterPreserving,
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        // Node 0 masters everything.
        for f in 0..6u32 {
            mw.handle(NodeId(0)).read_file(FileId(f));
        }
        // Kill node 0's service thread (simulated crash).
        mw.shared
            .lan()
            .send(NodeId(0), NodeId(0), PeerMsg::Shutdown);
        // Node 1 still reads correct data for every file.
        for f in 0..6u32 {
            let got = mw.handle(NodeId(1)).read_file(FileId(f));
            let want = read_file_direct(&*store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} wrong after node failure");
        }
        assert!(
            mw.store_fallbacks() > 0,
            "fallbacks must have covered the dead node"
        );
        drop(mw);
    }

    #[test]
    fn crash_repairs_directory_and_restart_rejoins_cold() {
        let cat = catalog(6, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 64,
                policy: ReplacementPolicy::MasterPreserving,
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        // Node 0 masters everything; node 1 replicates files 0..3.
        for f in 0..6u32 {
            mw.handle(NodeId(0)).read_file(FileId(f));
        }
        for f in 0..3u32 {
            mw.handle(NodeId(1)).read_file(FileId(f));
        }
        mw.quiesce();
        let report = mw.crash_node(NodeId(0));
        assert!(!mw.is_alive(NodeId(0)));
        assert!(report.remastered > 0, "replicated files must re-master");
        assert!(report.lost_masters > 0, "unreplicated files must be lost");
        mw.check_invariants();
        let s = mw.stats();
        assert_eq!(s.node_repairs, 1);
        assert_eq!(s.remasters, report.remastered as u64);
        assert_eq!(s.lost_masters, report.lost_masters as u64);
        // Survivors keep serving every file, byte-exact.
        for f in 0..6u32 {
            let got = mw.handle(NodeId(1)).read_file(FileId(f));
            let want = read_file_direct(&*store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} wrong after crash repair");
        }
        mw.check_invariants();
        // Restart: node 0 rejoins cold and serves correctly again.
        mw.restart_node(NodeId(0));
        assert!(mw.is_alive(NodeId(0)));
        assert_eq!(
            mw.handle(NodeId(0)).cached_as(BlockId::new(FileId(0), 0)),
            None
        );
        for f in 0..6u32 {
            let got = mw.handle(NodeId(0)).read_file(FileId(f));
            let want = read_file_direct(&*store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} wrong after restart");
        }
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    #[should_panic(expected = "is down")]
    fn read_through_crashed_node_panics() {
        let mw = start(2, 16, 2, 10_000);
        mw.crash_node(NodeId(1));
        let h = mw.handle(NodeId(1));
        let _ = h.read_block(BlockId::new(FileId(0), 0));
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_crash_panics() {
        let mw = start(2, 16, 2, 10_000);
        mw.crash_node(NodeId(1));
        mw.crash_node(NodeId(1));
    }

    #[test]
    fn faulty_links_never_corrupt_data() {
        use crate::fault::{FaultPlan, LinkFaults};
        let cat = catalog(10, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 16,
                policy: ReplacementPolicy::MasterPreserving,
                fetch_timeout: Duration::from_millis(50),
                faults: Some(FaultPlan {
                    seed: 9,
                    link: LinkFaults {
                        drop_prob: 0.2,
                        dup_prob: 0.05,
                        delay_prob: 0.1,
                        delay_sends: 3,
                    },
                    crashes: Vec::new(),
                    disk: Default::default(),
                }),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        for round in 0..3 {
            for f in 0..10u32 {
                let node = NodeId(((f as usize + round) % 3) as u16);
                let got = mw.handle(node).read_file(FileId(f));
                let want = read_file_direct(&*store, &cat, FileId(f));
                assert_eq!(got, want, "file {f} corrupted under link faults");
            }
        }
        mw.check_invariants();
        let chaos = mw.chaos_stats();
        assert!(chaos.dropped > 0, "20% drops must have fired");
        mw.shutdown();
    }

    #[test]
    #[should_panic(expected = "no such node")]
    fn out_of_range_handle_panics() {
        let mw = start(2, 16, 2, 10_000);
        let _ = mw.handle(NodeId(5));
    }

    #[test]
    fn registry_counts_read_classes() {
        let mw = start(2, 64, 2, 20_000);
        let blocks = mw.catalog().blocks_of(FileId(0)) as u64;
        mw.handle(NodeId(0)).read_file(FileId(0)); // disk
        mw.handle(NodeId(0)).read_file(FileId(0)); // local
        mw.handle(NodeId(1)).read_file(FileId(0)); // remote
        let snap = mw.obs_snapshot();
        let class = |node: &str, class: &str| match snap
            .find("ccm_rt_reads_total", &[("class", class), ("node", node)])
            .map(|m| &m.value)
        {
            Some(ccm_obs::Value::Counter(v)) => *v,
            other => panic!("missing counter: {other:?}"),
        };
        assert_eq!(class("0", "disk"), blocks);
        assert_eq!(class("0", "local"), blocks);
        assert_eq!(class("1", "remote"), blocks);
        assert_eq!(class("1", "disk"), 0);
        // Snapshot-time gauge: the directory tracks both nodes' copies.
        assert!(matches!(
            snap.find("ccm_rt_directory_blocks", &[]).map(|m| &m.value),
            Some(&ccm_obs::Value::Gauge(g)) if g as u64 == 2 * blocks
        ));
        mw.shutdown();
    }

    #[test]
    fn stats_shim_equals_registry_fallback_counters() {
        // Equivalence pin for the store_fallbacks migration: the legacy
        // accessors and the registry family must always agree. Kill a
        // node's service thread behind the protocol's back to force
        // fallbacks (same shape as node_failure_degrades_to_store_fallback).
        let cat = catalog(6, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 64,
                policy: ReplacementPolicy::MasterPreserving,
                fetch_timeout: Duration::from_millis(50),
                ..RtConfig::default()
            },
            cat,
            store,
        );
        for f in 0..6u32 {
            mw.handle(NodeId(0)).read_file(FileId(f));
        }
        mw.shared
            .lan()
            .send(NodeId(0), NodeId(0), PeerMsg::Shutdown);
        for f in 0..6u32 {
            mw.handle(NodeId(1)).read_file(FileId(f));
        }
        let direct = mw.store_fallbacks();
        assert!(direct > 0, "dead node must force fallbacks");
        assert_eq!(mw.stats().store_fallbacks, direct);
        assert_eq!(
            mw.obs_snapshot()
                .counter_sum("ccm_rt_store_fallbacks_total"),
            direct
        );
        drop(mw);
    }

    #[test]
    fn join_rebalances_and_leave_hands_off() {
        let cat = catalog(8, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let members = Membership::with_initial(4, 3);
        let mw = Middleware::start_member(
            RtConfig {
                nodes: 4,
                capacity_blocks: 64,
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
            Arc::new(Lan::with_nodes(4)),
            members.clone(),
            DirectoryKind::Hint,
        );
        assert!(!mw.is_alive(NodeId(3)), "non-member starts cold");
        for f in 0..8u32 {
            mw.handle(NodeId(f as u16 % 3)).read_file(FileId(f));
        }
        mw.quiesce();
        let moved = mw.join_node(NodeId(3));
        assert!(moved > 0, "joiner must absorb a share of masters");
        assert!(mw.is_alive(NodeId(3)));
        assert!(members.is_member(NodeId(3)));
        assert!(mw.epoch() > 0, "join must bump the epoch");
        mw.audit_quiescent();
        for f in 0..8u32 {
            let got = mw.handle(NodeId(3)).read_file(FileId(f));
            let want = read_file_direct(&*store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} wrong after join");
        }
        mw.quiesce();
        let epoch_before_leave = mw.epoch();
        mw.leave_node(NodeId(1));
        assert!(!members.is_member(NodeId(1)));
        assert!(mw.epoch() > epoch_before_leave);
        mw.audit_quiescent();
        assert_eq!(
            mw.stats().lost_masters,
            0,
            "graceful leave must not lose blocks"
        );
        for f in 0..8u32 {
            let got = mw.handle(NodeId(0)).read_file(FileId(f));
            let want = read_file_direct(&*store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} wrong after leave");
        }
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn hint_metrics_are_registered_and_move() {
        let cat = catalog(6, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start_member(
            RtConfig {
                nodes: 3,
                capacity_blocks: 8, // tiny: force forwarding → stale hints
                ..RtConfig::default()
            },
            cat.clone(),
            store,
            Arc::new(Lan::with_nodes(3)),
            Membership::all_up(3),
            DirectoryKind::Hint,
        );
        for round in 0..3 {
            for f in 0..6u32 {
                let node = NodeId(((f as usize + round) % 3) as u16);
                mw.handle(node).read_file(FileId(f));
            }
        }
        let snap = mw.obs_snapshot();
        let counter = |name: &str| snap.counter_sum(name);
        let hs = mw.hint_stats();
        assert_eq!(counter("ccm_rt_hint_hits_total"), hs.correct);
        assert_eq!(counter("ccm_rt_hint_stale_total"), hs.stale);
        assert_eq!(counter("ccm_rt_hint_forward_hops_total"), hs.forward_hops);
        assert!(hs.lookups > 0, "hint directory must have been consulted");
        assert!(matches!(
            snap.find("ccm_rt_epoch", &[]).map(|m| &m.value),
            Some(&ccm_obs::Value::Gauge(0))
        ));
        mw.shutdown();
    }

    #[test]
    fn heartbeat_monitor_detects_silent_failure() {
        let cat = catalog(4, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 64,
                fetch_timeout: Duration::from_millis(50),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        for f in 0..4u32 {
            mw.handle(NodeId(2)).read_file(FileId(f));
        }
        mw.quiesce();
        let members = mw.membership();
        mw.sever_node(NodeId(2));
        assert!(members.is_member(NodeId(2)), "failure starts silent");
        mw.start_heartbeat(Duration::from_millis(5), Duration::from_millis(25), 2);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while members.state(NodeId(2)) != MemberState::Down {
            assert!(
                std::time::Instant::now() < deadline,
                "monitor never declared the severed node dead"
            );
            let e = members.epoch();
            members.wait_for_epoch(e + 1, Duration::from_millis(100));
        }
        assert!(!members.is_member(NodeId(2)));
        assert!(!mw.is_alive(NodeId(2)));
        assert_eq!(mw.stats().node_repairs, 1, "detection repairs once");
        // Survivors keep serving correct bytes around the dead node.
        for f in 0..4u32 {
            let got = mw.handle(NodeId(0)).read_file(FileId(f));
            let want = read_file_direct(&*store, &cat, FileId(f));
            assert_eq!(got, want, "file {f} wrong after detection");
        }
        mw.check_invariants();
        mw.shutdown();
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn trace_ring_records_the_block_path() {
        use ccm_obs::Hop;
        let mw = start(2, 64, 1, 20_000);
        // Remote-hit path: node 0 masters the block, node 1 fetches it.
        let block = BlockId::new(FileId(0), 0);
        mw.handle(NodeId(0)).read_block(block);
        let (_, req) = mw.handle(NodeId(1)).read_block_traced(block);
        assert!(req > 0, "instrumented build must assign request ids");
        let hops: Vec<Hop> = mw
            .trace()
            .dump_for(req)
            .into_iter()
            .map(|e| e.hop)
            .collect();
        assert_eq!(
            hops[0],
            Hop::Dispatch { file: 0, block: 0 },
            "first hop is the dispatch"
        );
        assert!(hops.contains(&Hop::PeerFetch { from: 0 }));
        assert!(matches!(hops.last(), Some(Hop::Serve { .. })));
        // The dump is valid JSON-ish and mentions the request.
        let json = mw.trace().dump_json();
        assert!(json.contains(&format!("\"req_id\":{req}")));
        mw.shutdown();
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn fetch_latency_histograms_fill_by_class() {
        let mw = start(2, 64, 2, 20_000);
        mw.handle(NodeId(0)).read_file(FileId(0));
        mw.handle(NodeId(0)).read_file(FileId(0));
        mw.handle(NodeId(1)).read_file(FileId(0));
        let snap = mw.obs_snapshot();
        for class in ["local", "remote", "disk"] {
            match snap
                .find("ccm_rt_fetch_latency_ns", &[("class", class)])
                .map(|m| &m.value)
            {
                Some(ccm_obs::Value::Histogram(h)) => {
                    assert!(h.count() > 0, "class {class} must have samples");
                    assert!(h.quantile(0.5) > 0, "latencies are nonzero");
                }
                other => panic!("missing histogram for {class}: {other:?}"),
            }
        }
        mw.shutdown();
    }

    #[test]
    fn concurrent_same_block_writers_persist_in_protocol_order() {
        // Pin for the write-ordering gap this module used to document:
        // without per-block serialization, two same-block writers could
        // persist to the store in one order while the protocol recorded
        // the other, leaving disk and directory disagreeing about which
        // write was last. With the per-block lock, the persisted bytes
        // must equal what the last *protocol* write installed — which is
        // what every node reads back.
        use crate::store::MemStore;
        let cat = catalog(1, 16_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Arc::new(Middleware::start(
            RtConfig {
                nodes: 4,
                capacity_blocks: 32,
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        ));
        let block = BlockId::new(FileId(0), 0);
        let len = cat.block_bytes(block) as usize;
        let mut threads = Vec::new();
        for t in 0..4u16 {
            let mw = mw.clone();
            threads.push(std::thread::spawn(move || {
                let h = mw.handle(NodeId(t));
                for round in 0..50u8 {
                    // Unique fill per (writer, round): 4*50 = 200 < 256.
                    let payload = vec![t as u8 * 50 + round; len];
                    h.write_block(block, &payload)
                        .expect("MemStore accepts writes");
                }
            }));
        }
        for t in threads {
            t.join().expect("writer panicked");
        }
        mw.quiesce();
        let via_protocol = mw.handle(NodeId(0)).read_block(block);
        let raw = store.read_block(block);
        assert_eq!(
            &*via_protocol, &raw,
            "store persisted a different write than the protocol observed last"
        );
        assert_eq!(mw.stats().writes, 200);
        mw.check_invariants();
        Arc::try_unwrap(mw).ok().expect("sole owner").shutdown();
    }

    #[test]
    fn write_back_acks_without_persisting_and_flush_drains() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        let cat = catalog(2, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 2,
                capacity_blocks: 32,
                write: WriteConfig::back(8),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let block = BlockId::new(FileId(0), 0);
        let payload = vec![0xAB; cat.block_bytes(block) as usize];
        mw.handle(NodeId(0))
            .write_block(block, &payload)
            .expect("write-back accepts writes");
        // Acked but not persisted: the store still serves the old image...
        assert_ne!(store.read_block(block), payload, "must not persist yet");
        assert_eq!(mw.dirty_blocks(), 1);
        // ...while every node coherently reads the new bytes.
        assert_eq!(&*mw.handle(NodeId(1)).read_block(block), &payload);
        let flushed = mw.flush_dirty();
        assert_eq!(flushed, 1);
        assert_eq!(store.read_block(block), payload, "flush must persist");
        assert_eq!(mw.dirty_blocks(), 0);
        let ws = mw.write_stats();
        assert_eq!((ws.writes, ws.flushes, ws.lost), (1, 1, 0));
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn write_back_budget_bounds_dirty_set() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        let cat = catalog(10, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 2,
                capacity_blocks: 64,
                write: WriteConfig::back(4),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let h = mw.handle(NodeId(0));
        let mut payloads = Vec::new();
        for f in 0..10u32 {
            let block = BlockId::new(FileId(f), 0);
            let payload = vec![f as u8 ^ 0xC3; cat.block_bytes(block) as usize];
            h.write_block(block, &payload).expect("write accepted");
            payloads.push((block, payload));
            assert!(
                mw.dirty_blocks() <= 4,
                "dirty set exceeded budget after write {f}"
            );
        }
        // Oldest-first: the six excess blocks were flushed in write order.
        for (block, payload) in &payloads[..6] {
            assert_eq!(&store.read_block(*block), payload, "{block:?} not flushed");
        }
        assert_eq!(mw.dirty_blocks(), 4);
        assert_eq!(mw.write_stats().flushes, 6);
        mw.shutdown();
    }

    #[test]
    fn dirty_eviction_flushes_instead_of_losing() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        // Single node, tiny cache, budget far above the write count: the
        // only flush pressure is eviction. A dirty master being evicted
        // must persist first — never drop the sole current copy.
        let cat = catalog(24, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 1,
                capacity_blocks: 8,
                write: WriteConfig::back(64),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let h = mw.handle(NodeId(0));
        let mut payloads = Vec::new();
        for f in 0..24u32 {
            let block = BlockId::new(FileId(f), 0);
            let payload = vec![f as u8 ^ 0x77; cat.block_bytes(block) as usize];
            h.write_block(block, &payload).expect("write accepted");
            payloads.push((block, payload));
        }
        let evicted_flushes = mw.write_stats().flushes;
        assert!(
            evicted_flushes >= 16,
            "evicting dirty masters must flush them (saw {evicted_flushes})"
        );
        assert!(mw.lost_writes().is_empty(), "nothing may be lost");
        mw.flush_dirty();
        for (block, payload) in &payloads {
            assert_eq!(&store.read_block(*block), payload, "{block:?} lost");
            assert_eq!(&*h.read_block(*block), payload, "{block:?} serves stale");
        }
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn write_back_crash_loses_boundedly_and_detectably() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        let cat = catalog(6, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 32,
                write: WriteConfig::back(8),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        // Node 2 dirties four blocks nobody re-reads: no current copy
        // survives its crash.
        let blocks: Vec<BlockId> = (0..4u32).map(|f| BlockId::new(FileId(f), 0)).collect();
        for &b in &blocks {
            let payload = vec![0xEE; cat.block_bytes(b) as usize];
            mw.handle(NodeId(2))
                .write_block(b, &payload)
                .expect("write");
        }
        mw.quiesce();
        assert_eq!(mw.dirty_blocks(), 4);
        mw.crash_node(NodeId(2));
        let lost = mw.lost_writes();
        assert_eq!(
            lost, blocks,
            "every unreplicated dirty block is lost — and named"
        );
        assert_eq!(mw.dirty_blocks(), 0, "ledger reconciled");
        let ws = mw.write_stats();
        assert_eq!((ws.lost, ws.recovered), (4, 0));
        // Lost blocks serve the last *persisted* image — the pristine
        // base — not garbage, and not a silent claim of the lost write.
        let pristine = SyntheticStore::new(cat.clone(), 42);
        for &b in &blocks {
            assert_eq!(
                &*mw.handle(NodeId(0)).read_block(b),
                &pristine.read_block(b),
                "lost block must serve the persisted image"
            );
        }
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn write_back_crash_recovers_from_survivor_replica() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        let cat = catalog(2, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 32,
                write: WriteConfig::back(8),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let block = BlockId::new(FileId(0), 0);
        let payload = vec![0x4D; cat.block_bytes(block) as usize];
        mw.handle(NodeId(2))
            .write_block(block, &payload)
            .expect("write");
        // Node 1 re-reads after the write: its replica holds the current
        // bytes, so the dirty master is no longer the only copy.
        assert_eq!(&*mw.handle(NodeId(1)).read_block(block), &payload);
        mw.quiesce();
        mw.crash_node(NodeId(2));
        assert!(
            mw.lost_writes().is_empty(),
            "the replica must rescue the write"
        );
        let ws = mw.write_stats();
        assert_eq!((ws.lost, ws.recovered), (0, 1));
        assert_eq!(store.read_block(block), payload, "recovery persists");
        assert_eq!(&*mw.handle(NodeId(0)).read_block(block), &payload);
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn graceful_leave_flushes_dirty_masters() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        let cat = catalog(4, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 3,
                capacity_blocks: 32,
                write: WriteConfig::back(16),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let mut payloads = Vec::new();
        for f in 0..3u32 {
            let block = BlockId::new(FileId(f), 0);
            let payload = vec![f as u8 ^ 0x91; cat.block_bytes(block) as usize];
            mw.handle(NodeId(1))
                .write_block(block, &payload)
                .expect("write");
            payloads.push((block, payload));
        }
        mw.quiesce();
        mw.leave_node(NodeId(1));
        assert!(mw.lost_writes().is_empty(), "graceful leave loses nothing");
        assert_eq!(mw.dirty_blocks(), 0, "leaver's dirty blocks were flushed");
        assert_eq!(mw.stats().lost_masters, 0);
        for (block, payload) in &payloads {
            assert_eq!(&store.read_block(*block), payload, "{block:?} not durable");
            assert_eq!(&*mw.handle(NodeId(0)).read_block(*block), payload);
        }
        mw.check_invariants();
        mw.shutdown();
    }

    #[test]
    fn shutdown_drains_the_dirty_set() {
        use crate::store::MemStore;
        use crate::write::WriteConfig;
        let cat = catalog(1, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 2,
                capacity_blocks: 16,
                write: WriteConfig::back(8),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let block = BlockId::new(FileId(0), 0);
        let payload = vec![0x3C; cat.block_bytes(block) as usize];
        mw.handle(NodeId(0))
            .write_block(block, &payload)
            .expect("write");
        mw.shutdown();
        assert_eq!(store.read_block(block), payload, "shutdown must flush");
    }

    #[test]
    fn background_flusher_persists_without_explicit_flush() {
        use crate::store::MemStore;
        use crate::write::{WriteConfig, WriteMode};
        let cat = catalog(1, 8_000);
        let store = Arc::new(MemStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 2,
                capacity_blocks: 16,
                write: WriteConfig {
                    mode: WriteMode::Back,
                    dirty_budget: 64,
                    flush_interval: Some(Duration::from_millis(5)),
                },
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let block = BlockId::new(FileId(0), 0);
        let payload = vec![0x6B; cat.block_bytes(block) as usize];
        mw.handle(NodeId(0))
            .write_block(block, &payload)
            .expect("write");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.read_block(block) != payload {
            assert!(
                std::time::Instant::now() < deadline,
                "background flusher never persisted the dirty block"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(mw.dirty_blocks(), 0);
        mw.shutdown();
    }

    #[test]
    fn admission_gates_replica_installs_and_exports_metrics() {
        use ccm_core::AdmissionConfig;
        let cat = catalog(2, 20_000);
        let store = Arc::new(SyntheticStore::new(cat.clone(), 42));
        let mw = Middleware::start(
            RtConfig {
                nodes: 2,
                capacity_blocks: 64,
                admission: Some(AdmissionConfig::new(16)),
                ..RtConfig::default()
            },
            cat.clone(),
            store.clone(),
        );
        let blocks = cat.blocks_of(FileId(0));
        let block = BlockId::new(FileId(0), 0);
        let want = read_file_direct(&*store, &cat, FileId(0));
        // Node 0 masters the file (disk reads are never admission-gated).
        mw.handle(NodeId(0)).read_file(FileId(0));
        // First remote touch: served but rejected — no replica cached, in
        // the directory *or* the data plane.
        assert_eq!(mw.handle(NodeId(1)).read_file(FileId(0)), want);
        assert_eq!(mw.handle(NodeId(1)).cached_as(block), None);
        // Second touch: every block ghost-hits and is admitted.
        assert_eq!(mw.handle(NodeId(1)).read_file(FileId(0)), want);
        mw.quiesce();
        assert_eq!(
            mw.handle(NodeId(1)).cached_as(block),
            Some(CopyKind::Replica)
        );
        let adm = mw.admission_stats();
        assert_eq!(adm.rejected, blocks as u64);
        assert_eq!(adm.ghost_hits, blocks as u64);
        assert_eq!(adm.admitted, blocks as u64);
        // The registry families mirror the protocol counters exactly.
        let snap = mw.obs_snapshot();
        assert_eq!(
            snap.counter_sum("ccm_rt_admission_rejected_total"),
            adm.rejected
        );
        assert_eq!(
            snap.counter_sum("ccm_rt_admission_admitted_total"),
            adm.admitted
        );
        assert_eq!(
            snap.counter_sum("ccm_rt_admission_ghost_hits_total"),
            adm.ghost_hits
        );
        // Third read is now a local hit on the admitted replica.
        let before = mw.stats().local_hits;
        assert_eq!(mw.handle(NodeId(1)).read_file(FileId(0)), want);
        assert_eq!(mw.stats().local_hits, before + blocks as u64);
        mw.check_invariants();
        mw.shutdown();
    }
}
