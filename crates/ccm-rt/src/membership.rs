//! Dynamic cluster membership: a shared, epoch-versioned member table.
//!
//! The cluster is provisioned at a fixed *capacity* of node slots (the
//! transport, observability, and cache layers are all sized once, at
//! start), but the *active* set — which slots currently participate in the
//! protocol — changes at runtime: nodes join cold, leave gracefully, crash
//! and restart, or are declared dead by the heartbeat monitor.
//!
//! [`Membership`] is the single source of truth for that active set. Every
//! state change bumps a monotonically increasing **epoch** and signals a
//! condvar, so any thread can block until the cluster configuration it
//! observed has changed ([`Membership::wait_for_epoch`]) instead of
//! polling. The epoch is exported as the `ccm_rt_epoch` gauge.
//!
//! The table itself is deliberately dumb: transitions are performed by
//! `Middleware` (join/leave/crash/repair), which pairs each one with the
//! corresponding cache re-mastering and data-plane work. Failure
//! *detection* lives in the heartbeat monitor
//! (`Middleware::start_heartbeat`), which pings service loops through the
//! `Transport` seam and walks unresponsive members Up → Suspect → Down.

use ccm_core::NodeId;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Lifecycle state of one provisioned node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Slot exists (transport bound, cache frame pool sized) but the node
    /// has never joined the cluster.
    Provisioned,
    /// Active member serving requests.
    Up,
    /// Missed at least one heartbeat; still treated as a member until the
    /// monitor gives up and declares it `Down`.
    Suspect,
    /// Crashed or declared dead: its memory is lost and repaired around.
    /// May rejoin (cold) later.
    Down,
    /// Left gracefully after handing its masters off. May rejoin later.
    Left,
}

impl MemberState {
    /// True for states that count as cluster members (`Up` or `Suspect` —
    /// a suspect is still routed to until the monitor declares it dead).
    pub fn is_member(self) -> bool {
        matches!(self, MemberState::Up | MemberState::Suspect)
    }
}

struct Table {
    epoch: u64,
    states: Vec<MemberState>,
}

/// Shared, epoch-versioned membership table for a cluster of fixed
/// capacity. Cheap to clone (an `Arc`); all clones observe the same state.
#[derive(Clone)]
pub struct Membership {
    inner: Arc<(Mutex<Table>, Condvar)>,
}

impl Membership {
    /// A static cluster: every one of `capacity` slots starts `Up` (the
    /// compatibility path used by `Middleware::start_on`). Epoch starts
    /// at 0.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn all_up(capacity: usize) -> Membership {
        Membership::with_initial(capacity, capacity)
    }

    /// A cluster provisioned for `capacity` slots of which the first
    /// `initial` start `Up`; the rest are `Provisioned` and may join later.
    ///
    /// # Panics
    /// Panics if `initial` is 0 or exceeds `capacity`.
    pub fn with_initial(capacity: usize, initial: usize) -> Membership {
        assert!(initial > 0, "a cluster needs at least one initial member");
        assert!(initial <= capacity, "more initial members than slots");
        let states = (0..capacity)
            .map(|i| {
                if i < initial {
                    MemberState::Up
                } else {
                    MemberState::Provisioned
                }
            })
            .collect();
        Membership {
            inner: Arc::new((Mutex::new(Table { epoch: 0, states }), Condvar::new())),
        }
    }

    /// Number of provisioned slots (fixed for the cluster's lifetime).
    pub fn capacity(&self) -> usize {
        self.inner.0.lock().unwrap().states.len()
    }

    /// The current epoch: bumped once per state transition.
    pub fn epoch(&self) -> u64 {
        self.inner.0.lock().unwrap().epoch
    }

    /// The state of one slot.
    pub fn state(&self, node: NodeId) -> MemberState {
        self.inner.0.lock().unwrap().states[node.index()]
    }

    /// True if `node` currently counts as a member (`Up` or `Suspect`).
    pub fn is_member(&self, node: NodeId) -> bool {
        self.state(node).is_member()
    }

    /// Member slots in ascending id order.
    pub fn members(&self) -> Vec<NodeId> {
        let t = self.inner.0.lock().unwrap();
        t.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_member())
            .map(|(i, _)| NodeId(i as u16))
            .collect()
    }

    /// Move `node` to `to`, bump the epoch, and wake all epoch waiters.
    /// Returns the new epoch. No-op transitions (same state) still bump the
    /// epoch — callers transition only on real changes, and a spurious bump
    /// is harmless (waiters re-check state).
    pub fn transition(&self, node: NodeId, to: MemberState) -> u64 {
        let (lock, cvar) = &*self.inner;
        let mut t = lock.lock().unwrap();
        t.states[node.index()] = to;
        t.epoch += 1;
        let epoch = t.epoch;
        cvar.notify_all();
        epoch
    }

    /// Block until the epoch reaches at least `at_least` or `timeout`
    /// elapses; returns the epoch observed on exit. The condvar-signalled
    /// path means joiners/monitors never poll the table.
    pub fn wait_for_epoch(&self, at_least: u64, timeout: Duration) -> u64 {
        let (lock, cvar) = &*self.inner;
        let t = lock.lock().unwrap();
        let (t, _) = cvar
            .wait_timeout_while(t, timeout, |t| t.epoch < at_least)
            .expect("membership lock poisoned");
        t.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_states_and_capacity() {
        let m = Membership::with_initial(4, 2);
        assert_eq!(m.capacity(), 4);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.state(NodeId(0)), MemberState::Up);
        assert_eq!(m.state(NodeId(1)), MemberState::Up);
        assert_eq!(m.state(NodeId(2)), MemberState::Provisioned);
        assert_eq!(m.members(), vec![NodeId(0), NodeId(1)]);
        let all = Membership::all_up(3);
        assert_eq!(all.members().len(), 3);
    }

    #[test]
    fn transitions_bump_the_epoch() {
        let m = Membership::with_initial(3, 2);
        assert_eq!(m.transition(NodeId(2), MemberState::Up), 1);
        assert_eq!(m.transition(NodeId(0), MemberState::Down), 2);
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.members(), vec![NodeId(1), NodeId(2)]);
        assert!(!m.is_member(NodeId(0)));
    }

    #[test]
    fn suspect_still_counts_as_member() {
        let m = Membership::all_up(2);
        m.transition(NodeId(1), MemberState::Suspect);
        assert!(m.is_member(NodeId(1)));
        m.transition(NodeId(1), MemberState::Down);
        assert!(!m.is_member(NodeId(1)));
    }

    #[test]
    fn wait_for_epoch_is_signalled_not_polled() {
        let m = Membership::all_up(2);
        let m2 = m.clone();
        let waiter = std::thread::spawn(move || m2.wait_for_epoch(1, Duration::from_secs(10)));
        // Give the waiter a moment to block, then signal.
        std::thread::sleep(Duration::from_millis(10));
        m.transition(NodeId(1), MemberState::Left);
        assert_eq!(waiter.join().unwrap(), 1);
        // Already-reached epochs return immediately.
        assert_eq!(m.wait_for_epoch(1, Duration::from_millis(1)), 1);
        // Unreached epochs time out and report the current value.
        assert_eq!(m.wait_for_epoch(99, Duration::from_millis(5)), 1);
    }
}
