//! Peer messages and the channel LAN.
//!
//! Each node owns an unbounded crossbeam receiver; any thread holding a
//! [`Lan`] can address any node. Data-plane replies travel on per-request
//! one-shot channels, as a real RPC layer would multiplex them.

use ccm_core::{BlockId, NodeId};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// A message between cluster nodes.
pub enum PeerMsg {
    /// "Send me a non-master copy of `block`" — answered with the bytes, or
    /// `None` if the block is no longer held (the in-flight race of §3; the
    /// requester falls through to the backing store).
    BlockRequest {
        /// The wanted block.
        block: BlockId,
        /// Where to deliver the reply.
        reply: Sender<Option<Vec<u8>>>,
    },
    /// An evicted master forwarded here (second chance); carries its bytes
    /// and, when the protocol displaced a block at this node to make room,
    /// which one to drop from the local store.
    Forward {
        /// The forwarded block.
        block: BlockId,
        /// Its content.
        data: Vec<u8>,
        /// Block dropped here to make room, if any.
        displace: Option<BlockId>,
    },
    /// A write elsewhere invalidated this node's copy of `block`; drop its
    /// bytes (§6 writes extension).
    Invalidate {
        /// The written block.
        block: BlockId,
    },
    /// Orderly shutdown of the node's service thread.
    Shutdown,
}

/// Addressable senders to every node.
#[derive(Clone)]
pub struct Lan {
    peers: Vec<Sender<PeerMsg>>,
}

impl Lan {
    /// Build the LAN; returns the shared sender fabric plus each node's
    /// receive end.
    pub fn new(nodes: usize) -> (Lan, Vec<Receiver<PeerMsg>>) {
        let mut peers = Vec::with_capacity(nodes);
        let mut inboxes = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            peers.push(tx);
            inboxes.push(rx);
        }
        (Lan { peers }, inboxes)
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.peers.len()
    }

    /// Send `msg` to `node`. Returns false if the node's service thread has
    /// already exited (its inbox is disconnected).
    pub fn send(&self, node: NodeId, msg: PeerMsg) -> bool {
        self.peers[node.index()].send(msg).is_ok()
    }

    /// Request `block` from `holder` and wait for the reply.
    ///
    /// `None` means either the holder no longer caches the block or its
    /// thread is gone; callers fall back to the backing store.
    pub fn fetch_block(&self, holder: NodeId, block: BlockId) -> Option<Vec<u8>> {
        let (reply_tx, reply_rx) = unbounded();
        if !self.send(
            holder,
            PeerMsg::BlockRequest {
                block,
                reply: reply_tx,
            },
        ) {
            return None;
        }
        reply_rx.recv().ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm_core::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    #[test]
    fn messages_arrive_in_order() {
        let (lan, inboxes) = Lan::new(2);
        assert_eq!(lan.nodes(), 2);
        assert!(lan.send(NodeId(1), PeerMsg::Forward { block: b(1), data: vec![1], displace: None }));
        assert!(lan.send(NodeId(1), PeerMsg::Forward { block: b(2), data: vec![2], displace: Some(b(9)) }));
        match inboxes[1].recv().unwrap() {
            PeerMsg::Forward { block, data, displace } => {
                assert_eq!(block, b(1));
                assert_eq!(data, vec![1]);
                assert_eq!(displace, None);
            }
            _ => panic!("wrong message"),
        }
        match inboxes[1].recv().unwrap() {
            PeerMsg::Forward { block, .. } => assert_eq!(block, b(2)),
            _ => panic!("wrong message"),
        }
        assert!(inboxes[0].is_empty());
    }

    #[test]
    fn fetch_block_round_trips() {
        let (lan, inboxes) = Lan::new(1);
        let server = std::thread::spawn({
            let inbox = inboxes[0].clone();
            move || match inbox.recv().unwrap() {
                PeerMsg::BlockRequest { block, reply } => {
                    assert_eq!(block, b(7));
                    reply.send(Some(vec![42])).unwrap();
                }
                _ => panic!("wrong message"),
            }
        });
        let got = lan.fetch_block(NodeId(0), b(7));
        assert_eq!(got, Some(vec![42]));
        server.join().unwrap();
    }

    #[test]
    fn fetch_from_dead_node_is_none() {
        let (lan, inboxes) = Lan::new(1);
        drop(inboxes); // the service thread is gone
        assert_eq!(lan.fetch_block(NodeId(0), b(1)), None);
        assert!(!lan.send(NodeId(0), PeerMsg::Shutdown));
    }

    #[test]
    fn dropped_reply_sender_reads_as_none() {
        let (lan, inboxes) = Lan::new(1);
        let server = std::thread::spawn({
            let inbox = inboxes[0].clone();
            move || {
                if let PeerMsg::BlockRequest { reply, .. } = inbox.recv().unwrap() {
                    drop(reply); // simulate a crash mid-request
                }
            }
        });
        assert_eq!(lan.fetch_block(NodeId(0), b(1)), None);
        server.join().unwrap();
    }
}
