//! Peer messages, the transport abstraction, and the channel LAN.
//!
//! [`Transport`] is the seam between the middleware and whatever carries its
//! peer traffic. Two backends implement it: the in-process channel [`Lan`]
//! defined here (the original emulated LAN), and `ccm-net`'s `TcpLan`, which
//! moves the same [`PeerMsg`] traffic over real TCP sockets. [`Middleware`],
//! the `ChaosLan` fault injector, and `ccm-httpd` are all written against
//! the trait and run unchanged over either backend.
//!
//! In the channel backend each node owns an unbounded receiver; any thread
//! holding a [`Lan`] can address any node. Data-plane replies travel on
//! per-request one-shot channels, as a real RPC layer would multiplex them.
//! (A socket backend cannot ship a channel sender across the wire; it keeps
//! the same in-process reply channels node-local and correlates the wire
//! halves by request id — see `ccm-net`.)
//!
//! The sender fabric is reconnectable: when a node crashes its service
//! thread exits and drops the receiver, making every in-flight send to it
//! fail fast; [`Transport::reconnect`] installs a fresh channel so a
//! restarted node starts with an empty inbox (messages addressed to the
//! dead incarnation are gone, as they would be on a real reboot).
//!
//! [`Middleware`]: crate::runtime::Middleware

use ccm_core::{BlockId, NodeId};
use simcore::chan::{unbounded, Receiver, Sender};
use simcore::sync::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// A message between cluster nodes.
///
/// `Clone` exists so a fault injector can duplicate a message in flight;
/// the runtime itself never clones messages.
#[derive(Clone)]
pub enum PeerMsg {
    /// "Send me a non-master copy of `block`" — answered with the bytes, or
    /// `None` if the block is no longer held (the in-flight race of §3; the
    /// requester falls through to the backing store).
    BlockRequest {
        /// The wanted block.
        block: BlockId,
        /// Where to deliver the reply.
        reply: Sender<Option<Vec<u8>>>,
    },
    /// An evicted master forwarded here (second chance); carries its bytes
    /// and, when the protocol displaced a block at this node to make room,
    /// which one to drop from the local store.
    Forward {
        /// The forwarded block.
        block: BlockId,
        /// Its content.
        data: Vec<u8>,
        /// Block dropped here to make room, if any.
        displace: Option<BlockId>,
    },
    /// A write elsewhere invalidated this node's copy of `block`; drop its
    /// bytes (§6 writes extension).
    Invalidate {
        /// The written block.
        block: BlockId,
    },
    /// A coherence write at another node invalidated this node's copy of
    /// `block`. Carries the cluster-wide write version so receivers can
    /// order invalidations from different writers; otherwise handled like
    /// [`PeerMsg::Invalidate`] (drop the bytes). Control-plane: the chaos
    /// wrapper never drops or delays it, matching the atomic protocol
    /// decision it trails.
    WriteInvalidate {
        /// The written block.
        block: BlockId,
        /// Monotonic cluster-wide write version of the triggering write.
        version: u64,
    },
    /// Ack request: the service thread answers once every earlier message on
    /// this inbox has been processed. Used to quiesce the data plane.
    Barrier {
        /// Where to deliver the ack.
        reply: Sender<()>,
    },
    /// Heartbeat probe: the service thread answers immediately to prove it
    /// is alive. Control-plane — the chaos wrapper never drops or delays a
    /// ping, so failure detection reflects real liveness, not injected link
    /// faults.
    Ping {
        /// Where to deliver the pong.
        reply: Sender<()>,
    },
    /// Orderly shutdown of the node's service thread.
    Shutdown,
}

/// What the middleware needs from a peer transport.
///
/// Implementations deliver [`PeerMsg`]s into per-node inboxes; the
/// middleware owns the service threads that drain them. The channel [`Lan`]
/// is the in-process backend; `ccm-net::TcpLan` is the socket backend.
///
/// Contract:
///
/// * `send` is fire-and-forget. `false` means the transport *knows* the
///   destination cannot receive (dead incarnation, link down); `true` means
///   the message was handed to the fabric — it may still be lost in flight.
/// * [`PeerMsg::Shutdown`] is control-plane and must be delivered locally
///   (never over a wire): it stops the destination's service thread, which
///   a real remote peer has no business doing.
/// * `reconnect` starts a fresh inbox incarnation for `node`, both at
///   startup and after a crash; messages addressed to the previous
///   incarnation must never reach the new one.
pub trait Transport: Send + Sync + 'static {
    /// Number of nodes attached.
    fn nodes(&self) -> usize;

    /// Deliver `msg` from `src` into `dst`'s inbox. Returns false if the
    /// destination is known unreachable.
    fn send(&self, src: NodeId, dst: NodeId, msg: PeerMsg) -> bool;

    /// Install a fresh inbox for `node` (startup and node restart) and
    /// return its receive end for the node's service thread.
    fn reconnect(&self, node: NodeId) -> Receiver<PeerMsg>;

    /// Request `block` from `holder` on behalf of `src`, waiting at most
    /// `timeout`. `None` means the holder no longer caches the block, is
    /// unreachable, or the reply did not arrive in time; callers fall back
    /// to the backing store either way (the §3 "eventual disk read" escape
    /// hatch).
    fn fetch_block(
        &self,
        src: NodeId,
        holder: NodeId,
        block: BlockId,
        timeout: Duration,
    ) -> Option<Vec<u8>> {
        let (reply_tx, reply_rx) = unbounded();
        if !self.send(
            src,
            holder,
            PeerMsg::BlockRequest {
                block,
                reply: reply_tx,
            },
        ) {
            return None;
        }
        reply_rx.recv_timeout(timeout).ok().flatten()
    }

    /// Quiesce `node`: ack once every message previously handed to the
    /// fabric for `node` has been processed by its service thread. False if
    /// the node is dead or the ack timed out.
    fn barrier(&self, node: NodeId, timeout: Duration) -> bool {
        let (reply_tx, reply_rx) = unbounded();
        if !self.send(node, node, PeerMsg::Barrier { reply: reply_tx }) {
            return false;
        }
        reply_rx.recv_timeout(timeout).is_ok()
    }

    /// Heartbeat `dst` on behalf of `src`: true once the destination's
    /// service thread answered the [`PeerMsg::Ping`] within `timeout`.
    /// False — a missed heartbeat — if the send was refused, the thread is
    /// gone, or the pong did not arrive in time.
    fn ping(&self, src: NodeId, dst: NodeId, timeout: Duration) -> bool {
        let (reply_tx, reply_rx) = unbounded();
        if !self.send(src, dst, PeerMsg::Ping { reply: reply_tx }) {
            return false;
        }
        reply_rx.recv_timeout(timeout).is_ok()
    }
}

/// Addressable senders to every node.
#[derive(Clone)]
pub struct Lan {
    peers: Arc<Vec<RwLock<Sender<PeerMsg>>>>,
}

impl Lan {
    /// Build the LAN; returns the shared sender fabric plus each node's
    /// receive end.
    pub fn new(nodes: usize) -> (Lan, Vec<Receiver<PeerMsg>>) {
        let mut peers = Vec::with_capacity(nodes);
        let mut inboxes = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            peers.push(RwLock::new(tx));
            inboxes.push(rx);
        }
        (
            Lan {
                peers: Arc::new(peers),
            },
            inboxes,
        )
    }

    /// Build the LAN without handing out inboxes; service threads obtain
    /// theirs through [`Transport::reconnect`] (the path `Middleware`
    /// startup uses for every backend).
    pub fn with_nodes(nodes: usize) -> Lan {
        Lan::new(nodes).0
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.peers.len()
    }

    /// Send `msg` to `node`. Returns false if the node's service thread has
    /// already exited (its inbox is disconnected).
    pub fn send(&self, node: NodeId, msg: PeerMsg) -> bool {
        self.peers[node.index()].read().send(msg).is_ok()
    }

    /// Replace `node`'s channel with a fresh one (node restart). Messages
    /// queued for the old incarnation are dropped with it; returns the new
    /// receive end for the restarted service thread.
    pub fn reconnect(&self, node: NodeId) -> Receiver<PeerMsg> {
        let (tx, rx) = unbounded();
        *self.peers[node.index()].write() = tx;
        rx
    }

    /// Request `block` from `holder` and wait up to `timeout` for the reply.
    ///
    /// `None` means the holder no longer caches the block, its thread is
    /// gone, or the reply did not arrive in time; callers fall back to the
    /// backing store either way (the §3 "eventual disk read" escape hatch).
    pub fn fetch_block(
        &self,
        holder: NodeId,
        block: BlockId,
        timeout: Duration,
    ) -> Option<Vec<u8>> {
        let (reply_tx, reply_rx) = unbounded();
        if !self.send(
            holder,
            PeerMsg::BlockRequest {
                block,
                reply: reply_tx,
            },
        ) {
            return None;
        }
        reply_rx.recv_timeout(timeout).ok().flatten()
    }

    /// Send a [`PeerMsg::Barrier`] to `node` and wait up to `timeout` for
    /// the ack. True once every message enqueued before the barrier has been
    /// processed; false if the node is dead or the ack timed out.
    pub fn barrier(&self, node: NodeId, timeout: Duration) -> bool {
        let (reply_tx, reply_rx) = unbounded();
        if !self.send(node, PeerMsg::Barrier { reply: reply_tx }) {
            return false;
        }
        reply_rx.recv_timeout(timeout).is_ok()
    }
}

impl Transport for Lan {
    fn nodes(&self) -> usize {
        Lan::nodes(self)
    }

    // All senders share one inbox per node, so the source is irrelevant —
    // the channel fabric is a perfect crossbar.
    fn send(&self, _src: NodeId, dst: NodeId, msg: PeerMsg) -> bool {
        Lan::send(self, dst, msg)
    }

    fn reconnect(&self, node: NodeId) -> Receiver<PeerMsg> {
        Lan::reconnect(self, node)
    }

    fn fetch_block(
        &self,
        _src: NodeId,
        holder: NodeId,
        block: BlockId,
        timeout: Duration,
    ) -> Option<Vec<u8>> {
        Lan::fetch_block(self, holder, block, timeout)
    }

    fn barrier(&self, node: NodeId, timeout: Duration) -> bool {
        Lan::barrier(self, node, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm_core::FileId;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    #[test]
    fn messages_arrive_in_order() {
        let (lan, inboxes) = Lan::new(2);
        assert_eq!(lan.nodes(), 2);
        assert!(lan.send(
            NodeId(1),
            PeerMsg::Forward {
                block: b(1),
                data: vec![1],
                displace: None
            }
        ));
        assert!(lan.send(
            NodeId(1),
            PeerMsg::Forward {
                block: b(2),
                data: vec![2],
                displace: Some(b(9))
            }
        ));
        match inboxes[1].recv().unwrap() {
            PeerMsg::Forward {
                block,
                data,
                displace,
            } => {
                assert_eq!(block, b(1));
                assert_eq!(data, vec![1]);
                assert_eq!(displace, None);
            }
            _ => panic!("wrong message"),
        }
        match inboxes[1].recv().unwrap() {
            PeerMsg::Forward { block, .. } => assert_eq!(block, b(2)),
            _ => panic!("wrong message"),
        }
        assert!(inboxes[0].is_empty());
    }

    #[test]
    fn fetch_block_round_trips() {
        let (lan, inboxes) = Lan::new(1);
        let server = std::thread::spawn({
            let inbox = inboxes[0].clone();
            move || match inbox.recv().unwrap() {
                PeerMsg::BlockRequest { block, reply } => {
                    assert_eq!(block, b(7));
                    reply.send(Some(vec![42])).unwrap();
                }
                _ => panic!("wrong message"),
            }
        });
        let got = lan.fetch_block(NodeId(0), b(7), TIMEOUT);
        assert_eq!(got, Some(vec![42]));
        server.join().unwrap();
    }

    #[test]
    fn fetch_from_dead_node_is_none() {
        let (lan, inboxes) = Lan::new(1);
        drop(inboxes); // the service thread is gone
        assert_eq!(lan.fetch_block(NodeId(0), b(1), TIMEOUT), None);
        assert!(!lan.send(NodeId(0), PeerMsg::Shutdown));
    }

    #[test]
    fn dropped_reply_sender_reads_as_none() {
        let (lan, inboxes) = Lan::new(1);
        let server = std::thread::spawn({
            let inbox = inboxes[0].clone();
            move || {
                if let PeerMsg::BlockRequest { reply, .. } = inbox.recv().unwrap() {
                    drop(reply); // simulate a crash mid-request
                }
            }
        });
        assert_eq!(lan.fetch_block(NodeId(0), b(1), TIMEOUT), None);
        server.join().unwrap();
    }

    #[test]
    fn unanswered_fetch_times_out_instead_of_hanging() {
        let (lan, inboxes) = Lan::new(1);
        // Nobody services the inbox: the request sits unanswered. The
        // bounded wait returns None (disk fallback) instead of blocking.
        let got = lan.fetch_block(NodeId(0), b(1), Duration::from_millis(20));
        assert_eq!(got, None);
        drop(inboxes);
    }

    #[test]
    fn reconnect_replaces_the_inbox() {
        let (lan, inboxes) = Lan::new(1);
        assert!(lan.send(NodeId(0), PeerMsg::Invalidate { block: b(1) }));
        drop(inboxes); // crash: queued message lost with the receiver
        assert!(!lan.send(NodeId(0), PeerMsg::Shutdown));
        let rx = lan.reconnect(NodeId(0));
        assert!(rx.is_empty(), "restarted node must see an empty inbox");
        assert!(lan.send(NodeId(0), PeerMsg::Invalidate { block: b(2) }));
        match rx.recv().unwrap() {
            PeerMsg::Invalidate { block } => assert_eq!(block, b(2)),
            _ => panic!("wrong message"),
        }
    }

    #[test]
    fn ping_round_trips_and_detects_death() {
        let (lan, inboxes) = Lan::new(2);
        let inbox = inboxes[1].clone();
        let server = std::thread::spawn(move || match inbox.recv().unwrap() {
            PeerMsg::Ping { reply } => {
                let _ = reply.send(());
            }
            _ => panic!("wrong message"),
        });
        assert!(Transport::ping(&lan, NodeId(0), NodeId(1), TIMEOUT));
        server.join().unwrap();
        drop(inboxes); // node 1's incarnation is gone
        assert!(!Transport::ping(
            &lan,
            NodeId(0),
            NodeId(1),
            Duration::from_millis(20)
        ));
    }

    #[test]
    fn barrier_acks_after_prior_messages() {
        let (lan, inboxes) = Lan::new(1);
        let inbox = inboxes[0].clone();
        let server = std::thread::spawn(move || {
            let mut forwards = 0;
            loop {
                match inbox.recv().unwrap() {
                    PeerMsg::Forward { .. } => forwards += 1,
                    PeerMsg::Barrier { reply } => {
                        let _ = reply.send(());
                        return forwards;
                    }
                    _ => panic!("wrong message"),
                }
            }
        });
        lan.send(
            NodeId(0),
            PeerMsg::Forward {
                block: b(1),
                data: vec![],
                displace: None,
            },
        );
        lan.send(
            NodeId(0),
            PeerMsg::Forward {
                block: b(2),
                data: vec![],
                displace: None,
            },
        );
        assert!(lan.barrier(NodeId(0), TIMEOUT));
        assert_eq!(server.join().unwrap(), 2, "barrier overtook a message");
    }
}
