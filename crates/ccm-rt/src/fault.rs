//! Deterministic fault injection for the channel LAN.
//!
//! A [`FaultPlan`] is a seeded, declarative description of everything that
//! will go wrong in a run: per-link message drop / duplication / delay
//! probabilities and a per-node crash/restart schedule. [`ChaosLan`] wraps
//! [`Lan`] and applies the link faults; the torture harness applies the
//! crash schedule through `Middleware::crash_node` / `restart_node`.
//!
//! Determinism: every random decision comes from a per-link
//! [`simcore::Rng`] substream keyed by `(src, dst)`, consumed strictly in
//! that link's send order. No wall-clock time or ambient randomness is
//! involved, so the same plan over the same operation sequence makes the
//! same messages vanish — and the same `CacheStats` come out the other end.
//!
//! Fault model boundaries:
//!
//! * Only data-plane messages — [`PeerMsg::BlockRequest`] and
//!   [`PeerMsg::Forward`] — are chaos-eligible. Losing either is safe by
//!   design: the requester's bounded wait expires and it falls through to
//!   the backing store (the paper's §3 escape hatch), and a lost forward
//!   merely wastes the master's second chance.
//! * [`PeerMsg::Invalidate`] is delivered reliably and *flushes the link's
//!   delayed messages first*: an invalidation overtaken by a stale forward
//!   of the same block would resurrect superseded bytes, which no fault in
//!   the paper's model (lost messages, node crashes) can cause.
//! * [`PeerMsg::Barrier`] and [`PeerMsg::Shutdown`] are control-plane and
//!   bypass chaos entirely.
//!
//! A *delayed* message is held until `delay_sends` further messages leave
//! on the same link, then delivered after them — reordering expressed in
//! message counts rather than time, which keeps it deterministic.

use crate::transport::{PeerMsg, Transport};
use ccm_core::{BlockId, NodeId};
use ccm_disk::DiskFaults;
use ccm_obs::{Counter, Registry};
use simcore::sync::Mutex;
use simcore::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Per-link fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a chaos-eligible message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// Probability a message is held back (reordered).
    pub delay_prob: f64,
    /// How many subsequent sends on the same link a held message waits for.
    pub delay_sends: u64,
}

impl LinkFaults {
    /// No link faults at all.
    pub const NONE: LinkFaults = LinkFaults {
        drop_prob: 0.0,
        dup_prob: 0.0,
        delay_prob: 0.0,
        delay_sends: 0,
    };

    /// True if every probability is zero (the wrapper becomes pass-through).
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0 && self.dup_prob == 0.0 && self.delay_prob == 0.0
    }
}

/// One scheduled node crash, and optionally when it restarts.
///
/// Operation counts index the torture harness's driver sequence: the
/// harness crashes `node` just before its `at_op`-th operation and restarts
/// it before operation `restart_at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node to kill.
    pub node: NodeId,
    /// Driver operation index at which the crash happens.
    pub at_op: u64,
    /// Operation index at which the node rejoins cold, if it does.
    pub restart_at_op: Option<u64>,
}

/// A complete, seeded description of a run's faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed; every per-link RNG substream derives from it.
    pub seed: u64,
    /// Fault probabilities applied to every link.
    pub link: LinkFaults,
    /// Node crash/restart schedule (applied by the harness, in order).
    pub crashes: Vec<CrashEvent>,
    /// Disk-level faults (slow reads, I/O errors) applied by every node's
    /// disk service; decisions are a pure hash of `(seed, block)`.
    pub disk: DiskFaults,
}

impl FaultPlan {
    /// A quiet plan: nothing goes wrong, but the wrapper is in place.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            link: LinkFaults::NONE,
            crashes: Vec::new(),
            disk: DiskFaults::NONE,
        }
    }

    /// The standard torture plan used by the chaos tests: lossy, duplicating,
    /// reordering links plus at least one crash/restart, all derived from
    /// `seed`. `ops` is the length of the driver sequence the crash schedule
    /// is placed within.
    pub fn torture(seed: u64, nodes: usize, ops: u64) -> FaultPlan {
        assert!(nodes > 1, "torture plan needs a peer to crash");
        let mut rng = Rng::new(seed).substream(0xC4A5);
        // Never crash node 0: the harness drives reads through it so the
        // cluster keeps serving while a peer is down.
        let node = NodeId(1 + rng.next_below(nodes as u64 - 1) as u16);
        let at_op = ops / 4 + rng.next_below(ops / 4 + 1);
        let restart_at_op = at_op + ops / 4;
        FaultPlan {
            seed,
            link: LinkFaults {
                drop_prob: 0.20,
                dup_prob: 0.05,
                delay_prob: 0.10,
                delay_sends: 3,
            },
            crashes: vec![CrashEvent {
                node,
                at_op,
                restart_at_op: Some(restart_at_op),
            }],
            disk: DiskFaults::NONE,
        }
    }

    /// The same plan with disk faults layered on: a copy of `self` whose
    /// node disk services will also inject slow reads and I/O errors.
    pub fn with_disk(mut self, disk: DiskFaults) -> FaultPlan {
        self.disk = disk;
        self
    }

    fn link_rng(&self, src: NodeId, dst: NodeId) -> Rng {
        Rng::new(self.seed).substream((src.index() as u64) << 32 | dst.index() as u64)
    }
}

/// Counts of faults actually injected (diagnostics; deterministic for a
/// fixed plan and send sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Messages silently dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back for reordering.
    pub delayed: u64,
}

struct LinkState {
    rng: Rng,
    /// Messages sent on this link so far (chaos-eligible or not).
    sends: u64,
    /// Held messages: (deliver once `sends` reaches this, message).
    held: Vec<(u64, PeerMsg)>,
}

/// A [`Transport`] wrapper with a [`FaultPlan`] applied to its data-plane
/// traffic. Faults are injected on the sending side, *before* the inner
/// transport — so over the channel LAN a dropped message never enters the
/// inbox, and over `ccm-net`'s `TcpLan` it never reaches the socket. The
/// same plan therefore induces the same fault schedule on every backend.
pub struct ChaosLan {
    inner: Arc<dyn Transport>,
    faults: LinkFaults,
    /// Row-major `src * nodes + dst`; empty when `faults.is_none()`.
    links: Vec<Mutex<LinkState>>,
    dropped: Counter,
    duplicated: Counter,
    delayed: Counter,
}

impl ChaosLan {
    /// Wrap `inner`, injecting the link faults of `plan`. Fault counters go
    /// onto a private registry; use [`ChaosLan::with_registry`] to expose
    /// them on a shared one (the middleware does).
    pub fn new(inner: Arc<dyn Transport>, plan: &FaultPlan) -> ChaosLan {
        ChaosLan::with_registry(inner, plan, &Registry::new())
    }

    /// Wrap `inner`, registering the injected-fault counters
    /// (`ccm_chaos_{dropped,duplicated,delayed}_total`) on `registry`.
    pub fn with_registry(
        inner: Arc<dyn Transport>,
        plan: &FaultPlan,
        registry: &Registry,
    ) -> ChaosLan {
        let nodes = inner.nodes();
        let links = if plan.link.is_none() {
            Vec::new()
        } else {
            let mut v = Vec::with_capacity(nodes * nodes);
            for src in 0..nodes {
                for dst in 0..nodes {
                    v.push(Mutex::new(LinkState {
                        rng: plan.link_rng(NodeId(src as u16), NodeId(dst as u16)),
                        sends: 0,
                        held: Vec::new(),
                    }));
                }
            }
            v
        };
        ChaosLan {
            inner,
            faults: plan.link,
            links,
            dropped: registry.counter(
                "ccm_chaos_dropped_total",
                "Chaos-eligible messages silently dropped by fault injection",
                &[],
            ),
            duplicated: registry.counter(
                "ccm_chaos_duplicated_total",
                "Messages delivered twice by fault injection",
                &[],
            ),
            delayed: registry.counter(
                "ccm_chaos_delayed_total",
                "Messages held back for reordering by fault injection",
                &[],
            ),
        }
    }

    /// The fault-free transport underneath.
    pub fn inner(&self) -> &dyn Transport {
        &*self.inner
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    /// Faults injected so far.
    pub fn chaos_stats(&self) -> ChaosStats {
        ChaosStats {
            dropped: self.dropped.get(),
            duplicated: self.duplicated.get(),
            delayed: self.delayed.get(),
        }
    }

    fn link(&self, src: NodeId, dst: NodeId) -> &Mutex<LinkState> {
        &self.links[src.index() * self.inner.nodes() + dst.index()]
    }

    /// Send `msg` from `src` to `dst` through the fault model. Returns false
    /// only when the destination is known dead; a dropped message still
    /// returns true — the sender cannot tell (that is the fault).
    pub fn send(&self, src: NodeId, dst: NodeId, msg: PeerMsg) -> bool {
        if self.links.is_empty() {
            return self.inner.send(src, dst, msg);
        }
        let chaos_eligible = matches!(msg, PeerMsg::BlockRequest { .. } | PeerMsg::Forward { .. });
        let mut link = self.link(src, dst).lock();
        if !chaos_eligible {
            // Reliable messages must not overtake held data-plane traffic on
            // their link (an Invalidate arriving before a stale Forward of
            // the same block would later be undone by it).
            Self::release_all(&mut link, &*self.inner, src, dst);
            return self.inner.send(src, dst, msg);
        }
        link.sends += 1;
        let delivered = if link.rng.chance(self.faults.drop_prob) {
            self.dropped.inc();
            true // lost in the network; the sender cannot tell
        } else if link.rng.chance(self.faults.dup_prob) {
            self.duplicated.inc();
            let ok = self.inner.send(src, dst, msg.clone());
            self.inner.send(src, dst, msg);
            ok
        } else if link.rng.chance(self.faults.delay_prob) {
            self.delayed.inc();
            let release_at = link.sends + self.faults.delay_sends;
            link.held.push((release_at, msg));
            true
        } else {
            self.inner.send(src, dst, msg)
        };
        // Held messages whose wait expired leave *after* the current one —
        // that is the reordering.
        let due = link.sends;
        Self::release_due(&mut link, &*self.inner, src, dst, due);
        delivered
    }

    /// Request `block` from `holder` on behalf of `src`, waiting at most
    /// `timeout`. A dropped or delayed request (or reply path gone) surfaces
    /// as `None`, which callers treat as "fall through to the backing store".
    pub fn fetch_block(
        &self,
        src: NodeId,
        holder: NodeId,
        block: BlockId,
        timeout: Duration,
    ) -> Option<Vec<u8>> {
        if self.links.is_empty() {
            return self.inner.fetch_block(src, holder, block, timeout);
        }
        let (reply_tx, reply_rx) = simcore::chan::unbounded();
        if !self.send(
            src,
            holder,
            PeerMsg::BlockRequest {
                block,
                reply: reply_tx,
            },
        ) {
            return None;
        }
        reply_rx.recv_timeout(timeout).ok().flatten()
    }

    /// Deliver every held message on every link, in link order. Part of
    /// quiescing the data plane between measurement points.
    pub fn flush(&self) {
        for (i, link) in self.links.iter().enumerate() {
            let src = NodeId((i / self.inner.nodes()) as u16);
            let dst = NodeId((i % self.inner.nodes()) as u16);
            Self::release_all(&mut link.lock(), &*self.inner, src, dst);
        }
    }

    fn release_due(
        link: &mut LinkState,
        inner: &dyn Transport,
        src: NodeId,
        dst: NodeId,
        due: u64,
    ) {
        // Held lists are tiny (a few messages); a linear sweep keeps release
        // order identical to hold order.
        let mut i = 0;
        while i < link.held.len() {
            if link.held[i].0 <= due {
                let (_, msg) = link.held.remove(i);
                inner.send(src, dst, msg);
            } else {
                i += 1;
            }
        }
    }

    fn release_all(link: &mut LinkState, inner: &dyn Transport, src: NodeId, dst: NodeId) {
        for (_, msg) in link.held.drain(..) {
            inner.send(src, dst, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Lan;
    use ccm_core::FileId;

    fn b(i: u32) -> BlockId {
        BlockId::new(FileId(0), i)
    }

    fn fwd(i: u32) -> PeerMsg {
        PeerMsg::Forward {
            block: b(i),
            data: vec![i as u8],
            displace: None,
        }
    }

    fn drain(rx: &simcore::chan::Receiver<PeerMsg>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Ok(msg) = rx.try_recv() {
            if let PeerMsg::Forward { block, .. } = msg {
                out.push(block.index);
            }
        }
        out
    }

    #[test]
    fn quiet_plan_is_pass_through() {
        let (lan, inboxes) = Lan::new(2);
        let chaos = ChaosLan::new(Arc::new(lan), &FaultPlan::quiet(1));
        for i in 0..100 {
            assert!(chaos.send(NodeId(0), NodeId(1), fwd(i)));
        }
        assert_eq!(drain(&inboxes[1]).len(), 100);
        assert_eq!(chaos.chaos_stats(), ChaosStats::default());
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let (lan, inboxes) = Lan::new(2);
            let plan = FaultPlan {
                seed,
                link: LinkFaults {
                    drop_prob: 0.3,
                    ..LinkFaults::NONE
                },
                crashes: Vec::new(),
                disk: DiskFaults::NONE,
            };
            let chaos = ChaosLan::new(Arc::new(lan), &plan);
            for i in 0..200 {
                chaos.send(NodeId(0), NodeId(1), fwd(i));
            }
            (drain(&inboxes[1]), chaos.chaos_stats())
        };
        let (a1, s1) = run(7);
        let (a2, s2) = run(7);
        assert_eq!(a1, a2, "same seed must lose the same messages");
        assert_eq!(s1, s2);
        assert!(s1.dropped > 0, "30% drops over 200 sends must fire");
        assert_eq!(a1.len() as u64 + s1.dropped, 200);
        let (a3, _) = run(8);
        assert_ne!(a1, a3, "different seeds should differ");
    }

    #[test]
    fn delays_reorder_but_never_lose() {
        let (lan, inboxes) = Lan::new(2);
        let plan = FaultPlan {
            seed: 3,
            link: LinkFaults {
                delay_prob: 0.4,
                delay_sends: 2,
                ..LinkFaults::NONE
            },
            crashes: Vec::new(),
            disk: DiskFaults::NONE,
        };
        let chaos = ChaosLan::new(Arc::new(lan), &plan);
        for i in 0..100 {
            chaos.send(NodeId(0), NodeId(1), fwd(i));
        }
        chaos.flush();
        let mut got = drain(&inboxes[1]);
        assert!(chaos.chaos_stats().delayed > 0);
        assert_ne!(got, (0..100).collect::<Vec<_>>(), "no reordering happened");
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "a message was lost");
    }

    #[test]
    fn duplicates_arrive_twice() {
        let (lan, inboxes) = Lan::new(2);
        let plan = FaultPlan {
            seed: 5,
            link: LinkFaults {
                dup_prob: 0.5,
                ..LinkFaults::NONE
            },
            crashes: Vec::new(),
            disk: DiskFaults::NONE,
        };
        let chaos = ChaosLan::new(Arc::new(lan), &plan);
        for i in 0..50 {
            chaos.send(NodeId(0), NodeId(1), fwd(i));
        }
        let got = drain(&inboxes[1]);
        let dup = chaos.chaos_stats().duplicated;
        assert!(dup > 0);
        assert_eq!(got.len() as u64, 50 + dup);
    }

    #[test]
    fn reliable_messages_bypass_chaos_and_flush_the_link() {
        let (lan, inboxes) = Lan::new(2);
        let plan = FaultPlan {
            seed: 11,
            link: LinkFaults {
                delay_prob: 1.0,
                delay_sends: 1_000, // held practically forever
                ..LinkFaults::NONE
            },
            crashes: Vec::new(),
            disk: DiskFaults::NONE,
        };
        let chaos = ChaosLan::new(Arc::new(lan), &plan);
        chaos.send(NodeId(0), NodeId(1), fwd(1)); // held
        assert!(inboxes[1].is_empty(), "forward should be held");
        chaos.send(NodeId(0), NodeId(1), PeerMsg::Invalidate { block: b(1) });
        // The held forward must be released *before* the invalidate.
        match inboxes[1].recv().unwrap() {
            PeerMsg::Forward { block, .. } => assert_eq!(block, b(1)),
            _ => panic!("held forward should precede the invalidate"),
        }
        assert!(matches!(
            inboxes[1].recv().unwrap(),
            PeerMsg::Invalidate { .. }
        ));
    }

    #[test]
    fn dropped_fetch_times_out_to_none() {
        let (lan, inboxes) = Lan::new(2);
        let plan = FaultPlan {
            seed: 2,
            link: LinkFaults {
                drop_prob: 1.0,
                ..LinkFaults::NONE
            },
            crashes: Vec::new(),
            disk: DiskFaults::NONE,
        };
        let chaos = ChaosLan::new(Arc::new(lan), &plan);
        let got = chaos.fetch_block(NodeId(0), NodeId(1), b(4), Duration::from_millis(20));
        assert_eq!(
            got, None,
            "dropped request must surface as a store fallback"
        );
        assert!(inboxes[1].is_empty());
    }

    #[test]
    fn torture_plan_is_deterministic_and_has_a_crash() {
        let a = FaultPlan::torture(42, 4, 1000);
        let b = FaultPlan::torture(42, 4, 1000);
        assert_eq!(a, b);
        assert_eq!(a.crashes.len(), 1);
        let c = a.crashes[0];
        assert_ne!(c.node, NodeId(0));
        assert!(c.at_op >= 250 && c.at_op <= 500);
        assert_eq!(c.restart_at_op, Some(c.at_op + 250));
    }
}
