//! Write-path coherence configuration: write-through vs. write-back.
//!
//! The paper's protocol is read-mostly (§2: "we focus on read traffic"),
//! with writes sketched as the §6 extension the middleware must eventually
//! carry. The runtime implements two coherence modes over the same
//! invalidation protocol:
//!
//! * **Write-through** ([`WriteMode::Through`], the default): the write is
//!   persisted to the backing store *before* the protocol invalidation
//!   fans out, so any reader that falls through to disk after being
//!   invalidated sees the new bytes. An acknowledged write is durable: it
//!   survives any combination of node crashes.
//! * **Write-back** ([`WriteMode::Back`]): the writing node becomes a
//!   *dirty master* — the write is acknowledged once the protocol
//!   invalidation is done and the bytes sit in the master's store;
//!   persistence is deferred to a flush (background, budget-triggered,
//!   eviction-triggered, or explicit). Losing the dirty master before its
//!   flush loses the write; the loss is *bounded* by
//!   [`WriteConfig::dirty_budget`] and *detected* — every lost block is
//!   recorded and reported, never silently served stale.
//!
//! Durability contract, precisely:
//!
//! * Write-through: an acknowledged write is never lost.
//! * Write-back: at most `dirty_budget` acknowledged writes (plus any
//!   concurrently in-flight ones) are unpersisted at any instant. A crash
//!   of a dirty master first tries recovery — if a survivor holds a
//!   current replica (a reader re-fetched the block after the write), its
//!   bytes are flushed and the write survives. Only when no current copy
//!   survives is the block marked lost; `Middleware::lost_writes` names
//!   every such block, and reads of a lost block serve the last *persisted*
//!   bytes (the pre-write image), exactly like a real write-back cache
//!   that lost its dirty lines.
//! * Both modes: graceful paths lose nothing — `leave_node` flushes the
//!   leaver's dirty blocks before handing off its masters, and
//!   `Middleware::shutdown` drains the dirty set before stopping.

use std::time::Duration;

/// When a write is persisted to the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Persist synchronously before acknowledging (durable acks).
    Through,
    /// Acknowledge from the dirty master; persist on flush (bounded,
    /// detected loss window).
    Back,
}

/// Write-path configuration carried on `RtConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteConfig {
    /// Coherence mode; [`WriteMode::Through`] by default.
    pub mode: WriteMode,
    /// Write-back only: maximum dirty (acknowledged, unpersisted) blocks.
    /// A write that would exceed the budget synchronously flushes the
    /// oldest dirty blocks before returning, so the loss window never
    /// grows past this many blocks (plus writes concurrently in flight).
    /// A budget of zero degenerates to flush-on-every-write.
    pub dirty_budget: usize,
    /// Write-back only: if set, a background flusher drains the dirty set
    /// every interval. `None` (the default) leaves flushing to the budget,
    /// evictions, and explicit `flush_dirty` calls — which keeps
    /// same-seed runs deterministic (the flusher is wall-clock driven).
    pub flush_interval: Option<Duration>,
}

impl WriteConfig {
    /// Write-through (the default).
    pub fn through() -> WriteConfig {
        WriteConfig {
            mode: WriteMode::Through,
            dirty_budget: 0,
            flush_interval: None,
        }
    }

    /// Write-back with the given dirty-block budget and no background
    /// flusher (deterministic).
    pub fn back(dirty_budget: usize) -> WriteConfig {
        WriteConfig {
            mode: WriteMode::Back,
            dirty_budget,
            flush_interval: None,
        }
    }
}

impl Default for WriteConfig {
    fn default() -> WriteConfig {
        WriteConfig::through()
    }
}

/// Write-path counters, snapshot through `Middleware::write_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Writes acknowledged (both modes; sum over nodes).
    pub writes: u64,
    /// Dirty blocks persisted by any flush path (write-back).
    pub flushes: u64,
    /// Dirty blocks currently awaiting a flush (write-back).
    pub dirty: u64,
    /// Acknowledged writes lost with a crashed dirty master (write-back;
    /// each is named in `Middleware::lost_writes`).
    pub lost: u64,
    /// Dirty blocks rescued from a survivor's current replica after their
    /// master crashed (write-back).
    pub recovered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_write_through() {
        let cfg = WriteConfig::default();
        assert_eq!(cfg.mode, WriteMode::Through);
        assert_eq!(cfg.flush_interval, None);
    }

    #[test]
    fn back_carries_budget() {
        let cfg = WriteConfig::back(8);
        assert_eq!(cfg.mode, WriteMode::Back);
        assert_eq!(cfg.dirty_budget, 8);
        assert_eq!(cfg.flush_interval, None);
    }
}
