//! The backing store — the "home disk" of the runtime.
//!
//! The store abstraction ([`BlockStore`], [`Catalog`], the deterministic
//! [`SyntheticStore`], the writable [`MemStore`], and the file-backed
//! [`FileStore`]) now lives in the `ccm-disk` crate alongside the
//! asynchronous disk service that drives it; this module re-exports it so
//! existing `ccm_rt::store::…` paths keep working unchanged.

pub use ccm_disk::store::{read_file_direct, BlockStore, Catalog, MemStore, SyntheticStore};
pub use ccm_disk::FileStore;
