//! The runtime's metric handles: every counter, gauge, and histogram the
//! middleware updates, registered once at cluster start so the read path
//! never touches the registry — it pays one relaxed atomic per event.
//!
//! Metric catalog (see DESIGN.md "Observability" for the full naming
//! conventions):
//!
//! | name | type | labels |
//! |------|------|--------|
//! | `ccm_rt_reads_total` | counter | `node`, `class` = `local`/`remote`/`disk`/`fallback` |
//! | `ccm_rt_evictions_total` | counter | `node` |
//! | `ccm_rt_forwards_total` | counter | `node` |
//! | `ccm_rt_store_fallbacks_total` | counter | `node` |
//! | `ccm_rt_move_fallbacks_total` | counter | `node` |
//! | `ccm_rt_disk_error_fallbacks_total` | counter | `node` |
//! | `ccm_rt_store_blocks` | gauge | `node` |
//! | `ccm_rt_directory_blocks` | gauge | — |
//! | `ccm_rt_fetch_latency_ns` | histogram | `class` |
//! | `ccm_rt_hint_hits_total` | counter | — |
//! | `ccm_rt_hint_stale_total` | counter | — |
//! | `ccm_rt_hint_forward_hops_total` | counter | — |
//! | `ccm_rt_epoch` | gauge | — |
//! | `ccm_rt_writes_total` | counter | `node` |
//! | `ccm_rt_admission_admitted_total` | counter | — |
//! | `ccm_rt_admission_rejected_total` | counter | — |
//! | `ccm_rt_admission_ghost_hits_total` | counter | — |
//! | `ccm_rt_wb_dirty_blocks` | gauge | — |
//! | `ccm_rt_wb_flushes_total` | counter | — |
//! | `ccm_rt_wb_lost_total` | counter | — |
//! | `ccm_rt_wb_recovered_total` | counter | — |
//!
//! The hint counters mirror the `ccm-core` hint-directory statistics
//! (correct hints, stale hints, wasted forwarding hops); they stay at zero
//! under the perfect directory but are always registered, so a scrape sees
//! the family either way. `ccm_rt_epoch` exports the membership table's
//! epoch — it moves only when the cluster configuration changes.
//!
//! The admission counters mirror the `ccm-core` ghost-LRU admission
//! statistics and stay at zero with admission off; the `wb_*` family
//! tracks write-back dirty-block lifecycle (flushed / lost with a crashed
//! dirty master / recovered from a survivor's replica) and stays at zero
//! under write-through. Like the hint family, all are always registered.
//!
//! The read `class` is the *data-plane* outcome: a protocol-level remote
//! hit whose bytes had to come from the backing store (the §3 race) counts
//! as `fallback`, not `remote` — unlike `CacheStats`, which tallies the
//! protocol decision. The two views reconcile through
//! `ccm_rt_store_fallbacks_total`, which is the exact migration of the old
//! `Middleware::store_fallbacks` atomic (all fallback sites, including
//! eviction forwarding's disk re-read). `ccm_rt_move_fallbacks_total`
//! counts only the fallbacks that happen *outside* a traced read — an
//! eviction forward, join rebalance, or leave handoff whose source bytes
//! were already gone — so that `reads_total{class="fallback"} +
//! move_fallbacks == store_fallbacks` holds exactly, even under races.

use ccm_core::NodeId;
use ccm_obs::{Counter, Gauge, Histogram, Registry, TraceRing};

/// How many block-path trace events the per-cluster ring retains.
pub const TRACE_RING_CAPACITY: usize = 4096;

/// The four data-plane read outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadClass {
    /// Bytes served from the node's own store.
    Local,
    /// Bytes fetched from a peer.
    Remote,
    /// Directory said disk; planned backing-store read.
    Disk,
    /// Data plane fell through to the backing store (§3 race).
    Fallback,
}

impl ReadClass {
    /// Label value.
    pub fn name(self) -> &'static str {
        match self {
            ReadClass::Local => "local",
            ReadClass::Remote => "remote",
            ReadClass::Disk => "disk",
            ReadClass::Fallback => "fallback",
        }
    }
}

/// Per-node handles.
pub(crate) struct NodeObs {
    pub reads: [Counter; 4], // indexed by ReadClass as usize
    pub evictions: Counter,
    pub forwards: Counter,
    pub store_fallbacks: Counter,
    pub move_fallbacks: Counter,
    pub disk_error_fallbacks: Counter,
    pub store_blocks: Gauge,
    pub writes: Counter,
}

/// All of the runtime's metric handles plus the trace ring.
pub(crate) struct RtObs {
    pub registry: Registry,
    pub trace: TraceRing,
    pub nodes: Vec<NodeObs>,
    /// Fetch latency histograms indexed by ReadClass as usize.
    pub fetch_ns: [Histogram; 4],
    pub directory_blocks: Gauge,
    /// Hint-directory outcomes (zero under the perfect directory).
    pub hint_hits: Counter,
    pub hint_stale: Counter,
    pub hint_forward_hops: Counter,
    /// Current membership epoch.
    pub epoch: Gauge,
    /// Replica-admission outcomes (zero with admission off).
    pub admission_admitted: Counter,
    pub admission_rejected: Counter,
    pub admission_ghost_hits: Counter,
    /// Write-back dirty-block lifecycle (zero under write-through).
    pub wb_dirty_blocks: Gauge,
    pub wb_flushes: Counter,
    pub wb_lost: Counter,
    pub wb_recovered: Counter,
}

const CLASSES: [ReadClass; 4] = [
    ReadClass::Local,
    ReadClass::Remote,
    ReadClass::Disk,
    ReadClass::Fallback,
];

impl RtObs {
    pub fn new(registry: Registry, nodes: usize) -> RtObs {
        let node_obs = (0..nodes)
            .map(|i| {
                let n = NodeId(i as u16);
                let node = n.index().to_string();
                let l = [("node", node.as_str())];
                NodeObs {
                    reads: CLASSES.map(|c| {
                        registry.counter(
                            "ccm_rt_reads_total",
                            "Block reads by data-plane outcome class",
                            &[("node", node.as_str()), ("class", c.name())],
                        )
                    }),
                    evictions: registry.counter(
                        "ccm_rt_evictions_total",
                        "Cache eviction decisions applied by this node",
                        &l,
                    ),
                    forwards: registry.counter(
                        "ccm_rt_forwards_total",
                        "Evicted masters forwarded to a peer (second chance)",
                        &l,
                    ),
                    store_fallbacks: registry.counter(
                        "ccm_rt_store_fallbacks_total",
                        "Data-plane races resolved through the backing store (the paper's 'eventual disk read')",
                        &l,
                    ),
                    move_fallbacks: registry.counter(
                        "ccm_rt_move_fallbacks_total",
                        "Store fallbacks outside the read path (eviction forward / join / leave whose source bytes were gone)",
                        &l,
                    ),
                    disk_error_fallbacks: registry.counter(
                        "ccm_rt_disk_error_fallbacks_total",
                        "Disk-service reads that failed (injected I/O error) and were retried synchronously against the store",
                        &l,
                    ),
                    store_blocks: registry.gauge(
                        "ccm_rt_store_blocks",
                        "Blocks resident in this node's data store",
                        &l,
                    ),
                    writes: registry.counter(
                        "ccm_rt_writes_total",
                        "Block writes acknowledged through this node",
                        &l,
                    ),
                }
            })
            .collect();
        let fetch_ns = CLASSES.map(|c| {
            registry.histogram(
                "ccm_rt_fetch_latency_ns",
                "Block read latency by data-plane outcome class",
                &[("class", c.name())],
            )
        });
        let directory_blocks = registry.gauge(
            "ccm_rt_directory_blocks",
            "Blocks tracked by the global directory (refreshed at snapshot time)",
            &[],
        );
        let hint_hits = registry.counter(
            "ccm_rt_hint_hits_total",
            "Hint-directory lookups whose best-guess owner was correct",
            &[],
        );
        let hint_stale = registry.counter(
            "ccm_rt_hint_stale_total",
            "Hint-directory lookups that started from a stale hint",
            &[],
        );
        let hint_forward_hops = registry.counter(
            "ccm_rt_hint_forward_hops_total",
            "Wasted forwarding hops charged while chasing stale hint chains",
            &[],
        );
        let epoch = registry.gauge(
            "ccm_rt_epoch",
            "Membership epoch: bumped once per join/leave/crash/repair transition",
            &[],
        );
        let admission_admitted = registry.counter(
            "ccm_rt_admission_admitted_total",
            "Remote hits whose replica the admission filter let in",
            &[],
        );
        let admission_rejected = registry.counter(
            "ccm_rt_admission_rejected_total",
            "Remote hits served without caching a replica (one-touch candidates)",
            &[],
        );
        let admission_ghost_hits = registry.counter(
            "ccm_rt_admission_ghost_hits_total",
            "Admissions granted because the block re-touched its ghost-list entry",
            &[],
        );
        let wb_dirty_blocks = registry.gauge(
            "ccm_rt_wb_dirty_blocks",
            "Acknowledged write-back writes not yet persisted",
            &[],
        );
        let wb_flushes = registry.counter(
            "ccm_rt_wb_flushes_total",
            "Dirty blocks persisted to the backing store by any flush path",
            &[],
        );
        let wb_lost = registry.counter(
            "ccm_rt_wb_lost_total",
            "Acknowledged write-back writes lost with a crashed dirty master",
            &[],
        );
        let wb_recovered = registry.counter(
            "ccm_rt_wb_recovered_total",
            "Dirty blocks rescued from a survivor's replica after their master crashed",
            &[],
        );
        RtObs {
            registry,
            trace: TraceRing::new(TRACE_RING_CAPACITY),
            nodes: node_obs,
            fetch_ns,
            directory_blocks,
            hint_hits,
            hint_stale,
            hint_forward_hops,
            epoch,
            admission_admitted,
            admission_rejected,
            admission_ghost_hits,
            wb_dirty_blocks,
            wb_flushes,
            wb_lost,
            wb_recovered,
        }
    }

    #[inline]
    pub fn node(&self, node: NodeId) -> &NodeObs {
        &self.nodes[node.index()]
    }

    /// Sum of every node's store-fallback counter (the old aggregate view).
    pub fn store_fallbacks(&self) -> u64 {
        self.nodes.iter().map(|n| n.store_fallbacks.get()).sum()
    }

    /// Sum of every node's disk-error-fallback counter.
    pub fn disk_error_fallbacks(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.disk_error_fallbacks.get())
            .sum()
    }
}
