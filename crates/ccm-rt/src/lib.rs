//! # ccm-rt — the cooperative caching middleware as a running library
//!
//! The paper closes with "eventually, this work should lead to an
//! implementation" (§6). This crate is that implementation in miniature: the
//! same `ccm-core` protocol state machine, but executed by real OS threads —
//! one service thread per cluster node — moving real bytes over in-process
//! channels standing in for the LAN. A "cluster" here lives inside one
//! process (the paper's repro scope: "cluster can be emulated locally"), but
//! the structure is the one a networked deployment would use: node-local
//! block stores, peer request/forward messages, and a synchronous
//! `read` API for the hosting service.
//!
//! Unlike the simulator, nothing here is optimistically atomic: a peer may
//! have dropped a block between the directory decision and the data request.
//! That is exactly the race the paper describes ("during the time that the
//! request … travels, [the master holder] may discard [the block], resulting
//! in an eventual disk read", §3), and the runtime resolves it the same way:
//! fall through to the backing store.
//!
//! * [`store`] — the backing "disk": a [`store::BlockStore`] trait plus a
//!   deterministic synthetic implementation and the file catalog
//!   (re-exported from `ccm-disk`, which also provides the asynchronous
//!   [`DiskService`] every node's misses are queued through).
//! * [`transport`] — peer messages and the channel LAN.
//! * [`membership`] — the epoch-versioned member table behind dynamic
//!   join/leave/crash, signalled through a condvar so joiners and the
//!   heartbeat monitor never poll.
//! * [`fault`] — deterministic fault injection: seeded fault plans and the
//!   chaos transport wrapper that drops, duplicates, and reorders data-plane
//!   messages.
//! * [`obs`] — the runtime's metric handles on the `ccm-obs` registry
//!   (hit-class counters, fetch-latency histograms, occupancy gauges) and
//!   the block-path trace ring.
//! * [`write`] — write-path coherence configuration: write-through vs.
//!   write-back, the dirty-block budget, and the durability contract.
//! * [`runtime`] — node service threads, the shared protocol state, node
//!   crash/restart, and the public [`runtime::Middleware`] /
//!   [`runtime::NodeHandle`] API.

#![warn(missing_docs)]

pub mod fault;
pub mod membership;
pub mod obs;
pub mod runtime;
pub mod store;
pub mod transport;
pub mod write;

pub use ccm_disk::{
    DiskConfig, DiskFaults, DiskMechanics, DiskService, DiskStats, FileStore, SchedPolicy,
};
pub use fault::{ChaosLan, ChaosStats, CrashEvent, FaultPlan, LinkFaults};
pub use membership::{MemberState, Membership};
pub use obs::ReadClass;
pub use runtime::{Middleware, NodeHandle, RtConfig, WriteError};
pub use store::{BlockStore, Catalog, MemStore, SyntheticStore};
pub use transport::{Lan, PeerMsg, Transport};
pub use write::{WriteConfig, WriteMode, WriteStats};
