//! Overhead guard for the instrumented block path.
//!
//! The observability contract has two budgets, asserted separately:
//!
//! * **Metrics** (counter increment, stopwatch + histogram record) must be
//!   noise even next to the cheapest read class — an all-local hit, which
//!   is one directory lookup plus an 8 KiB copy. A registry lock or a
//!   `SeqCst` fence creeping into the hot path blows this immediately.
//! * **Tracing** (request id + two bounded-ring pushes, each a clock read
//!   and a short ring lock) is allowed to be a visible fraction of a
//!   local hit — that is the price of always-on block-path forensics —
//!   but the whole instrumentation load must never dominate the read.
//!
//! Both loops measure exactly the primitives the instrumented read path
//! executes, against the end-to-end local-hit read measured in the same
//! process. A regression that makes either primitive heavyweight shows up
//! as the corresponding ratio exploding, in either build.
//!
//! Run it in release, in both configurations, and compare the printed
//! ns/read (the cross-build delta is what `BENCH_rt.json`'s `obs` section
//! records):
//!
//! ```text
//! cargo test -p ccm-rt --release --test obs_overhead -- --ignored --nocapture
//! cargo test -p ccm-rt --release --features obs-off --test obs_overhead -- --ignored --nocapture
//! ```

use ccm_core::{BlockId, FileId, NodeId, ReplacementPolicy, BLOCK_SIZE};
use ccm_obs::{Hop, Registry, Stopwatch, TraceRing};
use ccm_rt::{Catalog, Middleware, RtConfig, SyntheticStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CAPACITY: usize = 256;
const READS: usize = 100_000;
const PRIMITIVE_ITERS: usize = 1_000_000;

#[test]
#[ignore = "overhead guard; run in --release (see module docs)"]
fn instrumented_read_path_stays_within_noise() {
    // All-local-hit cluster: one node, working set fits in memory.
    let catalog = Catalog::new(vec![BLOCK_SIZE; CAPACITY]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 3));
    let mw = Middleware::start(
        RtConfig {
            nodes: 1,
            capacity_blocks: CAPACITY,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: Duration::from_secs(2),
            faults: None,
            obs: Some(Registry::new()),
            ..RtConfig::default()
        },
        catalog,
        store,
    );
    let handle = mw.handle(NodeId(0));
    let block = |i: usize| BlockId::new(FileId((i % CAPACITY) as u32), 0);
    for i in 0..CAPACITY {
        handle.read_block(block(i)); // prime
    }

    let t = Instant::now();
    for i in 0..READS {
        handle.read_block(block(i));
    }
    let read_ns = t.elapsed().as_nanos() as f64 / READS as f64;

    // Budget 1 — metrics: one class counter increment plus one stopwatch
    // around a histogram record, exactly what the read path pays per block.
    let registry = Registry::new();
    let counter = registry.counter("guard_reads_total", "guard", &[]);
    let hist = registry.histogram("guard_latency_ns", "guard", &[]);
    let t = Instant::now();
    for _ in 0..PRIMITIVE_ITERS {
        let sw = Stopwatch::start();
        counter.inc();
        sw.stop(&hist);
    }
    let metric_ns = t.elapsed().as_nanos() as f64 / PRIMITIVE_ITERS as f64;

    // Budget 2 — tracing: a fresh request id and the two unconditional
    // ring pushes (dispatch + serve) every block read performs.
    let ring = TraceRing::new(4096);
    let t = Instant::now();
    for i in 0..PRIMITIVE_ITERS {
        let req = ring.next_req_id();
        ring.push(
            req,
            0,
            Hop::Dispatch {
                file: i as u32,
                block: 0,
            },
        );
        ring.push(req, 0, Hop::Serve { bytes: 8192 });
    }
    let trace_ns = t.elapsed().as_nanos() as f64 / PRIMITIVE_ITERS as f64;

    let total_ns = metric_ns + trace_ns;
    let obs_off = cfg!(feature = "obs-off");
    println!(
        "obs_overhead: local-hit read {read_ns:.0} ns; per-read metrics {metric_ns:.0} ns \
         ({:.1}%), tracing {trace_ns:.0} ns ({:.1}%), obs-off={obs_off}",
        100.0 * metric_ns / read_ns,
        100.0 * trace_ns / read_ns,
    );
    // The metric budget is two clock reads and four relaxed atomics —
    // ~120 ns here, about a third of even the all-local read. Anything
    // heavier (a registry lock, a SeqCst fence, an allocation) lands it
    // well past this bound.
    assert!(
        metric_ns < read_ns * 0.35,
        "metric primitives ({metric_ns:.0} ns) are no longer noise next to a \
         local-hit read ({read_ns:.0} ns) — a lock or fence crept into the hot path"
    );
    assert!(
        total_ns < read_ns,
        "instrumentation ({total_ns:.0} ns) dominates the local-hit read \
         ({read_ns:.0} ns) — the trace ring has become heavyweight"
    );
    mw.shutdown();
}
