//! Crate-level fault-injection integration tests: the runtime against its
//! own chaos layer, without the workspace facade. The heavier torture
//! harness (multi-seed sweeps, concurrent stress) lives in the workspace
//! `tests/chaos.rs`; these cover the fault plumbing end to end.

use ccm_core::{FileId, NodeId, ReplacementPolicy};
use ccm_rt::store::read_file_direct;
use ccm_rt::{Catalog, FaultPlan, LinkFaults, Middleware, RtConfig, SyntheticStore};
use std::sync::Arc;
use std::time::Duration;

fn start(faults: Option<FaultPlan>) -> (Middleware, Catalog, Arc<SyntheticStore>) {
    let catalog = Catalog::new(vec![20_000u64; 12]);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));
    let mw = Middleware::start(
        RtConfig {
            nodes: 3,
            capacity_blocks: 32,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: Duration::from_millis(25),
            faults,
            ..RtConfig::default()
        },
        catalog.clone(),
        store.clone(),
    );
    (mw, catalog, store)
}

#[test]
fn total_message_loss_degrades_to_disk_but_stays_correct() {
    // Every data-plane message vanishes: remote hits must all resolve
    // through the bounded wait into store fallbacks, never a hang or a
    // wrong byte.
    let plan = FaultPlan {
        seed: 1,
        link: LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay_sends: 0,
        },
        crashes: Vec::new(),
        disk: Default::default(),
    };
    let (mw, catalog, store) = start(Some(plan));
    for f in 0..12u32 {
        mw.handle(NodeId(0)).read_file(FileId(f));
    }
    // Node 1's reads would be remote hits; with the LAN black-holed they
    // must all fall through to the backing store.
    for f in 0..12u32 {
        let got = mw.handle(NodeId(1)).read_file(FileId(f));
        let want = read_file_direct(&*store, &catalog, FileId(f));
        assert_eq!(got, want, "file {f} corrupted under total loss");
    }
    let stats = mw.stats();
    assert!(stats.store_fallbacks > 0, "fallback path never taken");
    assert!(mw.chaos_stats().dropped > 0);
    mw.check_invariants();
    mw.shutdown();
}

#[test]
fn crash_during_faulty_run_repairs_and_recovers() {
    let plan = FaultPlan::torture(5, 3, 100);
    let victim = plan.crashes[0].node;
    let (mw, catalog, store) = start(Some(plan));
    for f in 0..12u32 {
        mw.handle(victim).read_file(FileId(f));
        mw.handle(NodeId(0)).read_file(FileId(f));
    }
    mw.quiesce();
    let report = mw.crash_node(victim);
    assert!(report.remastered + report.lost_masters > 0);
    mw.check_invariants();
    for f in 0..12u32 {
        let got = mw.handle(NodeId(0)).read_file(FileId(f));
        let want = read_file_direct(&*store, &catalog, FileId(f));
        assert_eq!(got, want, "file {f} corrupted after crash");
    }
    mw.restart_node(victim);
    for f in 0..12u32 {
        let got = mw.handle(victim).read_file(FileId(f));
        let want = read_file_direct(&*store, &catalog, FileId(f));
        assert_eq!(got, want, "file {f} corrupted after restart");
    }
    mw.check_invariants();
    mw.shutdown();
}

#[test]
fn quiet_plan_changes_nothing() {
    // A quiet plan must behave exactly like no plan at all.
    let run = |faults: Option<FaultPlan>| {
        let (mw, _, _) = start(faults);
        for f in 0..12u32 {
            mw.handle(NodeId(f as u16 % 3)).read_file(FileId(f));
        }
        mw.quiesce();
        let s = mw.stats();
        mw.shutdown();
        s
    };
    assert_eq!(run(None), run(Some(FaultPlan::quiet(99))));
}
