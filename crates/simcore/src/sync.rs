//! Poison-free lock wrappers.
//!
//! Thin wrappers over `std::sync` locks with `parking_lot`-style ergonomics
//! (no external dependency, no `Result` at every call site). A panic while a
//! guard is held does not poison these locks: the runtime's invariants are
//! checked explicitly (`check_invariants`), not inferred from poisoning, and
//! a torture test must be able to keep driving a cluster after one injected
//! failure panicked a worker thread.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_while_held_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("injected");
        })
        .join();
        // A poisoned std mutex would panic here; ours keeps working.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
