//! The future-event list.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number breaks ties
//! deterministically in insertion order, which matters: simultaneous events
//! are common (e.g. zero-latency local operations) and an unstable order
//! would make runs irreproducible even with a fixed seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic pending-event queue.
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(20), "late");
/// q.push(SimTime(10), "early");
/// q.push(SimTime(10), "early-but-second");
/// assert_eq!(q.pop(), Some((SimTime(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime(10), "early-but-second")));
/// assert_eq!(q.pop(), Some((SimTime(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue whose clock starts at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// # Panics
    /// Panics in debug builds if `time` is earlier than the last event popped:
    /// scheduling into the past is always a simulation bug.
    pub fn push(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the most recently popped event — the current
    /// simulated "now" between event handler invocations.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 3, 9, 1, 7] {
            q.push(SimTime(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(42), i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), "a");
        q.push(SimTime(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn now_tracks_last_popped() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime(100), ());
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), 1);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(7), 1)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.pop();
        q.push(SimTime(5), ());
    }
}
