//! Service centers — the queueing primitive the hardware models are built on.
//!
//! The paper's simulator "models hardware components as service centers with
//! finite queues". A [`ServiceCenter`] is a single FIFO server: a job arriving
//! at `now` with service demand `s` starts when the server frees up and
//! completes at `max(now, busy_until) + s`. Because service is FIFO and
//! non-preemptive, the server never needs to be re-examined between arrivals —
//! the completion time is known at arrival, which keeps the event count low
//! (one completion event per job, no "server ready" events).
//!
//! [`FiniteQueue`] adds a bounded waiting room and rejects arrivals that would
//! overflow it. The closed-loop clients used in the experiments rarely
//! overflow, but the bound (and its drop counter) exists so that open-loop
//! overload experiments are honest.
//!
//! Components that *reorder* jobs (the disk, under the scheduling variants)
//! cannot use this shortcut and keep an explicit queue instead — see
//! `ccm-cluster::disk`.

use crate::stats::Utilization;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A single non-preemptive FIFO server.
///
/// ```
/// use simcore::{ServiceCenter, SimDuration, SimTime};
///
/// let mut cpu = ServiceCenter::new();
/// let first = cpu.schedule(SimTime::ZERO, SimDuration::from_millis(3));
/// let second = cpu.schedule(SimTime::ZERO, SimDuration::from_millis(3));
/// assert_eq!(first, SimTime::ZERO + SimDuration::from_millis(3));
/// assert_eq!(second, SimTime::ZERO + SimDuration::from_millis(6)); // queued
/// ```
#[derive(Debug, Clone)]
pub struct ServiceCenter {
    busy_until: SimTime,
    util: Utilization,
    jobs: u64,
    total_delay: SimDuration,
}

impl Default for ServiceCenter {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceCenter {
    /// A fresh, idle server.
    pub fn new() -> ServiceCenter {
        ServiceCenter {
            busy_until: SimTime::ZERO,
            util: Utilization::new(),
            jobs: 0,
            total_delay: SimDuration::ZERO,
        }
    }

    /// Enqueue a job arriving at `now` with service demand `service`;
    /// returns its completion time.
    pub fn schedule(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + service;
        self.total_delay += start.since(now) + service;
        self.busy_until = done;
        self.util.add_busy(service);
        self.jobs += 1;
        done
    }

    /// How long a job arriving at `now` would wait before starting service.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// True if the server would start a job arriving at `now` immediately.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// The instant the server frees up.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Jobs accepted so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total busy (service) time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.util.busy()
    }

    /// Fraction of `elapsed` wall-clock the server spent busy, in `[0, 1]`
    /// (may exceed 1 transiently if work is scheduled beyond `elapsed`).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        self.util.fraction(elapsed)
    }

    /// Mean residence time (queueing + service) over accepted jobs.
    pub fn mean_residence(&self) -> SimDuration {
        if self.jobs == 0 {
            SimDuration::ZERO
        } else {
            self.total_delay / self.jobs
        }
    }

    /// Forget accumulated statistics (but keep the busy horizon) — used when
    /// the measurement window starts after cache warm-up.
    pub fn reset_stats(&mut self) {
        self.util = Utilization::new();
        self.jobs = 0;
        self.total_delay = SimDuration::ZERO;
    }
}

/// Why a [`FiniteQueue`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// A FIFO server with a bounded waiting room.
#[derive(Debug, Clone)]
pub struct FiniteQueue {
    server: ServiceCenter,
    capacity: usize,
    /// Completion times of accepted jobs; entries `> now` are still in the
    /// system (waiting or in service). Pruned lazily on access.
    in_system: VecDeque<SimTime>,
    drops: u64,
}

impl FiniteQueue {
    /// A server whose waiting room holds at most `capacity` jobs
    /// (not counting the one in service).
    pub fn new(capacity: usize) -> FiniteQueue {
        FiniteQueue {
            server: ServiceCenter::new(),
            capacity,
            in_system: VecDeque::new(),
            drops: 0,
        }
    }

    fn prune(&mut self, now: SimTime) {
        while self.in_system.front().is_some_and(|&t| t <= now) {
            self.in_system.pop_front();
        }
    }

    /// Jobs currently waiting or in service.
    pub fn in_system(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.in_system.len()
    }

    /// Enqueue a job, or reject it if the waiting room is full.
    pub fn schedule(&mut self, now: SimTime, service: SimDuration) -> Result<SimTime, Rejected> {
        self.prune(now);
        // If the server is busy, exactly one in-system job is in service and
        // the rest are waiting; if it is idle, the arrival starts immediately
        // and never occupies the waiting room.
        let waiting = if self.server.is_idle(now) {
            0
        } else {
            self.in_system.len().saturating_sub(1)
        };
        if !self.server.is_idle(now) && waiting >= self.capacity {
            self.drops += 1;
            return Err(Rejected);
        }
        let done = self.server.schedule(now, service);
        self.in_system.push_back(done);
        Ok(done)
    }

    /// Jobs rejected so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// The underlying server, for statistics.
    pub fn server(&self) -> &ServiceCenter {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = ServiceCenter::new();
        let done = s.schedule(SimTime(10 * MS), SimDuration::from_millis(5));
        assert_eq!(done, SimTime(15 * MS));
        assert!(s.is_idle(SimTime(15 * MS)));
        assert!(!s.is_idle(SimTime(14 * MS)));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut s = ServiceCenter::new();
        let d1 = s.schedule(SimTime(0), SimDuration::from_millis(10));
        let d2 = s.schedule(SimTime(0), SimDuration::from_millis(10));
        let d3 = s.schedule(SimTime(5 * MS), SimDuration::from_millis(10));
        assert_eq!(d1, SimTime(10 * MS));
        assert_eq!(d2, SimTime(20 * MS));
        assert_eq!(d3, SimTime(30 * MS));
        assert_eq!(s.queue_delay(SimTime(5 * MS)), SimDuration::from_millis(25));
    }

    #[test]
    fn server_goes_idle_between_bursts() {
        let mut s = ServiceCenter::new();
        s.schedule(SimTime(0), SimDuration::from_millis(1));
        let done = s.schedule(SimTime(100 * MS), SimDuration::from_millis(1));
        assert_eq!(done, SimTime(101 * MS));
    }

    #[test]
    fn utilization_accumulates_service_time() {
        let mut s = ServiceCenter::new();
        s.schedule(SimTime(0), SimDuration::from_millis(3));
        s.schedule(SimTime(0), SimDuration::from_millis(2));
        assert_eq!(s.busy_time(), SimDuration::from_millis(5));
        let u = s.utilization(SimDuration::from_millis(10));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_residence_counts_waiting() {
        let mut s = ServiceCenter::new();
        s.schedule(SimTime(0), SimDuration::from_millis(10)); // resides 10
        s.schedule(SimTime(0), SimDuration::from_millis(10)); // waits 10, resides 20
        assert_eq!(s.mean_residence(), SimDuration::from_millis(15));
    }

    #[test]
    fn reset_stats_keeps_horizon() {
        let mut s = ServiceCenter::new();
        s.schedule(SimTime(0), SimDuration::from_millis(10));
        s.reset_stats();
        assert_eq!(s.jobs(), 0);
        assert_eq!(s.busy_time(), SimDuration::ZERO);
        // Horizon survives: a new job still queues behind the old one.
        let done = s.schedule(SimTime(0), SimDuration::from_millis(1));
        assert_eq!(done, SimTime(11 * MS));
    }

    #[test]
    fn finite_queue_rejects_when_full() {
        let mut q = FiniteQueue::new(2);
        let t0 = SimTime(0);
        let s = SimDuration::from_millis(10);
        assert!(q.schedule(t0, s).is_ok()); // in service
        assert!(q.schedule(t0, s).is_ok()); // waiting 1
        assert!(q.schedule(t0, s).is_ok()); // waiting 2
        assert_eq!(q.schedule(t0, s), Err(Rejected));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.in_system(t0), 3);
    }

    #[test]
    fn finite_queue_drains_over_time() {
        let mut q = FiniteQueue::new(1);
        let s = SimDuration::from_millis(10);
        q.schedule(SimTime(0), s).unwrap();
        q.schedule(SimTime(0), s).unwrap();
        assert!(q.schedule(SimTime(0), s).is_err());
        // At t=10ms the first job finished; room again.
        assert!(q.schedule(SimTime(10 * MS), s).is_ok());
        assert_eq!(q.in_system(SimTime(10 * MS)), 2);
        // All done by 30ms.
        assert_eq!(q.in_system(SimTime(30 * MS)), 0);
    }

    #[test]
    fn zero_capacity_queue_only_serves_idle() {
        let mut q = FiniteQueue::new(0);
        let s = SimDuration::from_millis(10);
        assert!(q.schedule(SimTime(0), s).is_ok());
        assert!(q.schedule(SimTime(0), s).is_err());
        assert!(q.schedule(SimTime(10 * MS), s).is_ok());
    }
}
