//! Statistics collection.
//!
//! The experiment harness reports throughput, mean response time, hit rates
//! and resource utilization, all measured *after* a warm-up window (the paper
//! measures "throughput only after the caches have been warmed up in order to
//! reflect their steady-state performance"). These are the small, allocation-
//! free accumulators the simulator threads those measurements through.

use crate::time::{SimDuration, SimTime};

/// A plain saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Zero.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0 if `total` is 0).
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Mean {
    /// An empty accumulator.
    pub fn new() -> Mean {
        Mean::default()
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Fold in a duration, in milliseconds.
    #[inline]
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Accumulated busy time for a resource, convertible to a utilization
/// fraction over a measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Utilization {
    busy: SimDuration,
}

impl Utilization {
    /// Zero busy time.
    pub fn new() -> Utilization {
        Utilization::default()
    }

    /// Record `d` of busy time.
    #[inline]
    pub fn add_busy(&mut self, d: SimDuration) {
        self.busy += d;
    }

    /// Total busy time.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Busy time as a fraction of `elapsed` (0 if `elapsed` is zero).
    pub fn fraction(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy.nanos() as f64 / elapsed.nanos() as f64
        }
    }
}

/// Completion-rate meter with an explicit warm-up boundary.
///
/// Completions recorded before [`ThroughputMeter::start_measuring`] is called
/// are counted separately (as warm-up) and excluded from the reported rate.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputMeter {
    warmup_completions: u64,
    completions: u64,
    window_start: Option<SimTime>,
    last_completion: SimTime,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// A meter still in its warm-up phase.
    pub fn new() -> ThroughputMeter {
        ThroughputMeter {
            warmup_completions: 0,
            completions: 0,
            window_start: None,
            last_completion: SimTime::ZERO,
        }
    }

    /// End the warm-up phase; completions from `now` on count.
    pub fn start_measuring(&mut self, now: SimTime) {
        self.window_start = Some(now);
    }

    /// True once the warm-up phase has ended.
    pub fn is_measuring(&self) -> bool {
        self.window_start.is_some()
    }

    /// Record one completion at `now`.
    #[inline]
    pub fn record(&mut self, now: SimTime) {
        self.last_completion = self.last_completion.max(now);
        if self.window_start.is_some() {
            self.completions += 1;
        } else {
            self.warmup_completions += 1;
        }
    }

    /// Completions inside the measurement window.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Completions during warm-up.
    pub fn warmup_completions(&self) -> u64 {
        self.warmup_completions
    }

    /// Measured rate in completions per second, over the span from the end of
    /// warm-up to `end`. Zero if measurement never started or the span is empty.
    pub fn rate_per_sec(&self, end: SimTime) -> f64 {
        let Some(start) = self.window_start else {
            return 0.0;
        };
        let span = end.saturating_since(start);
        if span.is_zero() {
            0.0
        } else {
            self.completions as f64 / span.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!((c.fraction_of(10) - 0.5).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn mean_of_constant_sequence() {
        let mut m = Mean::new();
        for _ in 0..10 {
            m.push(3.0);
        }
        assert_eq!(m.count(), 10);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert!(m.variance() < 1e-12);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut m = Mean::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert!((m.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn mean_handles_durations() {
        let mut m = Mean::new();
        m.push_duration(SimDuration::from_millis(2));
        m.push_duration(SimDuration::from_millis(4));
        assert!((m.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mean_is_zeroes() {
        let m = Mean::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        u.add_busy(SimDuration::from_millis(25));
        assert!((u.fraction(SimDuration::from_millis(100)) - 0.25).abs() < 1e-12);
        assert_eq!(u.fraction(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn throughput_excludes_warmup() {
        let mut t = ThroughputMeter::new();
        for i in 0..10 {
            t.record(SimTime(i * 1_000_000));
        }
        assert_eq!(t.warmup_completions(), 10);
        assert_eq!(t.completions(), 0);
        assert_eq!(t.rate_per_sec(SimTime(10_000_000)), 0.0);

        t.start_measuring(SimTime(10_000_000));
        for i in 10..30 {
            t.record(SimTime(i * 1_000_000));
        }
        assert_eq!(t.completions(), 20);
        // 20 completions over 20 ms => 1000/s.
        let rate = t.rate_per_sec(SimTime(30_000_000));
        assert!((rate - 1000.0).abs() < 1e-9, "rate={rate}");
    }

    #[test]
    fn throughput_zero_span_is_zero() {
        let mut t = ThroughputMeter::new();
        t.start_measuring(SimTime(5));
        t.record(SimTime(5));
        assert_eq!(t.rate_per_sec(SimTime(5)), 0.0);
    }
}
