//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The simulator performs millions of block-id directory lookups per run;
//! SipHash (std's default) dominates profiles there. This is the FxHash
//! algorithm used by rustc (a multiply-rotate mix), reimplemented here in a
//! dozen lines instead of adding a dependency outside the approved set.
//! HashDoS resistance is irrelevant: all keys are internally generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Different logical inputs should (almost surely) hash differently
        // even when zero-padding collides at the chunk level is possible;
        // mainly we assert no panic and stable output.
        let _ = (a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }
}
