//! Unbounded multi-producer/multi-consumer channels.
//!
//! A minimal in-tree stand-in for `crossbeam::channel` — this repository
//! builds with no external dependencies, so the threaded runtime's LAN needs
//! its own channel primitive. Semantics match what the runtime relies on:
//!
//! * unbounded FIFO queue, `send` never blocks;
//! * both [`Sender`] and [`Receiver`] are cheaply cloneable and `Send`;
//! * `send` fails once every receiver is gone; `recv` fails once the queue
//!   is empty and every sender is gone (disconnection is observable from
//!   both ends, which is how the runtime detects crashed peers);
//! * [`Receiver::recv_timeout`] gives the bounded wait that the cooperative
//!   cache's "eventual disk read" escape hatch needs under fault injection.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
/// Carries the rejected message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the deadline.
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A sender/receiver panicking mid-operation cannot leave the queue in
        // a torn state (all mutations are single statements), so poisoning is
        // ignored, matching crossbeam's behaviour.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a channel. Clone freely; the channel disconnects for
/// receivers once the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clone freely (each message is delivered
/// to exactly one receiver); the channel disconnects for senders once the
/// last clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue `msg`, waking one waiting receiver. Never blocks.
    ///
    /// # Errors
    /// [`SendError`] (returning the message) if every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(SendError(msg));
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.lock().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake every blocked receiver so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking until one arrives.
    ///
    /// # Errors
    /// [`RecvError`] if the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .ready
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue the next message, blocking at most `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the deadline passes with the queue
    /// still empty; [`RecvTimeoutError::Disconnected`] when the channel is
    /// empty and every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Dequeue the next message without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued;
    /// [`TryRecvError::Disconnected`] when additionally every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        match st.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// True if no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// A blocking iterator yielding messages until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
        // Senders never block, so nobody needs waking.
    }
}

/// Blocking iterator over a channel; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1u8), Err(SendError(1)));
    }

    #[test]
    fn recv_after_all_senders_dropped_drains_then_errors() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn iter_ends_on_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let got: Vec<u8> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || rx1.iter().count());
        let b = std::thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..800).collect::<Vec<_>>());
    }
}
