//! Simulated time.
//!
//! The simulator clock is an integer number of nanoseconds since the start of
//! the run. Integer arithmetic (rather than `f64` seconds) makes event
//! ordering total and platform-independent, so a run is exactly reproducible
//! from its seed. Cost-model formulas that are naturally fractional (e.g.
//! "0.1 ms + size/115 bytes-per-ns") round to the nearest nanosecond once, at
//! the point the delay is computed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation run.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since time zero.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from integral nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from integral microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from integral milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from integral seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// nanosecond. This is the entry point for every Table 1 cost formula.
    ///
    /// Negative or non-finite inputs clamp to zero: cost formulas are
    /// physically non-negative, so a negative intermediate is a modelling
    /// bug best surfaced by the debug assertion rather than a huge delay.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        debug_assert!(ms.is_finite() && ms >= 0.0, "bad duration: {ms} ms");
        if !(ms.is_finite() && ms > 0.0) {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1.0e6).round() as u64)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// This span in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True if this span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1.0e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn fractional_millis_round_to_nearest_nanosecond() {
        assert_eq!(
            SimDuration::from_millis_f64(0.1),
            SimDuration::from_micros(100)
        );
        assert_eq!(
            SimDuration::from_millis_f64(0.0000005),
            SimDuration::from_nanos(1)
        );
        assert_eq!(SimDuration::from_millis_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(t - SimDuration::from_millis(5), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime(10);
        let late = SimTime(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration(10));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        let total: SimDuration = (0..4).map(|_| d).sum();
        assert_eq!(total, SimDuration::from_micros(40));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimDuration::from_micros(42)), "42.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "42.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(42)), "42.000s");
    }

    #[test]
    fn conversions_to_float() {
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        let t = SimTime::ZERO + d;
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
