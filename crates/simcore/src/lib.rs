//! # simcore — deterministic discrete-event simulation engine
//!
//! The evaluation of the cooperative caching middleware (and of the L2S
//! baseline it is compared against) is driven entirely by an event-driven
//! simulator that "models hardware components as service centers with finite
//! queues" (HPDC 2001, §4.2). This crate provides the domain-independent
//! machinery for that simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer nanosecond clock. Integer time
//!   keeps runs bit-for-bit reproducible across platforms, which the test
//!   suite relies on.
//! * [`EventQueue`] — a deterministic future-event list. Ties in time are
//!   broken by insertion sequence, so two runs with the same seed produce the
//!   same event order.
//! * [`ServiceCenter`] and [`FiniteQueue`] — the queueing building blocks the
//!   hardware models (CPU, NIC, bus, disk, router) are built from.
//! * [`stats`] — counters, Welford means, time-weighted utilization tracking,
//!   and a warm-up-aware throughput meter (the paper measures throughput
//!   "only after the caches have been warmed up").
//! * [`rng`] — an explicit SplitMix64/xoshiro256++ PRNG. We deliberately do
//!   not depend on `rand`: sequence stability across versions matters more
//!   here than distribution breadth, and the trace generators implement their
//!   own samplers on top of this.
//! * [`chan`] / [`sync`] — unbounded MPMC channels and poison-free lock
//!   wrappers for the threaded runtime. The whole workspace builds with no
//!   external dependencies (the build environment has no registry access),
//!   so the concurrency primitives the runtime needs live here.
//!
//! Nothing in this crate knows about caches, files, or networks; those live in
//! the `ccm-cluster`, `ccm-core` and `ccm-webserver` crates.

#![warn(missing_docs)]

pub mod chan;
pub mod event;
pub mod fxhash;
pub mod histogram;
pub mod rng;
pub mod service;
pub mod stats;
pub mod sync;
pub mod time;

pub use event::EventQueue;
pub use fxhash::{FxHashMap, FxHashSet};
pub use histogram::Histogram;
pub use rng::Rng;
pub use service::{FiniteQueue, ServiceCenter};
pub use stats::{Counter, Mean, ThroughputMeter, Utilization};
pub use time::{SimDuration, SimTime};
