//! Seeded pseudo-random number generation.
//!
//! The simulator and the synthetic trace generators must be exactly
//! reproducible from a seed, across compiler versions and platforms. We
//! therefore implement the generator explicitly instead of depending on
//! `rand`: xoshiro256++ for the stream, SplitMix64 to expand the seed (the
//! construction recommended by the xoshiro authors).
//!
//! Only the primitives the workload generators need are provided here; the
//! distribution samplers (Zipf, log-normal, …) live in `ccm-traces`.

/// SplitMix64 step, used for seed expansion and as a cheap standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is fine;
    /// SplitMix64 expands it into a full 256-bit state.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent generator for a named sub-stream.
    ///
    /// Giving each stochastic component (request arrivals, file sizes, …) its
    /// own stream keeps results stable when one component changes how much
    /// randomness it consumes.
    pub fn substream(&self, label: u64) -> Rng {
        let mut sm = self.s[0] ^ self.s[2] ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (unbiased, no division on the fast path).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let root = Rng::new(7);
        let mut s1 = root.substream(1);
        let mut s1b = root.substream(1);
        let mut s2 = root.substream(2);
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::new(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let x = r.next_below(10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow generous slack.
            assert!((8_500..11_500).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn next_range_covers_endpoints() {
        let mut r = Rng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.next_range(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input sorted"
        );
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = Rng::new(17);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(19);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
