//! A log-bucketed latency histogram.
//!
//! Response-time distributions in the experiments span microseconds (pure
//! memory hits) to tens of milliseconds (queued disk reads), so fixed-width
//! buckets would be useless. This histogram uses base-2 logarithmic buckets
//! with a configurable number of linear sub-buckets per octave — the same
//! scheme HDR-style histograms use — giving a bounded relative quantile error
//! with a few hundred buckets.

use crate::time::SimDuration;

/// Sub-buckets per power-of-two octave. 16 gives ≤ ~6% relative error.
const SUBBUCKETS_BITS: u32 = 4;
const SUBBUCKETS: u64 = 1 << SUBBUCKETS_BITS;

/// A histogram over `u64` values (the simulator records nanoseconds).
///
/// ```
/// use simcore::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let median = h.median() as f64;
/// assert!((median - 500.0).abs() / 500.0 < 0.07, "bounded relative error");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as u64; // floor(log2(value)), >= SUBBUCKETS_BITS
    let sub = (value >> (octave - SUBBUCKETS_BITS as u64)) - SUBBUCKETS;
    ((octave - SUBBUCKETS_BITS as u64 + 1) * SUBBUCKETS + sub) as usize
}

/// Lower bound of the value range covered by bucket `idx`.
#[inline]
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBBUCKETS {
        return idx;
    }
    let octave = idx / SUBBUCKETS + SUBBUCKETS_BITS as u64 - 1;
    let sub = idx % SUBBUCKETS;
    (SUBBUCKETS + sub) << (octave - SUBBUCKETS_BITS as u64)
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a duration, in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), as the lower bound of the
    /// bucket containing that rank. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_low(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: the approximate median.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index decreased at {v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_low_inverts_index() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u32::MAX as u64] {
            let idx = bucket_index(v);
            let low = bucket_low(idx);
            assert!(low <= v, "low {low} > value {v}");
            // The bucket containing `low` is the same bucket.
            assert_eq!(bucket_index(low), idx, "v={v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for q in 1..=15 {
            let want = q; // values 0..16, quantile q/16 picks value q-? approximately
            let got = h.quantile(q as f64 / 16.0);
            assert!((got as i64 - want as i64).abs() <= 1, "q={q} got={got}");
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-12);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, exact) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.07, "q={q} got={got} rel={rel}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=1000u64 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 2000);
        let med = a.median() as f64;
        assert!((med - 1000.0).abs() / 1000.0 < 0.07, "median={med}");
    }

    #[test]
    fn quantile_extremes_clamp_to_min_max() {
        let mut h = Histogram::new();
        h.record(500);
        h.record(1500);
        assert_eq!(h.quantile(0.0), 500);
        assert_eq!(h.quantile(1.0).max(h.min()), h.quantile(1.0));
        assert!(h.quantile(1.0) <= h.max());
    }
}
