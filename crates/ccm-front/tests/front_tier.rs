//! The front tier over live sockets: range semantics on every backend,
//! pipelining, dispatch accounting, and the `ccm_front_*` metric family
//! on `GET /metrics` (the `obs_endpoints` pattern, one tier up).

use ccm_core::{FileId, NodeId, BLOCK_SIZE};
use ccm_front::client::{get_with, FrontClient};
use ccm_front::PolicyKind;
use ccm_rt::store::read_file_direct;
use ccm_rt::{Catalog, RtConfig, SyntheticStore};
use ccm_testkit::{start_front, FrontBackendKind, FrontFixture};
use std::sync::Arc;

/// Files exercising every range corner: multi-block with a partial tail,
/// an exact block multiple (tail block is full), sub-block, and empty.
fn fixture() -> (Catalog, Arc<SyntheticStore>) {
    let sizes = vec![
        2 * BLOCK_SIZE + 100, // file 0: partial tail block
        3 * BLOCK_SIZE,       // file 1: exact block multiple
        512,                  // file 2: sub-block
        0,                    // file 3: empty
    ];
    let catalog = Catalog::new(sizes);
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 0xF407));
    (catalog, store)
}

fn start(
    kind: FrontBackendKind,
    policy: PolicyKind,
) -> (FrontFixture, Catalog, Arc<SyntheticStore>) {
    let (catalog, store) = fixture();
    let fx = start_front(
        kind,
        policy,
        RtConfig {
            nodes: 2,
            capacity_blocks: 64,
            ..RtConfig::default()
        },
        catalog.clone(),
        store.clone(),
    );
    (fx, catalog, store)
}

#[test]
fn range_semantics_hold_on_every_backend() {
    for kind in FrontBackendKind::all() {
        let (fx, catalog, store) = start(kind, PolicyKind::RoundRobin);
        let addr = fx.front.addrs()[0];
        let label = kind.name();

        for id in [0u32, 1, 2] {
            let file = FileId(id);
            let size = catalog.size_of(file);
            let truth = read_file_direct(store.as_ref(), &catalog, file);
            let path = format!("/file/{id}");

            // Full read: 200, byte-verified, range plumbing advertised.
            let full = get_with(addr, &path, &[]).unwrap();
            assert_eq!(full.status, 200, "{label} file {id}");
            assert_eq!(full.body, truth, "{label} file {id} bytes");
            assert_eq!(full.headers.get("accept-ranges"), Some("bytes"));
            let etag = full.headers.get("etag").expect("etag on 200").to_string();

            // Bounded range: byte-identical to the 200 body's slice.
            let r = get_with(addr, &path, &[("Range", "bytes=10-137")]).unwrap();
            assert_eq!(r.status, 206, "{label} file {id}");
            assert_eq!(r.body, truth[10..=137.min(truth.len() - 1)]);
            assert_eq!(
                r.headers.get("content-range").unwrap(),
                format!("bytes 10-{}/{size}", 137.min(size - 1)),
                "{label} file {id}"
            );

            // Suffix range: the exact tail, crossing into the last block.
            let n = (size / 2).max(1);
            let r = get_with(addr, &path, &[("Range", format!("bytes=-{n}").as_str())]).unwrap();
            assert_eq!(r.status, 206, "{label} file {id} suffix");
            assert_eq!(r.body, truth[(size - n) as usize..], "{label} suffix bytes");

            // Exact-tail block: the final block alone, [size - tail, size).
            let tail = size - (size - 1) / BLOCK_SIZE * BLOCK_SIZE;
            let start_pos = size - tail;
            let spec = format!("bytes={start_pos}-");
            let r = get_with(addr, &path, &[("Range", spec.as_str())]).unwrap();
            assert_eq!(r.status, 206, "{label} file {id} tail block");
            assert_eq!(r.body, truth[start_pos as usize..]);
            assert_eq!(
                r.headers.get("content-range").unwrap(),
                format!("bytes {start_pos}-{}/{size}", size - 1)
            );

            // Out-of-bounds start: 416 with the unsatisfied-range form.
            let spec = format!("bytes={size}-");
            let r = get_with(addr, &path, &[("Range", spec.as_str())]).unwrap();
            assert_eq!(r.status, 416, "{label} file {id} out of bounds");
            assert_eq!(
                r.headers.get("content-range").unwrap(),
                format!("bytes */{size}")
            );
            assert!(r.body.is_empty());

            // If-Range: stale validator downgrades to the full body,
            // current validator keeps the range.
            let r = get_with(
                addr,
                &path,
                &[("Range", "bytes=0-9"), ("If-Range", "\"stale\"")],
            )
            .unwrap();
            assert_eq!((r.status, r.body.len()), (200, truth.len()), "{label}");
            let r = get_with(
                addr,
                &path,
                &[("Range", "bytes=0-9"), ("If-Range", etag.as_str())],
            )
            .unwrap();
            assert_eq!(r.status, 206, "{label} matching If-Range");
            assert_eq!(r.body, truth[..10]);
        }

        // The empty file: full read is 200 with zero bytes; any range on
        // it is unsatisfiable.
        let r = get_with(addr, "/file/3", &[]).unwrap();
        assert_eq!((r.status, r.body.len()), (200, 0), "{label} empty file");
        let r = get_with(addr, "/file/3", &[("Range", "bytes=0-0")]).unwrap();
        assert_eq!(r.status, 416, "{label} empty file range");

        fx.shutdown();
    }
}

#[test]
fn pipelined_requests_answer_in_order() {
    for kind in FrontBackendKind::all() {
        let (fx, catalog, store) = start(kind, PolicyKind::RoundRobin);
        let mut conn = FrontClient::connect(fx.front.addrs()[1]).unwrap();

        // Write every request before reading any response.
        let ids = [2u32, 0, 1, 2, 1, 0];
        for &id in &ids {
            conn.send("GET", &format!("/file/{id}"), &[]).unwrap();
        }
        for &id in &ids {
            let r = conn.read_pipelined().unwrap();
            let truth = read_file_direct(store.as_ref(), &catalog, FileId(id));
            assert_eq!(r.status, 200, "{} file {id}", kind.name());
            assert_eq!(r.body, truth, "{} pipelined order broken", kind.name());
        }
        fx.shutdown();
    }
}

#[test]
fn head_matches_get_and_unknown_paths_404() {
    let (fx, catalog, _store) = start(FrontBackendKind::L2s, PolicyKind::RoundRobin);
    let addr = fx.front.addrs()[0];
    let mut conn = FrontClient::connect(addr).unwrap();
    let size = catalog.size_of(FileId(0));

    let r = conn.head_with("/file/0", &[]).unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.is_empty(), "HEAD has no body");
    assert_eq!(
        r.headers.get("content-length").unwrap(),
        size.to_string(),
        "HEAD keeps the body's length"
    );

    let r = conn.get("/file/999").unwrap();
    assert_eq!(r.status, 404);
    let r = conn.get("/nope").unwrap();
    assert_eq!(r.status, 404);
    fx.shutdown();
}

#[test]
fn content_aware_policy_migrates_and_counts_handoffs() {
    let (fx, _catalog, _store) = start(FrontBackendKind::L2s, PolicyKind::ContentAware);
    // The same file requested through both endpoints must serve at one
    // node (content-aware migration), so one arrival was handed off.
    for endpoint in [0, 1] {
        let mut conn = FrontClient::connect(fx.front.addrs()[endpoint]).unwrap();
        for _ in 0..3 {
            assert_eq!(conn.get("/file/0").unwrap().status, 200);
        }
    }
    let counts = fx.front.dispatch_counts();
    assert_eq!(counts.iter().sum::<u64>(), 6);
    assert!(
        counts.contains(&6),
        "content-aware must pin the file to one node, got {counts:?}"
    );
    assert_eq!(fx.front.handoffs(), 3, "one endpoint's arrivals all moved");
    fx.shutdown();
}

#[test]
fn front_stats_endpoint_reports_dispatch() {
    let (fx, _catalog, _store) = start(FrontBackendKind::L2s, PolicyKind::RoundRobin);
    let addr = fx.front.addrs()[0];
    let mut conn = FrontClient::connect(addr).unwrap();
    for _ in 0..4 {
        conn.get("/file/1").unwrap();
    }
    let r = conn.get("/front/stats").unwrap();
    assert_eq!(r.status, 200);
    let body = String::from_utf8(r.body).unwrap();
    assert!(
        body.contains("\"policy\":\"round-robin\"") && body.contains("\"backend\":\"l2s\""),
        "unexpected stats page: {body}"
    );
    assert!(
        body.contains("\"dispatched\":[2,2]"),
        "round-robin split: {body}"
    );
    fx.shutdown();
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn metrics_page_carries_the_front_family() {
    use ccm_obs::prom::parse;
    use std::collections::BTreeSet;

    // CCM backend: the same page must carry both the front family and the
    // cache families underneath (one shared registry).
    let (fx, _catalog, _store) = start(
        FrontBackendKind::Ccm(ccm_testkit::Backend::Channel),
        PolicyKind::LoadAware,
    );
    let addr = fx.front.addrs()[0];
    let mut conn = FrontClient::connect(addr).unwrap();
    for id in [0u32, 1, 2] {
        assert_eq!(conn.get(&format!("/file/{id}")).unwrap().status, 200);
    }
    assert_eq!(
        conn.get_with("/file/0", &[("Range", "bytes=0-9")])
            .unwrap()
            .status,
        206
    );

    let r = conn.get("/metrics").unwrap();
    assert_eq!(r.status, 200);
    let text = String::from_utf8(r.body).expect("metrics page is UTF-8");
    let samples = parse(&text).expect("page must parse as Prometheus text");
    let names: BTreeSet<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    for family in [
        "ccm_front_dispatch_total",
        "ccm_front_handoffs_total",
        "ccm_front_request_latency_ns_bucket",
        "ccm_front_responses_total",
        "ccm_front_inflight",
        // The cluster behind the seam reports into the same registry.
        "ccm_rt_reads_total",
        "ccm_disk_reads_total",
    ] {
        assert!(names.contains(family), "scrape missing {family}:\n{text}");
    }

    // Dispatch counters carry the policy label and cover the traffic.
    let dispatched: f64 = samples
        .iter()
        .filter(|s| s.name == "ccm_front_dispatch_total" && s.label("policy") == Some("load-aware"))
        .map(|s| s.value)
        .sum();
    assert!(dispatched >= 4.0, "saw {dispatched} dispatches");

    // The 206 above has its own status class.
    let partial: f64 = samples
        .iter()
        .filter(|s| s.name == "ccm_front_responses_total" && s.label("status") == Some("206"))
        .map(|s| s.value)
        .sum();
    assert!(partial >= 1.0, "206 responses must be tallied separately");
    fx.shutdown();
}

#[test]
fn every_policy_serves_verified_bytes_through_the_ccm_backend() {
    let (catalog, store) = fixture();
    for policy in PolicyKind::all() {
        let fx = start_front(
            FrontBackendKind::Ccm(ccm_testkit::Backend::Channel),
            policy,
            RtConfig {
                nodes: 3,
                capacity_blocks: 64,
                ..RtConfig::default()
            },
            catalog.clone(),
            store.clone(),
        );
        for endpoint in 0..3 {
            let mut conn = FrontClient::connect(fx.front.addrs()[endpoint]).unwrap();
            for id in [0u32, 1, 2] {
                let truth = read_file_direct(store.as_ref(), &catalog, FileId(id));
                let r = conn.get(&format!("/file/{id}")).unwrap();
                assert_eq!(r.status, 200, "{} endpoint {endpoint}", policy.name());
                assert_eq!(r.body, truth, "{} corrupted bytes", policy.name());
            }
        }
        assert_eq!(
            fx.front.dispatch_counts().iter().sum::<u64>(),
            9,
            "{} must account every dispatch",
            policy.name()
        );
        fx.shutdown();
    }
}

#[test]
fn ccm_backend_range_reads_touch_only_covering_blocks() {
    // A range inside block 1 of file 0 must not charge accesses for
    // blocks 0 or 2 — the point of block-granular range mapping.
    let (fx, _catalog, store) = start(
        FrontBackendKind::Ccm(ccm_testkit::Backend::Channel),
        PolicyKind::RoundRobin,
    );
    let addr = fx.front.addrs()[0];
    let spec = format!("bytes={}-{}", BLOCK_SIZE + 5, BLOCK_SIZE + 55);
    let r = get_with(addr, "/file/0", &[("Range", spec.as_str())]).unwrap();
    assert_eq!(r.status, 206);
    let truth = read_file_direct(store.as_ref(), fx.backend.catalog(), FileId(0));
    assert_eq!(
        r.body,
        truth[(BLOCK_SIZE + 5) as usize..=(BLOCK_SIZE + 55) as usize]
    );
    fx.backend.quiesce();
    let stats = fx.backend.hit_stats();
    assert_eq!(
        stats.accesses, 1,
        "a one-block range must cost exactly one block access"
    );
    fx.shutdown();
}

#[test]
fn l2s_node_id_maps_to_arrival_listener() {
    // Sanity: NodeId(endpoint index) is what dispatch policies receive.
    let (fx, _catalog, _store) = start(FrontBackendKind::L2s, PolicyKind::ContentAware);
    let addrs = fx.front.addrs().to_vec();
    assert_eq!(addrs.len(), 2);
    assert_ne!(addrs[0], addrs[1]);
    let _ = NodeId(0);
    fx.shutdown();
}
