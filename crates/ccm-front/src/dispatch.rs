//! The dispatch seam: how the front door picks a serving node.
//!
//! Every policy implements [`Dispatch`]: a pure pick plus optional
//! `begin`/`end` brackets for load signals. Four policies ship:
//!
//! * [`RoundRobin`] — the paper's baseline arrival model, a stand-in for
//!   round-robin DNS.
//! * [`ConsistentHash`] — URL-hashed partitioning on a ring with virtual
//!   nodes ("Asymptotic Miss Ratio of LRU Caching with Consistent
//!   Hashing", PAPERS.md): each URL has one home node, so per-node caches
//!   partition the working set without coordination.
//! * [`ContentAware`] — the L2S policy itself, running on the *same*
//!   [`L2sRouter`] core the simulator uses: first-touch assignment to the
//!   least-loaded node, watermark-driven replication and de-replication.
//! * [`LoadAware`] — LARD-style least-outstanding-requests, driven by the
//!   `ccm_front_inflight` gauges the front tier exports (ties rotate, so
//!   an idle cluster degrades to round-robin instead of pinning node 0).

use ccm_core::{FileId, NodeId};
use ccm_l2s::{L2sConfig, L2sRouter};
use ccm_obs::{Gauge, Registry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A front-door dispatch policy.
pub trait Dispatch: Send + Sync {
    /// The policy's label (metric label value, bench matrix key).
    fn name(&self) -> &'static str;

    /// Pick the serving node for a request for `path` (resolved to `file`
    /// when it names a catalog file) arriving at front endpoint `arrival`.
    fn pick(&self, arrival: NodeId, path: &str, file: Option<FileId>) -> NodeId;

    /// The picked node began serving a request (load-signal bracket).
    fn begin(&self, _node: NodeId) {}

    /// The node finished serving a request.
    fn end(&self, _node: NodeId) {}
}

/// FNV-1a, the workspace's standard content hash, finished with a
/// SplitMix64 avalanche — raw FNV of short, similar strings clusters in
/// the high bits, which skews ring-point placement badly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rotate through nodes in arrival order — what round-robin DNS does.
pub struct RoundRobin {
    nodes: usize,
    next: AtomicUsize,
}

impl RoundRobin {
    /// A rotation over `nodes` nodes.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(nodes: usize) -> RoundRobin {
        assert!(nodes > 0, "empty cluster");
        RoundRobin {
            nodes,
            next: AtomicUsize::new(0),
        }
    }
}

impl Dispatch for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&self, _arrival: NodeId, _path: &str, _file: Option<FileId>) -> NodeId {
        NodeId((self.next.fetch_add(1, Ordering::Relaxed) % self.nodes) as u16)
    }
}

/// Virtual-node points per physical node on the hash ring. Enough that
/// per-node load imbalance stays within a few percent at the cluster
/// sizes the paper uses (4–16 nodes).
const VNODES: usize = 64;

/// Hash-partitioned dispatch: each URL maps to one home node via a
/// consistent-hash ring, so node membership changes remap only the
/// neighboring arc, not the whole keyspace.
pub struct ConsistentHash {
    /// Sorted ring points.
    ring: Vec<(u64, NodeId)>,
}

impl ConsistentHash {
    /// A ring over `nodes` nodes with [`VNODES`] points each.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(nodes: usize) -> ConsistentHash {
        assert!(nodes > 0, "empty cluster");
        let mut ring = Vec::with_capacity(nodes * VNODES);
        for n in 0..nodes {
            for v in 0..VNODES {
                let point = fnv1a(format!("node-{n}/vnode-{v}").as_bytes());
                ring.push((point, NodeId(n as u16)));
            }
        }
        ring.sort_unstable();
        ConsistentHash { ring }
    }
}

impl Dispatch for ConsistentHash {
    fn name(&self) -> &'static str {
        "consistent-hash"
    }

    fn pick(&self, _arrival: NodeId, path: &str, _file: Option<FileId>) -> NodeId {
        let h = fnv1a(path.as_bytes());
        // First ring point at or after the key, wrapping.
        let idx = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[idx % self.ring.len()].1
    }
}

/// The L2S content-aware policy over the shared [`L2sRouter`] core — the
/// live front door and the simulator make bit-identical decisions for the
/// same request sequence.
pub struct ContentAware {
    router: Mutex<L2sRouter>,
}

impl ContentAware {
    /// The paper's watermarks ([`L2sConfig::paper`]) over `nodes` nodes.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(nodes: usize) -> ContentAware {
        let cfg = L2sConfig::paper(nodes, 0 /* capacity is the backend's business */);
        ContentAware {
            router: Mutex::new(L2sRouter::new(
                cfg.nodes,
                cfg.t_low,
                cfg.t_high,
                cfg.max_replicas,
            )),
        }
    }

    /// Routing counters (handoffs, replications, de-replications).
    pub fn router_stats(&self) -> ccm_l2s::RouterStats {
        self.router.lock().expect("router poisoned").stats()
    }
}

impl Dispatch for ContentAware {
    fn name(&self) -> &'static str {
        "content-aware"
    }

    fn pick(&self, arrival: NodeId, _path: &str, file: Option<FileId>) -> NodeId {
        match file {
            // Non-file endpoints have no content to be aware of.
            None => arrival,
            Some(f) => {
                self.router
                    .lock()
                    .expect("router poisoned")
                    .route(arrival, f)
                    .target
            }
        }
    }

    fn begin(&self, node: NodeId) {
        self.router
            .lock()
            .expect("router poisoned")
            .begin_request(node);
    }

    fn end(&self, node: NodeId) {
        self.router
            .lock()
            .expect("router poisoned")
            .end_request(node);
    }
}

/// LARD-style load-aware dispatch: send the request to the node with the
/// fewest outstanding front-tier requests, reading the same
/// `ccm_front_inflight` gauges `/metrics` exports. The front tier itself
/// maintains those gauges around every backend read (the registry dedupes
/// `(name, labels)`, so both sides hold the same handles); this policy
/// only reads them, so its `begin`/`end` are the no-op defaults. Ties
/// rotate through the tied nodes so sequential (deterministic) runs
/// spread like round-robin rather than pinning the lowest node id.
pub struct LoadAware {
    inflight: Vec<Gauge>,
    rotor: AtomicUsize,
}

/// Register (or re-fetch) the per-node front-tier inflight gauges —
/// shared between the server's request accounting and [`LoadAware`].
pub fn inflight_gauges(registry: &Registry, nodes: usize) -> Vec<Gauge> {
    (0..nodes)
        .map(|n| {
            registry.gauge(
                "ccm_front_inflight",
                "Requests currently being served through the front tier",
                &[("node", n.to_string().as_str())],
            )
        })
        .collect()
}

impl LoadAware {
    /// Register (or re-fetch) the per-node inflight gauges on `registry`.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(registry: &Registry, nodes: usize) -> LoadAware {
        assert!(nodes > 0, "empty cluster");
        LoadAware {
            inflight: inflight_gauges(registry, nodes),
            rotor: AtomicUsize::new(0),
        }
    }
}

impl Dispatch for LoadAware {
    fn name(&self) -> &'static str {
        "load-aware"
    }

    fn pick(&self, _arrival: NodeId, _path: &str, _file: Option<FileId>) -> NodeId {
        let n = self.inflight.len();
        let start = self.rotor.fetch_add(1, Ordering::Relaxed) % n;
        let mut best = start;
        let mut best_load = self.inflight[start].get();
        for i in 1..n {
            let idx = (start + i) % n;
            let load = self.inflight[idx].get();
            if load < best_load {
                best = idx;
                best_load = load;
            }
        }
        NodeId(best as u16)
    }
}

/// The named policies, for CLI flags and bench matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`ConsistentHash`].
    ConsistentHash,
    /// [`ContentAware`].
    ContentAware,
    /// [`LoadAware`].
    LoadAware,
}

impl PolicyKind {
    /// Every policy, bench-matrix order.
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::RoundRobin,
            PolicyKind::ConsistentHash,
            PolicyKind::ContentAware,
            PolicyKind::LoadAware,
        ]
    }

    /// The policy's label.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::ConsistentHash => "consistent-hash",
            PolicyKind::ContentAware => "content-aware",
            PolicyKind::LoadAware => "load-aware",
        }
    }

    /// Parse a CLI spelling (`round-robin`, `consistent-hash`,
    /// `content-aware`, `load-aware`).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::all().into_iter().find(|p| p.name() == s)
    }

    /// Build the policy for a cluster of `nodes` nodes. `registry` feeds
    /// the load-aware policy its inflight gauges; the others ignore it.
    pub fn build(self, registry: &Registry, nodes: usize) -> std::sync::Arc<dyn Dispatch> {
        match self {
            PolicyKind::RoundRobin => std::sync::Arc::new(RoundRobin::new(nodes)),
            PolicyKind::ConsistentHash => std::sync::Arc::new(ConsistentHash::new(nodes)),
            PolicyKind::ContentAware => std::sync::Arc::new(ContentAware::new(nodes)),
            PolicyKind::LoadAware => std::sync::Arc::new(LoadAware::new(registry, nodes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates() {
        let rr = RoundRobin::new(3);
        let picks: Vec<u16> = (0..6)
            .map(|_| rr.pick(NodeId(0), "/file/1", None).0)
            .collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn consistent_hash_is_stable_and_spread() {
        let ch = ConsistentHash::new(4);
        let mut counts = [0u32; 4];
        for i in 0..4000 {
            let path = format!("/file/{i}");
            let a = ch.pick(NodeId(0), &path, None);
            let b = ch.pick(NodeId(3), &path, None);
            assert_eq!(a, b, "same URL, same home node, any arrival");
            counts[a.index()] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                (500..2000).contains(&c),
                "node {n} got {c} of 4000 — ring is badly unbalanced"
            );
        }
    }

    #[test]
    fn consistent_hash_remaps_only_an_arc() {
        let before = ConsistentHash::new(4);
        let after = ConsistentHash::new(5);
        let moved = (0..2000)
            .filter(|i| {
                let path = format!("/file/{i}");
                before.pick(NodeId(0), &path, None) != after.pick(NodeId(0), &path, None)
            })
            .count();
        // Adding a 5th node should move roughly 1/5 of the keyspace;
        // naive modulo hashing would move ~4/5.
        assert!(
            moved < 800,
            "{moved} of 2000 keys moved — not consistent hashing"
        );
    }

    #[test]
    fn content_aware_follows_the_assignment() {
        let ca = ContentAware::new(4);
        let first = ca.pick(NodeId(2), "/file/9", Some(FileId(9)));
        for arrival in 0..4u16 {
            assert_eq!(ca.pick(NodeId(arrival), "/file/9", Some(FileId(9))), first);
        }
        // Non-file paths stay put.
        assert_eq!(ca.pick(NodeId(3), "/metrics", None), NodeId(3));
    }

    #[test]
    fn load_aware_avoids_the_busy_node() {
        let registry = Registry::new();
        let la = LoadAware::new(&registry, 3);
        // The server maintains the gauges; the policy only reads them.
        let gauges = inflight_gauges(&registry, 3);
        gauges[0].adjust(5);
        gauges[1].adjust(5);
        for _ in 0..6 {
            assert_eq!(la.pick(NodeId(0), "/file/1", None), NodeId(2));
        }
        // Release: ties now rotate over all three nodes.
        gauges[0].adjust(-5);
        gauges[1].adjust(-5);
        let picks: std::collections::BTreeSet<u16> =
            (0..3).map(|_| la.pick(NodeId(0), "/x", None).0).collect();
        assert_eq!(picks.len(), 3, "idle ties rotate round-robin");
    }

    #[test]
    fn policy_kind_round_trips() {
        for p in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
