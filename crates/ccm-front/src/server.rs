//! The front-door tier: per-endpoint HTTP listeners in a fixed pipeline.
//!
//! ```text
//!             ┌────────── endpoint ──────────┐
//!  client ──▶ │ accept · keep-alive · parse  │   (ccm-httpd's shared
//!             └──────────────┬───────────────┘    HTTP module)
//!             ┌────────── middleware ────────┐
//!             │ obs: latency · inflight ·    │   (`ccm_front_*` family)
//!             │ dispatch/handoff counters    │
//!             └──────────────┬───────────────┘
//!             ┌────────── service ───────────┐
//!             │ route · Range/If-Range ·     │   (the `range` module +
//!             │ Dispatch::pick               │    the dispatch seam)
//!             └──────────────┬───────────────┘
//!             ┌────────── backend ───────────┐
//!             │ CCM cluster  |  live L2S     │   (the backend seam)
//!             └──────────────────────────────┘
//! ```
//!
//! One listener per cluster node plays the round-robin-DNS arrival points;
//! a request may then be *dispatched* to a different node by the policy —
//! the `moved` distinction the paper's L2S baseline charges hand-off costs
//! for. Connections are thread-per-connection with keep-alive, and because
//! each connection is drained strictly in order, pipelined requests get
//! their responses in request order with no extra machinery.

use crate::backend::FrontBackend;
use crate::dispatch::{inflight_gauges, Dispatch};
use crate::range::{self, RangeOutcome};
use ccm_core::{FileId, NodeId};
use ccm_httpd::http::{
    read_request, route_file, write_response, write_response_with, ParseError, Request,
};
use ccm_obs::{Counter, Gauge, Histogram, Registry, Stopwatch};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Response status classes tallied per policy.
const STATUS_CLASSES: [&str; 4] = ["2xx", "4xx", "5xx", "206"];

/// The `ccm_front_*` metric family.
struct FrontObs {
    /// Requests dispatched, by target node (`{policy, node}`).
    dispatch_total: Vec<Counter>,
    /// Requests whose target differed from their arrival endpoint.
    handoffs: Counter,
    /// Parse-to-response-ready latency (accounting settles before the
    /// response is written, so sequential clients stay deterministic).
    latency_ns: Histogram,
    /// Responses by status class (206 gets its own bucket: partial
    /// content is what this tier exists to measure).
    responses: [Counter; 4],
    /// Outstanding backend reads per node — the load-aware policy's
    /// signal (same handles, via registry dedupe).
    inflight: Vec<Gauge>,
}

impl FrontObs {
    fn new(registry: &Registry, policy: &'static str, nodes: usize) -> FrontObs {
        FrontObs {
            dispatch_total: (0..nodes)
                .map(|n| {
                    registry.counter(
                        "ccm_front_dispatch_total",
                        "Requests dispatched through the front tier, by target node",
                        &[("policy", policy), ("node", n.to_string().as_str())],
                    )
                })
                .collect(),
            handoffs: registry.counter(
                "ccm_front_handoffs_total",
                "Requests served by a node other than their arrival endpoint",
                &[("policy", policy)],
            ),
            latency_ns: registry.histogram(
                "ccm_front_request_latency_ns",
                "Front-tier request latency, parse to response ready",
                &[("policy", policy)],
            ),
            responses: STATUS_CLASSES.map(|class| {
                registry.counter(
                    "ccm_front_responses_total",
                    "Front-tier responses written, by status class",
                    &[("policy", policy), ("status", class)],
                )
            }),
            inflight: inflight_gauges(registry, nodes),
        }
    }

    fn count(&self, status: u16) {
        let idx = match status {
            206 => 3,
            s if s / 100 == 2 => 0,
            s if s / 100 == 4 => 1,
            _ => 2,
        };
        self.responses[idx].inc();
    }
}

/// Everything the connection workers share.
struct FrontInner {
    backend: Arc<dyn FrontBackend>,
    dispatch: Arc<dyn Dispatch>,
    registry: Registry,
    obs: FrontObs,
}

/// A running front tier: one listener per cluster node over one backend.
pub struct FrontTier {
    inner: Arc<FrontInner>,
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

impl FrontTier {
    /// Start one loopback listener per backend node. `registry` carries
    /// the `ccm_front_*` family; pass the middleware's registry to get
    /// front and cache metrics on one `/metrics` page.
    ///
    /// # Panics
    /// Panics if a loopback socket cannot be bound (no such environment
    /// is supported).
    pub fn start(
        backend: Arc<dyn FrontBackend>,
        dispatch: Arc<dyn Dispatch>,
        registry: Registry,
    ) -> FrontTier {
        let nodes = backend.nodes();
        let obs = FrontObs::new(&registry, dispatch.name(), nodes);
        let inner = Arc::new(FrontInner {
            backend,
            dispatch,
            registry,
            obs,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = Vec::with_capacity(nodes);
        let mut acceptors = Vec::with_capacity(nodes);
        for n in 0..nodes {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            addrs.push(listener.local_addr().expect("local addr"));
            let inner = inner.clone();
            let stop = stop.clone();
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("front-ep-{n}"))
                    .spawn(move || accept_loop(listener, NodeId(n as u16), inner, stop))
                    .expect("spawn acceptor"),
            );
        }
        FrontTier {
            inner,
            addrs,
            stop,
            acceptors,
        }
    }

    /// The per-endpoint addresses (what round-robin DNS would rotate
    /// through).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The dispatch policy's label.
    pub fn policy(&self) -> &'static str {
        self.inner.dispatch.name()
    }

    /// The backend underneath.
    pub fn backend(&self) -> &Arc<dyn FrontBackend> {
        &self.inner.backend
    }

    /// Requests dispatched to each node so far.
    pub fn dispatch_counts(&self) -> Vec<u64> {
        self.inner
            .obs
            .dispatch_total
            .iter()
            .map(Counter::get)
            .collect()
    }

    /// Requests moved off their arrival endpoint so far.
    pub fn handoffs(&self) -> u64 {
        self.inner.obs.handoffs.get()
    }

    /// One-line dispatch summary (the `--front` demo prints this on
    /// shutdown).
    pub fn dispatch_summary(&self) -> String {
        let counts = self.dispatch_counts();
        let total: u64 = counts.iter().sum();
        format!(
            "policy={} dispatched={} handoffs={} per-node={:?}",
            self.policy(),
            total,
            self.handoffs(),
            counts
        )
    }

    /// Stop accepting and drain connection workers. The backend is left
    /// running — its lifecycle belongs to whoever started it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for &addr in &self.addrs {
            let _ = TcpStream::connect(addr); // nudge accept()
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    endpoint: NodeId,
    inner: Arc<FrontInner>,
    stop: Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = inner.clone();
        workers.push(
            std::thread::Builder::new()
                .name("front-conn".into())
                .spawn(move || serve_connection(stream, endpoint, &inner))
                .expect("spawn worker"),
        );
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

/// A fully prepared response, accounting already done. Writing it is the
/// *last* thing that happens for a request: once the client has read the
/// response, every counter, gauge, and dispatch-policy bracket for it has
/// already settled — which is what makes a sequential client a fully
/// deterministic driver.
struct Prepared {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    extra: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Prepared {
    fn new(status: u16, reason: &'static str, body: Vec<u8>) -> Prepared {
        Prepared {
            status,
            reason,
            content_type: "application/octet-stream",
            extra: Vec::new(),
            body,
        }
    }

    fn write(&self, writer: &mut TcpStream, req: &Request, head_only: bool) -> std::io::Result<()> {
        let extra: Vec<(&str, &str)> = self.extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
        write_response_with(
            writer,
            self.status,
            self.reason,
            self.content_type,
            &extra,
            &self.body,
            req.keep_alive,
            head_only,
        )
    }
}

/// Endpoint stage: keep-alive parse loop. Requests are answered strictly
/// in arrival order, which is exactly the ordering pipelining requires.
fn serve_connection(stream: TcpStream, endpoint: NodeId, inner: &FrontInner) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return,
            Err(_) => {
                inner.obs.count(400);
                let _ = write_response(&mut writer, 400, "Bad Request", b"", false, false);
                return;
            }
        };
        // Middleware stage: latency + status accounting around the
        // service call — all of it *before* the response is written.
        let head_only = req.method == "HEAD";
        let sw = Stopwatch::start();
        let prepared = handle_request(endpoint, &req, inner);
        sw.stop(&inner.obs.latency_ns);
        inner.obs.count(prepared.status);
        let ok = prepared.write(&mut writer, &req, head_only);
        if ok.is_err() || !req.keep_alive {
            return;
        }
    }
}

/// Service stage: routing, range semantics, and the dispatch decision.
fn handle_request(endpoint: NodeId, req: &Request, inner: &FrontInner) -> Prepared {
    if req.method != "GET" && req.method != "HEAD" {
        return Prepared::new(405, "Method Not Allowed", Vec::new());
    }
    match req.path.as_str() {
        "/metrics" => {
            let body = ccm_obs::prom::render(&inner.registry.snapshot());
            let mut p = Prepared::new(200, "OK", body.into_bytes());
            p.content_type = "text/plain; version=0.0.4; charset=utf-8";
            p
        }
        "/front/stats" => {
            let counts = inner
                .obs
                .dispatch_total
                .iter()
                .map(|c| c.get().to_string())
                .collect::<Vec<_>>()
                .join(",");
            let body = format!(
                "{{\"policy\":\"{}\",\"backend\":\"{}\",\"handoffs\":{},\"dispatched\":[{}]}}",
                inner.dispatch.name(),
                inner.backend.name(),
                inner.obs.handoffs.get(),
                counts
            );
            let mut p = Prepared::new(200, "OK", body.into_bytes());
            p.content_type = "application/json";
            p
        }
        path => {
            let file = route_file(path)
                .filter(|&id| (id as usize) < inner.backend.catalog().num_files())
                .map(FileId);
            match file {
                Some(file) => serve_file(endpoint, req, inner, file),
                None => Prepared::new(404, "Not Found", b"no such file".to_vec()),
            }
        }
    }
}

fn serve_file(endpoint: NodeId, req: &Request, inner: &FrontInner, file: FileId) -> Prepared {
    let size = inner.backend.catalog().size_of(file);
    let etag = range::etag(file, size);
    let outcome = range::evaluate(&req.headers, size, &etag);

    // An unsatisfiable range is answered at the front door — no byte of
    // the selection exists, so there is nothing to dispatch for.
    if outcome == RangeOutcome::Unsatisfiable {
        let mut p = Prepared::new(416, "Range Not Satisfiable", Vec::new());
        p.extra.push(("Content-Range", format!("bytes */{size}")));
        return p;
    }

    // Dispatch stage: pick the serving node, account the decision, and
    // bracket the backend read with the load signals.
    let target = inner.dispatch.pick(endpoint, &req.path, Some(file));
    inner.obs.dispatch_total[target.index()].inc();
    if target != endpoint {
        inner.obs.handoffs.inc();
    }
    inner.obs.inflight[target.index()].adjust(1);
    inner.dispatch.begin(target);

    let prepared = match outcome {
        RangeOutcome::Full => {
            let body = inner.backend.read_file(target, file);
            let mut p = Prepared::new(200, "OK", body);
            p.extra.push(("ETag", etag.clone()));
            p.extra.push(("Accept-Ranges", "bytes".to_string()));
            p
        }
        RangeOutcome::Partial { start, end } => {
            let body = inner.backend.read_range(target, file, start, end);
            let mut p = Prepared::new(206, "Partial Content", body);
            p.extra
                .push(("Content-Range", format!("bytes {start}-{end}/{size}")));
            p.extra.push(("ETag", etag.clone()));
            p.extra.push(("Accept-Ranges", "bytes".to_string()));
            p
        }
        RangeOutcome::Unsatisfiable => unreachable!("handled above"),
    };

    inner.dispatch.end(target);
    inner.obs.inflight[target.index()].adjust(-1);
    prepared
}
