//! A blocking HTTP client that keeps response headers — the front tier's
//! tests and load driver need `Content-Range`/`ETag`, which the simpler
//! `ccm-httpd` client discards.

use ccm_httpd::http::Headers;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response with its headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (case-insensitive multimap).
    pub headers: Headers,
    /// The body (empty for HEAD).
    pub body: Vec<u8>,
}

fn read_response(reader: &mut impl BufRead, head_only: bool) -> std::io::Result<Response> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed before status line"));
    }
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Headers::new();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("eof in headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push(name.trim(), value.trim());
    }
    let content_length: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("missing content-length"))?;
    let mut body = vec![0u8; if head_only { 0 } else { content_length }];
    reader.read_exact(&mut body)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// A persistent connection to one front endpoint.
pub struct FrontClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl FrontClient {
    /// Open a keep-alive connection to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<FrontClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FrontClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// `GET path` with extra request headers (e.g. `Range`).
    pub fn get_with(&mut self, path: &str, extra: &[(&str, &str)]) -> std::io::Result<Response> {
        self.send("GET", path, extra)?;
        read_response(&mut self.reader, false)
    }

    /// Plain keep-alive `GET`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.get_with(path, &[])
    }

    /// `HEAD path` with extra request headers.
    pub fn head_with(&mut self, path: &str, extra: &[(&str, &str)]) -> std::io::Result<Response> {
        self.send("HEAD", path, extra)?;
        read_response(&mut self.reader, true)
    }

    /// Write one request head without reading the response — the
    /// pipelining half. Follow with [`FrontClient::read_pipelined`].
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        extra: &[(&str, &str)],
    ) -> std::io::Result<()> {
        write!(self.writer, "{method} {path} HTTP/1.1\r\nHost: front\r\n")?;
        for (name, value) in extra {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }

    /// Read one response off the wire (responses to pipelined requests
    /// arrive strictly in request order).
    pub fn read_pipelined(&mut self) -> std::io::Result<Response> {
        read_response(&mut self.reader, false)
    }
}

/// One-shot `GET` with extra headers (fresh connection, close).
pub fn get_with(addr: SocketAddr, path: &str, extra: &[(&str, &str)]) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: front\r\nConnection: close\r\n"
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader, false)
}

/// One-shot plain `GET`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    get_with(addr, path, &[])
}
