//! The backend seam: what actually serves bytes once dispatch has picked
//! a node.
//!
//! Two interchangeable backends sit behind [`FrontBackend`], giving the
//! paper's comparison a live form:
//!
//! * [`CcmBackend`] — the cooperative caching middleware. A read at node
//!   *n* goes through that node's [`NodeHandle`], so remote hits, master
//!   forwarding, and disk fallback all happen exactly as in the runtime's
//!   own tests; the transport underneath (channel or TCP) is whatever the
//!   middleware was started on.
//! * [`L2sBackend`] — Bianchini & Carrera's server, live: per-node
//!   **whole-file** LRU caches with de-replication-aware eviction
//!   ([`FileCache`], the same type the simulator uses) and **no**
//!   cooperative peer fetch. A miss reads the local disk — L2S "assumes
//!   files are replicated everywhere" (§4.1), so every node's store holds
//!   every file.
//!
//! Hit accounting is block-weighted on both sides (an L2S whole-file hit
//! counts as `blocks_of(file)` block hits) so the two backends' hit ratios
//! compare on the paper's terms — fraction of 8 KB block accesses served
//! from cluster memory.

use ccm_core::{BlockId, FileId, NodeId, BLOCK_SIZE};
use ccm_l2s::FileCache;
use ccm_rt::store::read_file_direct;
use ccm_rt::{BlockStore, Catalog, Middleware, NodeHandle};
use std::sync::{Arc, Mutex};

/// Block-weighted cache accounting, comparable across backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Block accesses served from cluster memory (local or, for CCM,
    /// a peer's).
    pub hits: u64,
    /// Total block accesses.
    pub accesses: u64,
}

impl HitStats {
    /// Hits over accesses; 0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A cluster of servers the front tier can read files from.
pub trait FrontBackend: Send + Sync {
    /// Backend label for reports and metrics (`"ccm"` / `"l2s"`).
    fn name(&self) -> &'static str;

    /// Cluster size.
    fn nodes(&self) -> usize;

    /// The file catalog served.
    fn catalog(&self) -> &Catalog;

    /// Read the whole file at `node`.
    fn read_file(&self, node: NodeId, file: FileId) -> Vec<u8>;

    /// Read bytes `start..=end` (inclusive, in-bounds — the range module
    /// guarantees both) of `file` at `node`.
    fn read_range(&self, node: NodeId, file: FileId, start: u64, end: u64) -> Vec<u8>;

    /// Block-weighted hit accounting so far.
    fn hit_stats(&self) -> HitStats;

    /// Drain any in-flight background work so counters are stable.
    fn quiesce(&self) {}
}

/// The cooperative caching middleware as a front-tier backend.
pub struct CcmBackend {
    middleware: Arc<Middleware>,
    handles: Vec<NodeHandle>,
    catalog: Catalog,
}

impl CcmBackend {
    /// Wrap a running middleware. The caller keeps ownership of the
    /// cluster's lifecycle (shutdown stays wherever the middleware was
    /// started).
    pub fn new(middleware: Arc<Middleware>) -> CcmBackend {
        let handles = (0..middleware.nodes())
            .map(|n| middleware.handle(NodeId(n as u16)))
            .collect();
        let catalog = middleware.catalog().clone();
        CcmBackend {
            middleware,
            handles,
            catalog,
        }
    }

    /// The middleware underneath (stats, invariants, registry).
    pub fn middleware(&self) -> &Middleware {
        &self.middleware
    }
}

impl FrontBackend for CcmBackend {
    fn name(&self) -> &'static str {
        "ccm"
    }

    fn nodes(&self) -> usize {
        self.handles.len()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn read_file(&self, node: NodeId, file: FileId) -> Vec<u8> {
        self.handles[node.index()].read_file(file)
    }

    fn read_range(&self, node: NodeId, file: FileId, start: u64, end: u64) -> Vec<u8> {
        // Only the blocks covering the range are touched — the point of
        // mapping HTTP ranges onto block reads.
        let handle = &self.handles[node.index()];
        let first = (start / BLOCK_SIZE) as u32;
        let last = (end / BLOCK_SIZE) as u32;
        let mut out = Vec::with_capacity((end - start + 1) as usize);
        for b in first..=last {
            let block = handle.read_block(BlockId::new(file, b));
            let base = b as u64 * BLOCK_SIZE;
            let lo = start.saturating_sub(base) as usize;
            let hi = ((end + 1 - base) as usize).min(block.len());
            out.extend_from_slice(&block[lo..hi]);
        }
        out
    }

    fn hit_stats(&self) -> HitStats {
        let s = self.middleware.stats();
        let hits = s.local_hits + s.remote_hits;
        HitStats {
            hits,
            accesses: hits + s.disk_reads,
        }
    }

    fn quiesce(&self) {
        self.middleware.quiesce();
    }
}

/// Mutable half of the live L2S backend (one lock: the simulator's
/// `L2sSystem` is single-threaded by design, and the live baseline keeps
/// its cluster-wide copy counts the same way).
struct L2sState {
    caches: Vec<FileCache>,
    /// Cluster-wide in-memory copy count per file (feeds the
    /// de-replication-aware eviction policy).
    copies: Vec<u32>,
    tick: u64,
    stats: HitStats,
}

/// Bianchini & Carrera's whole-file caching server, live.
pub struct L2sBackend {
    catalog: Catalog,
    store: Arc<dyn BlockStore>,
    state: Mutex<L2sState>,
}

impl L2sBackend {
    /// A cluster of `nodes` nodes, each with `capacity_bytes` of
    /// whole-file cache, over a fully replicated `store`.
    ///
    /// # Panics
    /// Panics on an empty cluster.
    pub fn new(
        catalog: Catalog,
        store: Arc<dyn BlockStore>,
        nodes: usize,
        capacity_bytes: u64,
    ) -> L2sBackend {
        assert!(nodes > 0, "empty cluster");
        let sizes: Arc<[u64]> = catalog.sizes().to_vec().into();
        let caches = (0..nodes)
            .map(|_| FileCache::new(capacity_bytes, sizes.clone()))
            .collect();
        L2sBackend {
            state: Mutex::new(L2sState {
                caches,
                copies: vec![0; catalog.num_files()],
                tick: 0,
                stats: HitStats::default(),
            }),
            catalog,
            store,
        }
    }

    /// Whole-file cache access at `node`: LRU touch, faulting the file in
    /// (with de-replication-aware eviction) on a miss.
    fn access(&self, node: NodeId, file: FileId) {
        let mut st = self.state.lock().expect("l2s state poisoned");
        st.tick += 1;
        let tick = st.tick;
        let blocks = self.catalog.blocks_of(file) as u64;
        st.stats.accesses += blocks;
        let n = node.index();
        if st.caches[n].touch(file, tick) {
            st.stats.hits += blocks;
        } else if st.caches[n].fits(file) {
            let copies = std::mem::take(&mut st.copies);
            let evicted = st.caches[n].insert_with_evictions(file, tick, |f| copies[f.0 as usize]);
            st.copies = copies;
            for e in evicted {
                st.copies[e.0 as usize] -= 1;
            }
            st.copies[file.0 as usize] += 1;
        }
    }

    /// Full-state invariant check (tests): copy counts match the caches.
    pub fn check_invariants(&self) {
        let st = self.state.lock().expect("l2s state poisoned");
        let mut counts = vec![0u32; st.copies.len()];
        for c in &st.caches {
            c.check_invariants();
            for f in c.iter_oldest_first() {
                counts[f.0 as usize] += 1;
            }
        }
        assert_eq!(counts, st.copies, "copy counts drifted");
    }
}

impl FrontBackend for L2sBackend {
    fn name(&self) -> &'static str {
        "l2s"
    }

    fn nodes(&self) -> usize {
        self.state.lock().expect("l2s state poisoned").caches.len()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn read_file(&self, node: NodeId, file: FileId) -> Vec<u8> {
        self.access(node, file);
        // The cache models memory residency; bytes always come from the
        // (local — full disk replication) store, so responses are
        // verifiable against it either way.
        read_file_direct(self.store.as_ref(), &self.catalog, file)
    }

    fn read_range(&self, node: NodeId, file: FileId, start: u64, end: u64) -> Vec<u8> {
        // Whole-file granularity: a range request still faults the whole
        // file — that is the L2S design point the paper's block-granular
        // middleware argues against.
        self.access(node, file);
        let first = (start / BLOCK_SIZE) as u32;
        let last = (end / BLOCK_SIZE) as u32;
        let mut out = Vec::with_capacity((end - start + 1) as usize);
        for b in first..=last {
            let block = self.store.read_block(BlockId::new(file, b));
            let base = b as u64 * BLOCK_SIZE;
            let lo = start.saturating_sub(base) as usize;
            let hi = ((end + 1 - base) as usize).min(block.len());
            out.extend_from_slice(&block[lo..hi]);
        }
        out
    }

    fn hit_stats(&self) -> HitStats {
        self.state.lock().expect("l2s state poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm_rt::SyntheticStore;

    fn l2s(nodes: usize, cap: u64, sizes: Vec<u64>) -> L2sBackend {
        let catalog = Catalog::new(sizes);
        let store = Arc::new(SyntheticStore::new(catalog.clone(), 7));
        L2sBackend::new(catalog, store, nodes, cap)
    }

    #[test]
    fn l2s_serves_store_bytes_and_counts_block_weighted() {
        let b = l2s(2, 64 * BLOCK_SIZE, vec![3 * BLOCK_SIZE + 5, 100]);
        let body = b.read_file(NodeId(0), FileId(0));
        assert_eq!(body.len() as u64, 3 * BLOCK_SIZE + 5);
        let s = b.hit_stats();
        assert_eq!((s.hits, s.accesses), (0, 4), "cold miss, 4 blocks");
        b.read_file(NodeId(0), FileId(0));
        let s = b.hit_stats();
        assert_eq!((s.hits, s.accesses), (4, 8), "warm hit, block-weighted");
        // A different node has its own cache: miss again.
        b.read_file(NodeId(1), FileId(0));
        assert_eq!(b.hit_stats().hits, 4);
        b.check_invariants();
    }

    #[test]
    fn l2s_range_slices_match_the_file() {
        let b = l2s(1, 64 * BLOCK_SIZE, vec![2 * BLOCK_SIZE + 17]);
        let full = b.read_file(NodeId(0), FileId(0));
        let (start, end) = (BLOCK_SIZE - 3, BLOCK_SIZE + 9);
        let part = b.read_range(NodeId(0), FileId(0), start, end);
        assert_eq!(part, full[start as usize..=end as usize]);
    }

    #[test]
    fn l2s_oversized_files_never_cache() {
        let b = l2s(1, BLOCK_SIZE, vec![4 * BLOCK_SIZE]);
        b.read_file(NodeId(0), FileId(0));
        b.read_file(NodeId(0), FileId(0));
        assert_eq!(b.hit_stats().hits, 0, "file larger than the cache");
        b.check_invariants();
    }
}
