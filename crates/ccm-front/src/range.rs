//! `Range` / `If-Range` semantics for the front tier.
//!
//! The front door maps HTTP byte ranges onto block reads, so range
//! evaluation lives here as a pure function: given the request headers,
//! the file size, and the file's entity tag, decide whether to serve the
//! full body (`200`), a single byte range (`206`), or a range error
//! (`416`). The subset implemented is the one the RFC makes mandatory for
//! a server that advertises `Accept-Ranges: bytes`:
//!
//! * `bytes=a-b`, `bytes=a-`, and suffix `bytes=-n` forms;
//! * last-byte positions past the end are clamped (RFC 9110 §14.1.2);
//! * a suffix longer than the file selects the whole file (still `206`);
//! * a first-byte position at/after the end — or any range against an
//!   empty file — is unsatisfiable → `416` with `Content-Range: bytes
//!   */<size>`;
//! * `If-Range` with a non-matching validator downgrades to a full `200`
//!   (RFC 9110 §13.1.5);
//! * anything else (malformed specs, other units, multiple ranges) is
//!   ignored and the full body served — always a legal answer, since
//!   `Range` is an optimization, not an obligation.

use ccm_core::FileId;
use ccm_httpd::http::Headers;

/// How a request's range headers resolve against a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOutcome {
    /// Serve the whole body with `200` (no `Range`, an ignorable `Range`,
    /// or an `If-Range` mismatch).
    Full,
    /// Serve bytes `start..=end` with `206` and a `Content-Range`.
    Partial {
        /// First byte position (inclusive).
        start: u64,
        /// Last byte position (inclusive), `< size`.
        end: u64,
    },
    /// No byte of the selection is satisfiable → `416`.
    Unsatisfiable,
}

/// The strong entity tag the front tier hands out for a catalog file.
/// Synthetic content is a pure function of `(file, size)`, so this is a
/// strong validator in the RFC sense.
pub fn etag(file: FileId, size: u64) -> String {
    format!("\"f{}-{}\"", file.0, size)
}

/// One parsed `bytes=` range spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Spec {
    /// `a-b` (b may be absent → u64::MAX sentinel handled by caller).
    FromTo(u64, Option<u64>),
    /// `-n`: the final n bytes.
    Suffix(u64),
}

/// Parse a `Range` header value holding exactly one `bytes=` spec.
/// Returns `None` for anything this tier chooses to ignore (other units,
/// multiple ranges, malformed specs).
fn parse_single_range(value: &str) -> Option<Spec> {
    let rest = value.trim().strip_prefix("bytes=")?;
    if rest.contains(',') {
        return None; // multipart/byteranges is not worth its framing here
    }
    let rest = rest.trim();
    if let Some(n) = rest.strip_prefix('-') {
        return n.parse().ok().map(Spec::Suffix);
    }
    let (a, b) = rest.split_once('-')?;
    let start: u64 = a.trim().parse().ok()?;
    let end = match b.trim() {
        "" => None,
        s => Some(s.parse().ok()?),
    };
    if let Some(e) = end {
        if e < start {
            return None; // backwards range: ignore, serve full
        }
    }
    Some(Spec::FromTo(start, end))
}

/// Resolve the request's `Range`/`If-Range` headers against a file of
/// `size` bytes whose current strong validator is `current_etag`.
pub fn evaluate(headers: &Headers, size: u64, current_etag: &str) -> RangeOutcome {
    let Some(range) = headers.get("range") else {
        return RangeOutcome::Full;
    };
    // If-Range: only honor the Range when the validator still matches;
    // a stale (or date-shaped, which we never issue) validator means the
    // client's partial copy may not splice, so send the whole file.
    if let Some(validator) = headers.get("if-range") {
        if validator.trim() != current_etag {
            return RangeOutcome::Full;
        }
    }
    let Some(spec) = parse_single_range(range) else {
        return RangeOutcome::Full;
    };
    match spec {
        Spec::Suffix(0) => RangeOutcome::Unsatisfiable,
        Spec::Suffix(n) => {
            if size == 0 {
                RangeOutcome::Unsatisfiable
            } else {
                RangeOutcome::Partial {
                    start: size.saturating_sub(n),
                    end: size - 1,
                }
            }
        }
        Spec::FromTo(start, end) => {
            if start >= size {
                return RangeOutcome::Unsatisfiable; // also covers size == 0
            }
            let end = end.map_or(size - 1, |e| e.min(size - 1));
            RangeOutcome::Partial { start, end }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_range(value: &str) -> Headers {
        let mut h = Headers::new();
        h.push("Range", value);
        h
    }

    #[test]
    fn no_range_is_full() {
        assert_eq!(evaluate(&Headers::new(), 100, "\"e\""), RangeOutcome::Full);
    }

    #[test]
    fn bounded_range() {
        assert_eq!(
            evaluate(&with_range("bytes=2-7"), 100, "\"e\""),
            RangeOutcome::Partial { start: 2, end: 7 }
        );
    }

    #[test]
    fn open_range_runs_to_the_last_byte() {
        assert_eq!(
            evaluate(&with_range("bytes=90-"), 100, "\"e\""),
            RangeOutcome::Partial { start: 90, end: 99 }
        );
    }

    #[test]
    fn overlong_end_is_clamped() {
        assert_eq!(
            evaluate(&with_range("bytes=50-1000"), 100, "\"e\""),
            RangeOutcome::Partial { start: 50, end: 99 }
        );
    }

    #[test]
    fn suffix_selects_the_tail() {
        assert_eq!(
            evaluate(&with_range("bytes=-10"), 100, "\"e\""),
            RangeOutcome::Partial { start: 90, end: 99 }
        );
    }

    #[test]
    fn overlong_suffix_selects_the_whole_file() {
        assert_eq!(
            evaluate(&with_range("bytes=-500"), 100, "\"e\""),
            RangeOutcome::Partial { start: 0, end: 99 }
        );
    }

    #[test]
    fn unsatisfiable_cases() {
        for (range, size) in [
            ("bytes=100-", 100),
            ("bytes=100-200", 100),
            ("bytes=-0", 100),
            ("bytes=0-", 0),
            ("bytes=-5", 0),
        ] {
            assert_eq!(
                evaluate(&with_range(range), size, "\"e\""),
                RangeOutcome::Unsatisfiable,
                "{range} against size {size}"
            );
        }
    }

    #[test]
    fn ignorable_forms_serve_full() {
        for range in [
            "blocks=0-1",
            "bytes=1-2,4-5",
            "bytes=7-2",
            "bytes=x-y",
            "bytes=",
            "bytes=-",
        ] {
            assert_eq!(
                evaluate(&with_range(range), 100, "\"e\""),
                RangeOutcome::Full,
                "{range} should be ignored"
            );
        }
    }

    #[test]
    fn if_range_gates_the_range() {
        let mut h = with_range("bytes=0-4");
        h.push("If-Range", "\"stale\"");
        assert_eq!(evaluate(&h, 100, "\"fresh\""), RangeOutcome::Full);

        let mut h = with_range("bytes=0-4");
        h.push("If-Range", "\"fresh\"");
        assert_eq!(
            evaluate(&h, 100, "\"fresh\""),
            RangeOutcome::Partial { start: 0, end: 4 }
        );
    }

    #[test]
    fn etag_is_a_quoted_strong_validator() {
        let t = etag(FileId(7), 1234);
        assert_eq!(t, "\"f7-1234\"");
        assert_ne!(t, etag(FileId(7), 1235), "size participates");
        assert_ne!(t, etag(FileId(8), 1234), "file id participates");
    }
}
