//! # ccm-front — the content-aware HTTP front tier
//!
//! The paper's cluster is a *server*: clients talk HTTP to a front door,
//! and the interesting question is what happens to the bytes behind it.
//! This crate is that front door, structured as a fixed pipeline
//! (endpoint → middleware → service → backend; see [`server`]) with two
//! deliberate seams:
//!
//! * **the dispatch seam** ([`dispatch::Dispatch`]) — who serves a
//!   request: round-robin DNS, consistent-hash by URL, the L2S
//!   content-aware policy (running the *same* [`ccm_l2s::L2sRouter`] core
//!   as the simulator), or LARD-style load-aware;
//! * **the backend seam** ([`backend::FrontBackend`]) — what serves it:
//!   the cooperative caching middleware (block-granular, peer fetch,
//!   channel or TCP transport) or a live L2S baseline (whole-file LRU
//!   with de-replication, no cooperation).
//!
//! Crossing the two seams reproduces the paper's CCM-vs-L2S comparison
//! over real sockets: same traces, same front door, different caching
//! architecture underneath. HTTP semantics live in [`range`]
//! (`Range`/`If-Range` mapped onto block reads — a range request against
//! the CCM backend touches only the blocks covering the range, while L2S
//! must fault the whole file) and in `ccm-httpd`'s shared parsing module.
//!
//! Everything the tier does is visible as the `ccm_front_*` metric family
//! on `GET /metrics`: per-policy dispatch counters, handoff counters,
//! request-latency histograms, and the per-node inflight gauges that
//! double as the load-aware policy's input signal.

#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod dispatch;
pub mod range;
pub mod server;

pub use backend::{CcmBackend, FrontBackend, HitStats, L2sBackend};
pub use client::FrontClient;
pub use dispatch::{ConsistentHash, ContentAware, Dispatch, LoadAware, PolicyKind, RoundRobin};
pub use range::{etag, evaluate, RangeOutcome};
pub use server::FrontTier;
