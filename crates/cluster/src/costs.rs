//! The simulation cost model — Table 1 of the paper.
//!
//! "Overall, our simulated parameters approximate a VIA Gb/s LAN, 800 MHz
//! Pentium III CPU with 133 MHz main memory, and an IBM Deskstar 75GXP disk;
//! we derived these parameters using careful single-node measurements and
//! some extrapolation." (§4.2)
//!
//! The OCR of the paper drops leading zeros and denominators from Table 1;
//! the values here restore them to be consistent with that hardware (see
//! DESIGN.md, "Reconstructed constants"). Every constant is a plain public
//! field so experiments can override any of them (the paper's §6 explicitly
//! plans a hardware-sensitivity study — the `ext_*` benches use this).
//!
//! Sizes are in **bytes**, times in **milliseconds** internally, returned as
//! [`SimDuration`]s.

use simcore::{SimDuration, SimTime};

/// All hardware/service timing constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// URL parse time per request, ms. Table 1 "Parsing time".
    pub parse_ms: f64,
    /// Fixed part of serving a reply from memory, ms. Table 1 "Serving time".
    pub serve_base_ms: f64,
    /// Copy-out rate while serving, bytes per ms (≈ 115 MB/s on the PIII).
    pub serve_bytes_per_ms: f64,
    /// Fixed CPU cost to process a file request, ms ("Process a file request").
    pub file_req_base_ms: f64,
    /// Per-block CPU cost while processing a file request, ms.
    pub file_req_per_block_ms: f64,
    /// CPU cost for a node to serve one block to a peer, ms.
    pub peer_block_ms: f64,
    /// CPU cost to install one new block in the local cache, ms.
    pub cache_block_ms: f64,
    /// CPU cost to process an evicted master (forwarding bookkeeping), ms.
    pub evict_master_ms: f64,
    /// Average seek + rotational positioning time, ms (Deskstar 75GXP).
    pub disk_seek_ms: f64,
    /// Sequential media transfer rate, bytes per ms (≈ 37 MB/s).
    pub disk_bytes_per_ms: f64,
    /// Fixed bus transaction cost, ms.
    pub bus_base_ms: f64,
    /// Bus transfer rate, bytes per ms (PC133 memory bus ≈ 1 GB/s).
    pub bus_bytes_per_ms: f64,
    /// One-way wire latency, ms (VIA user-level messaging).
    pub net_latency_ms: f64,
    /// NIC transfer rate, bytes per ms (Gb/s ≈ 125 MB/s).
    pub nic_bytes_per_ms: f64,
    /// Router forwarding time per client request, ms (Cisco 7600-class).
    pub router_ms: f64,
    /// TCP hand-off cost charged to the initial node when L2S moves a
    /// request to another server: transferring connection state is a small
    /// control operation, far cheaper than relaying the response (the ~7 %
    /// advantage cited from Bianchini & Carrera).
    pub handoff_ms: f64,
    /// Small control message size, bytes (block request, directory traffic).
    pub control_msg_bytes: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            parse_ms: 0.1,
            serve_base_ms: 0.1,
            serve_bytes_per_ms: 115_000.0,
            file_req_base_ms: 0.03,
            file_req_per_block_ms: 0.01,
            peer_block_ms: 0.07,
            cache_block_ms: 0.01,
            evict_master_ms: 0.016,
            disk_seek_ms: 6.5,
            disk_bytes_per_ms: 37_000.0,
            bus_base_ms: 0.001,
            bus_bytes_per_ms: 1_000_000.0,
            net_latency_ms: 0.038,
            nic_bytes_per_ms: 125_000.0,
            router_ms: 0.001,
            handoff_ms: 0.08,
            control_msg_bytes: 128,
        }
    }
}

impl CostModel {
    /// Time to parse one incoming HTTP request.
    pub fn parse_time(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.parse_ms)
    }

    /// CPU time to send `bytes` of cached content to a client.
    pub fn serve_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_millis_f64(self.serve_base_ms + bytes as f64 / self.serve_bytes_per_ms)
    }

    /// CPU time to set up a file request of `nblocks` blocks.
    pub fn file_request_time(&self, nblocks: u32) -> SimDuration {
        SimDuration::from_millis_f64(
            self.file_req_base_ms + nblocks as f64 * self.file_req_per_block_ms,
        )
    }

    /// CPU time at a peer to serve one block request.
    pub fn peer_block_time(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.peer_block_ms)
    }

    /// CPU time to install one fetched block into the local cache.
    pub fn cache_block_time(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.cache_block_ms)
    }

    /// CPU time to process an evicted master block (forward bookkeeping).
    pub fn evict_master_time(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.evict_master_ms)
    }

    /// Disk time for one request: `seeks` positioning operations plus the
    /// sequential transfer of `bytes`.
    pub fn disk_time(&self, bytes: u64, seeks: u32) -> SimDuration {
        SimDuration::from_millis_f64(
            seeks as f64 * self.disk_seek_ms + bytes as f64 / self.disk_bytes_per_ms,
        )
    }

    /// Bus time to move `bytes` between memory and a device.
    pub fn bus_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_millis_f64(self.bus_base_ms + bytes as f64 / self.bus_bytes_per_ms)
    }

    /// NIC occupancy to push `bytes` onto the wire.
    pub fn nic_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_millis_f64(bytes as f64 / self.nic_bytes_per_ms)
    }

    /// One-way wire latency.
    pub fn net_latency(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.net_latency_ms)
    }

    /// Router forwarding time for one client request.
    pub fn router_time(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.router_ms)
    }

    /// TCP hand-off CPU cost (L2S only).
    pub fn handoff_time(&self) -> SimDuration {
        SimDuration::from_millis_f64(self.handoff_ms)
    }

    /// Render the model as the rows of Table 1 (used by the `table1` bench).
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        let f = |ms: f64| format!("{ms:.3} ms");
        vec![
            ("Parsing time".into(), f(self.parse_ms)),
            (
                "Serving time".into(),
                format!(
                    "{:.3} + size/{:.0} ms",
                    self.serve_base_ms, self.serve_bytes_per_ms
                ),
            ),
            (
                "Process a file request".into(),
                format!(
                    "{:.3} + nblocks*{:.3} ms",
                    self.file_req_base_ms, self.file_req_per_block_ms
                ),
            ),
            ("Serve peer block request".into(), f(self.peer_block_ms)),
            ("Cache a new block".into(), f(self.cache_block_ms)),
            (
                "Process an evicted master block".into(),
                f(self.evict_master_ms),
            ),
            (
                "Disk read (non-contiguous)".into(),
                format!(
                    "{:.1} + size/{:.0} ms",
                    self.disk_seek_ms, self.disk_bytes_per_ms
                ),
            ),
            (
                "Disk read (contiguous)".into(),
                format!("size/{:.0} ms", self.disk_bytes_per_ms),
            ),
            (
                "Bus transfer".into(),
                format!(
                    "{:.3} + size/{:.0} ms",
                    self.bus_base_ms, self.bus_bytes_per_ms
                ),
            ),
            ("Network latency".into(), f(self.net_latency_ms)),
        ]
    }
}

/// Convenience: the end-to-end unloaded time for a message of `bytes`
/// between two nodes (sender NIC + wire), from `now`.
pub fn message_arrival(costs: &CostModel, now: SimTime, bytes: u64) -> SimTime {
    now + costs.nic_time(bytes) + costs.net_latency()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_reconstructed_table1() {
        let c = CostModel::default();
        assert_eq!(c.parse_time(), SimDuration::from_micros(100));
        assert_eq!(c.peer_block_time(), SimDuration::from_micros(70));
        assert_eq!(c.cache_block_time(), SimDuration::from_micros(10));
        assert_eq!(c.evict_master_time(), SimDuration::from_micros(16));
        assert_eq!(c.net_latency(), SimDuration::from_micros(38));
    }

    #[test]
    fn serve_time_scales_with_size() {
        let c = CostModel::default();
        let small = c.serve_time(1_000);
        let big = c.serve_time(100_000);
        assert!(big > small);
        // 115 KB takes ~1 ms of copy plus the 0.1 ms base.
        let t = c.serve_time(115_000);
        assert!((t.as_millis_f64() - 1.1).abs() < 0.01, "{t}");
    }

    #[test]
    fn disk_seek_dominates_small_reads() {
        let c = CostModel::default();
        let with_seek = c.disk_time(8 * 1024, 1);
        let contiguous = c.disk_time(8 * 1024, 0);
        assert!(with_seek.as_millis_f64() > 6.0);
        assert!(contiguous.as_millis_f64() < 0.5);
    }

    #[test]
    fn gigabit_nic_rate() {
        let c = CostModel::default();
        // 125 KB should take ~1 ms at 1 Gb/s.
        let t = c.nic_time(125_000);
        assert!((t.as_millis_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn file_request_time_grows_per_block() {
        let c = CostModel::default();
        let one = c.file_request_time(1);
        let ten = c.file_request_time(10);
        assert_eq!(
            (ten - one),
            SimDuration::from_millis_f64(9.0 * c.file_req_per_block_ms)
        );
    }

    #[test]
    fn message_arrival_adds_nic_and_latency() {
        let c = CostModel::default();
        let t = message_arrival(&c, SimTime::ZERO, 125_000);
        assert!((t.as_millis_f64() - 1.038).abs() < 1e-6);
    }

    #[test]
    fn table1_has_all_rows() {
        let rows = CostModel::default().table1_rows();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().any(|(k, _)| k.contains("Parsing")));
        assert!(rows.iter().any(|(k, _)| k.contains("Network latency")));
    }
}
