//! Round-robin DNS.
//!
//! "Client requests are distributed among the cluster's nodes using a round
//! robin DNS scheme" (§4.2, citing the NCSA prototype). DNS-level round robin
//! binds a *client* to a node for its whole session — each closed-loop client
//! sends all its requests to the node DNS handed it — which is what diffuses
//! hot files across the cluster under the middleware (§5: "the round-robin
//! distribution of requests diffuses the hot files throughout the
//! cluster").

use ccm_core::NodeId;

/// Round-robin assignment of clients to nodes.
#[derive(Debug, Clone)]
pub struct RoundRobinDns {
    nodes: u16,
    next: u16,
}

impl RoundRobinDns {
    /// A resolver over `nodes` cluster nodes.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(nodes: u16) -> RoundRobinDns {
        assert!(nodes > 0, "no nodes to resolve to");
        RoundRobinDns { nodes, next: 0 }
    }

    /// Resolve the next client to a node.
    pub fn assign(&mut self) -> NodeId {
        let n = NodeId(self.next);
        self.next = (self.next + 1) % self.nodes;
        n
    }

    /// The static assignment for client `i` (equivalent to calling
    /// [`RoundRobinDns::assign`] `i + 1` times on a fresh resolver).
    pub fn assignment_for(clients: usize, nodes: u16, i: usize) -> NodeId {
        assert!(nodes > 0 && i < clients);
        NodeId((i % nodes as usize) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_through_nodes() {
        let mut dns = RoundRobinDns::new(3);
        let seq: Vec<u16> = (0..7).map(|_| dns.assign().0).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn static_assignment_matches_dynamic() {
        let mut dns = RoundRobinDns::new(4);
        for i in 0..16 {
            let dynamic = dns.assign();
            let fixed = RoundRobinDns::assignment_for(16, 4, i);
            assert_eq!(dynamic, fixed);
        }
    }

    #[test]
    fn single_node_always_wins() {
        let mut dns = RoundRobinDns::new(1);
        assert_eq!(dns.assign(), NodeId(0));
        assert_eq!(dns.assign(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn zero_nodes_panics() {
        RoundRobinDns::new(0);
    }
}
