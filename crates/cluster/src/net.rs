//! The LAN and the client-facing router.
//!
//! "Currently, we assume the same network is used to field/service client
//! requests and for intra-cluster communication" (§4.2). Each node's
//! transmit NIC is a service center with Gb/s occupancy; the wire adds a
//! fixed one-way latency. The receive side is accounted (it shows up in the
//! Figure 6a NIC utilization) but not queued: on a switched, full-duplex
//! Gb/s LAN at the loads the paper reports ("the network is mostly idle"),
//! receiver DMA is never the bottleneck, and leaving it unqueued keeps the
//! discipline that **a service center is only ever booked at the current
//! event time** — booking resources at future instants would serialize the
//! simulation falsely.
//!
//! New client requests additionally pass through a router modeled on the
//! Cisco 7600 performance specification (§4.2).

use crate::costs::CostModel;
use ccm_core::NodeId;
use simcore::{ServiceCenter, SimDuration, SimTime, Utilization};

/// NICs, wire, and router.
#[derive(Debug, Clone)]
pub struct Network {
    tx: Vec<ServiceCenter>,
    rx: Vec<Utilization>,
    router: ServiceCenter,
    bytes_sent: Vec<u64>,
}

impl Network {
    /// A network connecting `nodes` nodes.
    pub fn new(nodes: usize) -> Network {
        Network {
            tx: vec![ServiceCenter::new(); nodes],
            rx: vec![Utilization::new(); nodes],
            router: ServiceCenter::new(),
            bytes_sent: vec![0; nodes],
        }
    }

    /// Number of nodes attached.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Send `bytes` from `from` to `to` starting at `now` (which must be the
    /// current event time); returns delivery time at `to`.
    ///
    /// # Panics
    /// Panics if `from == to` — local transfers go over the bus, not the LAN.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        costs: &CostModel,
    ) -> SimTime {
        assert_ne!(from, to, "LAN send to self");
        let t = costs.nic_time(bytes);
        let sent = self.tx[from.index()].schedule(now, t);
        self.bytes_sent[from.index()] += bytes;
        self.rx[to.index()].add_busy(t);
        sent + costs.net_latency()
    }

    /// Send a small control message (block request, forward notice).
    pub fn send_control(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        costs: &CostModel,
    ) -> SimTime {
        self.send(now, from, to, costs.control_msg_bytes, costs)
    }

    /// A new client request of `bytes` entering the cluster toward `node`
    /// (passes through the router); returns arrival at the node.
    pub fn client_request(
        &mut self,
        now: SimTime,
        node: NodeId,
        bytes: u64,
        costs: &CostModel,
    ) -> SimTime {
        let routed = self.router.schedule(now, costs.router_time());
        let t = costs.nic_time(bytes);
        self.rx[node.index()].add_busy(t);
        routed + costs.net_latency() + t
    }

    /// A reply of `bytes` leaving `node` toward a client at `now` (the
    /// current event time); returns when the client has it.
    pub fn client_reply(
        &mut self,
        now: SimTime,
        node: NodeId,
        bytes: u64,
        costs: &CostModel,
    ) -> SimTime {
        let t = costs.nic_time(bytes);
        let sent = self.tx[node.index()].schedule(now, t);
        self.bytes_sent[node.index()] += bytes;
        sent + costs.net_latency()
    }

    /// Per-node NIC busy time (tx + rx), for utilization deltas.
    pub fn nic_busy(&self, node: NodeId) -> SimDuration {
        self.tx[node.index()].busy_time() + self.rx[node.index()].busy()
    }

    /// Bytes transmitted by `node` so far.
    pub fn bytes_sent(&self, node: NodeId) -> u64 {
        self.bytes_sent[node.index()]
    }

    /// Router busy time.
    pub fn router_busy(&self) -> SimDuration {
        self.router.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn unloaded_delivery_is_transfer_plus_latency() {
        let costs = CostModel::default();
        let mut net = Network::new(2);
        // 125 KB at 1 Gb/s = 1 ms; latency 0.038 ms.
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, &costs);
        assert!((t.as_millis_f64() - 1.038).abs() < 1e-6, "{t}");
    }

    #[test]
    fn sender_nic_serializes_back_to_back_sends() {
        let costs = CostModel::default();
        let mut net = Network::new(3);
        let t1 = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, &costs);
        let t2 = net.send(SimTime::ZERO, NodeId(0), NodeId(2), 125_000, &costs);
        assert!((t1.as_millis_f64() - 1.038).abs() < 1e-6);
        assert!((t2.as_millis_f64() - 2.038).abs() < 1e-6, "{t2}");
    }

    #[test]
    fn distinct_pairs_do_not_interfere() {
        let costs = CostModel::default();
        let mut net = Network::new(4);
        let t1 = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, &costs);
        let t2 = net.send(SimTime::ZERO, NodeId(2), NodeId(3), 125_000, &costs);
        assert_eq!(t1, t2, "switched LAN: independent pairs run in parallel");
    }

    #[test]
    fn client_request_passes_router() {
        let costs = CostModel::default();
        let mut net = Network::new(1);
        let t = net.client_request(SimTime::ZERO, NodeId(0), 512, &costs);
        assert!(t > SimTime(0));
        assert!(net.router_busy() > SimDuration::ZERO);
    }

    #[test]
    fn nic_busy_accumulates_both_directions() {
        let costs = CostModel::default();
        let mut net = Network::new(2);
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, &costs);
        assert_eq!(net.nic_busy(NodeId(0)), SimDuration::from_millis(1));
        assert_eq!(net.nic_busy(NodeId(1)), SimDuration::from_millis(1));
        assert_eq!(net.bytes_sent(NodeId(0)), 125_000);
        assert_eq!(net.bytes_sent(NodeId(1)), 0);
    }

    #[test]
    fn control_messages_are_cheap() {
        let costs = CostModel::default();
        let mut net = Network::new(2);
        let t = net.send_control(SimTime::ZERO, NodeId(0), NodeId(1), &costs);
        assert!(t < SimTime::ZERO + SimDuration::from_micros(100));
    }

    #[test]
    fn reply_does_not_use_router() {
        let costs = CostModel::default();
        let mut net = Network::new(1);
        let before = net.router_busy();
        net.client_reply(SimTime(MS), NodeId(0), 10_000, &costs);
        assert_eq!(net.router_busy(), before);
    }

    #[test]
    #[should_panic(expected = "send to self")]
    fn self_send_panics() {
        let costs = CostModel::default();
        let mut net = Network::new(2);
        net.send(SimTime::ZERO, NodeId(1), NodeId(1), 100, &costs);
    }
}
