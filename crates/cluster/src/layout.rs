//! File placement: which disk holds a file, and where on that disk.
//!
//! For the middleware "we assume the general case of files being distributed
//! across all nodes, with each node having a copy of the global file-to-node
//! mapping. … A node holding some file on its disk is called [the file's]
//! home" (§3). L2S "assumes files are replicated everywhere" (§4.1), so its
//! disk reads are always local. [`Placement::Concentrated`] implements the
//! experiment the paper wishes for in §5: "a forced concentration of hot
//! files on a single node".
//!
//! On-disk addresses are assigned per disk in file-id order, aligned to the
//! 64 KB extent granularity the file system pre-allocates (§4.2), so that
//! sequential whole-file reads are contiguous within extents and distinct
//! files never share an extent.

use ccm_core::block::EXTENT_SIZE;
use ccm_core::{FileId, NodeId};

/// How files are placed on the cluster's disks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// File `i` homes at node `i mod n`; each file is on exactly one disk.
    Striped,
    /// Every node's disk carries every file (L2S's assumption); reads are
    /// always local.
    Replicated,
    /// The hottest `hot_fraction` of files (by id = popularity rank) all
    /// home at `hot_node`; the rest are striped over the other nodes.
    Concentrated {
        /// The node that homes all hot files.
        hot_node: NodeId,
        /// Fraction of the file population (by rank) that is "hot".
        hot_fraction: f64,
    },
}

/// The materialized file→(home, address) map.
#[derive(Debug, Clone)]
pub struct FileLayout {
    placement: Placement,
    homes: Vec<NodeId>,
    addresses: Vec<u64>,
    sizes: Vec<u64>,
    nodes: u16,
}

fn extent_aligned(size: u64) -> u64 {
    size.div_ceil(EXTENT_SIZE).max(1) * EXTENT_SIZE
}

impl FileLayout {
    /// Lay out `sizes` (indexed by file id / popularity rank) over `nodes`
    /// disks.
    ///
    /// # Panics
    /// Panics on an empty cluster or (for [`Placement::Concentrated`]) a hot
    /// node outside the cluster or fraction outside `[0, 1]`.
    pub fn build(sizes: &[u64], nodes: u16, placement: Placement) -> FileLayout {
        assert!(nodes > 0, "no nodes");
        let homes: Vec<NodeId> = match placement {
            Placement::Striped => (0..sizes.len())
                .map(|i| NodeId((i % nodes as usize) as u16))
                .collect(),
            Placement::Replicated => {
                // Home is nominal (used only when a caller asks); reads are
                // local everywhere.
                (0..sizes.len())
                    .map(|i| NodeId((i % nodes as usize) as u16))
                    .collect()
            }
            Placement::Concentrated {
                hot_node,
                hot_fraction,
            } => {
                assert!(hot_node.0 < nodes, "hot node outside cluster");
                assert!((0.0..=1.0).contains(&hot_fraction), "bad hot fraction");
                let hot_count = (sizes.len() as f64 * hot_fraction).round() as usize;
                let cold_nodes: Vec<u16> = (0..nodes).filter(|&n| n != hot_node.0).collect();
                (0..sizes.len())
                    .map(|i| {
                        if i < hot_count || cold_nodes.is_empty() {
                            hot_node
                        } else {
                            NodeId(cold_nodes[i % cold_nodes.len()])
                        }
                    })
                    .collect()
            }
        };

        // Per-disk cumulative extent-aligned addresses, in file-id order.
        // Under Replicated every disk has the same layout, so one pass with a
        // single cursor per "disk 0 image" is correct for all disks.
        let mut addresses = vec![0u64; sizes.len()];
        match placement {
            Placement::Replicated => {
                let mut cursor = 0u64;
                for (i, &s) in sizes.iter().enumerate() {
                    addresses[i] = cursor;
                    cursor += extent_aligned(s);
                }
            }
            _ => {
                let mut cursors = vec![0u64; nodes as usize];
                for (i, &s) in sizes.iter().enumerate() {
                    let d = homes[i].index();
                    addresses[i] = cursors[d];
                    cursors[d] += extent_aligned(s);
                }
            }
        }

        FileLayout {
            placement,
            homes,
            addresses,
            sizes: sizes.to_vec(),
            nodes,
        }
    }

    /// The placement scheme in force.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Number of nodes/disks.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.sizes.len()
    }

    /// The node whose disk is authoritative for `file`.
    pub fn home_of(&self, file: FileId) -> NodeId {
        self.homes[file.0 as usize]
    }

    /// True if `node` can read `file` from its own disk.
    pub fn is_local(&self, file: FileId, node: NodeId) -> bool {
        match self.placement {
            Placement::Replicated => true,
            _ => self.home_of(file) == node,
        }
    }

    /// Starting byte address of `file` on a disk that carries it.
    pub fn address_of(&self, file: FileId) -> u64 {
        self.addresses[file.0 as usize]
    }

    /// Size of `file` in bytes.
    pub fn size_of(&self, file: FileId) -> u64 {
        self.sizes[file.0 as usize]
    }

    /// Starting disk address of extent `e` of `file`.
    pub fn extent_address(&self, file: FileId, extent: u32) -> u64 {
        self.address_of(file) + extent as u64 * EXTENT_SIZE
    }

    /// Bytes occupied by extent `e` of `file` (the final extent may be
    /// partial).
    pub fn extent_bytes(&self, file: FileId, extent: u32) -> u64 {
        let size = self.size_of(file);
        let start = extent as u64 * EXTENT_SIZE;
        debug_assert!(start < size.max(1));
        (size - start.min(size)).clamp(1, EXTENT_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> Vec<u64> {
        vec![10_000, 70_000, 64 * 1024, 1, 200_000]
    }

    #[test]
    fn striped_round_robins_homes() {
        let l = FileLayout::build(&sizes(), 3, Placement::Striped);
        assert_eq!(l.home_of(FileId(0)), NodeId(0));
        assert_eq!(l.home_of(FileId(1)), NodeId(1));
        assert_eq!(l.home_of(FileId(2)), NodeId(2));
        assert_eq!(l.home_of(FileId(3)), NodeId(0));
        assert!(l.is_local(FileId(0), NodeId(0)));
        assert!(!l.is_local(FileId(0), NodeId(1)));
    }

    #[test]
    fn addresses_are_extent_aligned_and_disjoint_per_disk() {
        let l = FileLayout::build(&sizes(), 2, Placement::Striped);
        for f in 0..5u32 {
            assert_eq!(l.address_of(FileId(f)) % EXTENT_SIZE, 0);
        }
        // Files 0, 2, 4 share disk 0: check non-overlap in order.
        let a0 = l.address_of(FileId(0));
        let a2 = l.address_of(FileId(2));
        let a4 = l.address_of(FileId(4));
        assert!(a0 < a2 && a2 < a4);
        assert!(a2 - a0 >= extent_aligned(10_000));
        assert!(a4 - a2 >= extent_aligned(64 * 1024));
    }

    #[test]
    fn replicated_is_local_everywhere_with_shared_image() {
        let l = FileLayout::build(&sizes(), 4, Placement::Replicated);
        for f in 0..5u32 {
            for n in 0..4u16 {
                assert!(l.is_local(FileId(f), NodeId(n)));
            }
        }
        // Single disk image: addresses strictly increasing in file order.
        for f in 1..5u32 {
            assert!(l.address_of(FileId(f)) > l.address_of(FileId(f - 1)));
        }
    }

    #[test]
    fn concentrated_homes_hot_files_on_one_node() {
        let many: Vec<u64> = vec![8192; 100];
        let l = FileLayout::build(
            &many,
            4,
            Placement::Concentrated {
                hot_node: NodeId(2),
                hot_fraction: 0.2,
            },
        );
        for f in 0..20u32 {
            assert_eq!(l.home_of(FileId(f)), NodeId(2), "hot file {f}");
        }
        // Cold files avoid the hot node.
        for f in 20..100u32 {
            assert_ne!(l.home_of(FileId(f)), NodeId(2), "cold file {f}");
        }
    }

    #[test]
    fn extent_math() {
        let l = FileLayout::build(&sizes(), 1, Placement::Striped);
        let f = FileId(1); // 70_000 bytes = 1 full extent + 4_464 bytes
        assert_eq!(l.extent_address(f, 0), l.address_of(f));
        assert_eq!(l.extent_address(f, 1), l.address_of(f) + EXTENT_SIZE);
        assert_eq!(l.extent_bytes(f, 0), EXTENT_SIZE);
        assert_eq!(l.extent_bytes(f, 1), 70_000 - EXTENT_SIZE);
    }

    #[test]
    fn tiny_file_occupies_one_extent_slot() {
        let l = FileLayout::build(&[1, 1], 1, Placement::Striped);
        assert_eq!(
            l.address_of(FileId(1)) - l.address_of(FileId(0)),
            EXTENT_SIZE
        );
        assert_eq!(l.extent_bytes(FileId(0), 0), 1);
    }
}
