//! # ccm-cluster — simulated cluster hardware
//!
//! The service-center models of the hardware the paper simulates (§4.2):
//! "a high-performance LAN, a router, and 4–8 cluster nodes. Each node is
//! comprised of a CPU, NIC, and disk, all connected by a bus." Client
//! requests are spread over the nodes by round-robin DNS; the same network
//! carries client traffic and intra-cluster block transfers.
//!
//! * [`costs`] — every Table 1 constant, as an overridable [`costs::CostModel`]
//!   (the modeled hardware: VIA Gb/s LAN, 800 MHz PIII, IBM Deskstar 75GXP).
//! * [`disk`] — the disk model: seek + transfer timing, one metadata seek per
//!   64 KB extent, and an explicit request queue with FIFO or batching
//!   (C-LOOK) scheduling — the "-Basic" vs. "scheduled" distinction that
//!   fixes the paper's stream-interleaving bottleneck.
//! * [`net`] — NICs, wire latency, and the client-facing router.
//! * [`layout`] — file→home-node placement and on-disk addresses (striped
//!   for the middleware, fully replicated for L2S, plus a hot-spot placement
//!   for the concentration experiment).
//! * [`node`] — a node's CPU/disk bundle and the cluster assembly.
//! * [`dns`] — round-robin DNS client assignment.

#![warn(missing_docs)]

pub mod costs;
pub mod disk;
pub mod dns;
pub mod layout;
pub mod net;
pub mod node;

pub use costs::CostModel;
pub use disk::{Disk, DiskRequest, DiskScheduler};
pub use dns::RoundRobinDns;
pub use layout::{FileLayout, Placement};
pub use net::Network;
pub use node::{Cluster, Node};
