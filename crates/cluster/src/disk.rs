//! The disk model: seeks, sequential transfer, and request scheduling.
//!
//! This component is behind the first of the paper's two -Basic findings:
//! "One disk is always the performance bottleneck because of interleaving of
//! request streams" (§5). Two streams each reading a contiguous 64 KB unit
//! cost 2 positioning+metadata seeks each when served back to back, but 12
//! seeks when their per-block requests interleave — and the first disk to
//! fall behind stays the system bottleneck. The paper's fix is "a simple
//! scheduling algorithm in our queue of disk requests"; here that is
//! [`DiskScheduler::Batched`], which serves head-contiguous requests first
//! and otherwise sweeps by address (C-LOOK), versus the naive
//! [`DiskScheduler::Fifo`].
//!
//! Seek accounting, matching Table 1 plus the 64 KB metadata rule (§4.2):
//! a request contiguous with the current head position pays no seek; any
//! other request pays one positioning seek plus one metadata seek per 64 KB
//! extent it touches.

use crate::costs::CostModel;
use simcore::{SimDuration, SimTime, Utilization};
use std::collections::VecDeque;

/// How the pending-request queue is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskScheduler {
    /// Serve strictly in arrival order (the paper's -Basic).
    #[default]
    Fifo,
    /// Prefer the request contiguous with the head; otherwise sweep upward
    /// by address, wrapping (C-LOOK). This is the paper's "simple
    /// scheduling algorithm".
    Batched,
}

/// One disk read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// Caller correlation token, returned in the [`Completion`].
    pub tag: u64,
    /// Starting byte address on this disk.
    pub address: u64,
    /// Contiguous bytes to transfer.
    pub bytes: u64,
    /// Number of 64 KB extents this request touches (each charges one
    /// metadata seek unless the head is already inside the run).
    pub extents: u32,
}

/// A finished (or started-and-scheduled) disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's correlation token.
    pub tag: u64,
    /// When the transfer finishes.
    pub done: SimTime,
    /// Seeks this request paid (for statistics/ablation).
    pub seeks: u32,
}

/// Aggregate disk statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Requests fully served.
    pub requests: u64,
    /// Total positioning + metadata seeks paid.
    pub seeks: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

/// A single disk with an explicit pending queue.
///
/// ```
/// use ccm_cluster::{CostModel, Disk, DiskRequest, DiskScheduler};
/// use simcore::SimTime;
///
/// let costs = CostModel::default();
/// let mut disk = Disk::new(DiskScheduler::Batched);
/// let first = disk
///     .submit(SimTime::ZERO, DiskRequest { tag: 1, address: 0, bytes: 8192, extents: 1 }, &costs)
///     .expect("idle disk starts immediately");
/// // A second request queues until the first completes.
/// assert!(disk
///     .submit(SimTime::ZERO, DiskRequest { tag: 2, address: 8192, bytes: 8192, extents: 1 }, &costs)
///     .is_none());
/// let second = disk.next_after_completion(first.done, &costs).unwrap();
/// assert_eq!(second.seeks, 0, "head-contiguous follow-up read seeks nothing");
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    scheduler: DiskScheduler,
    queue: VecDeque<(u64, DiskRequest)>, // (arrival seq, request)
    seq: u64,
    busy: bool,
    /// Byte address just past the last transfer (head position).
    head: u64,
    util: Utilization,
    stats: DiskStats,
    max_queue: usize,
}

impl Disk {
    /// An idle disk with the head unpositioned (the first request always
    /// pays a positioning seek).
    pub fn new(scheduler: DiskScheduler) -> Disk {
        Disk {
            scheduler,
            queue: VecDeque::new(),
            seq: 0,
            busy: false,
            head: u64::MAX,
            util: Utilization::new(),
            stats: DiskStats::default(),
            max_queue: 0,
        }
    }

    /// Which scheduler this disk uses.
    pub fn scheduler(&self) -> DiskScheduler {
        self.scheduler
    }

    /// Pending (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Largest pending-queue depth observed.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue
    }

    /// True if a transfer is in progress.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Totals served so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Accumulated busy time (seek + transfer), for utilization.
    pub fn busy_time(&self) -> SimDuration {
        self.util.busy()
    }

    /// Submit a request at `now`. If the disk was idle it starts immediately
    /// and the completion is returned — schedule an event for it. If busy,
    /// the request queues and `None` is returned; it will be started by a
    /// later [`Disk::next_after_completion`].
    pub fn submit(
        &mut self,
        now: SimTime,
        req: DiskRequest,
        costs: &CostModel,
    ) -> Option<Completion> {
        self.seq += 1;
        self.queue.push_back((self.seq, req));
        self.max_queue = self.max_queue.max(self.queue.len());
        if self.busy {
            None
        } else {
            self.start_next(now, costs)
        }
    }

    /// Called when the in-progress transfer's completion event fires: marks
    /// the disk idle and starts the next queued request, if any, returning
    /// its completion to schedule.
    pub fn next_after_completion(&mut self, now: SimTime, costs: &CostModel) -> Option<Completion> {
        debug_assert!(self.busy, "completion without a transfer in progress");
        self.busy = false;
        self.start_next(now, costs)
    }

    fn pick_index(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        match self.scheduler {
            DiskScheduler::Fifo => Some(0),
            DiskScheduler::Batched => {
                // 1. A request continuing the current head run is free.
                if let Some(i) = self.queue.iter().position(|(_, r)| r.address == self.head) {
                    return Some(i);
                }
                // 2. C-LOOK: smallest address at or above the head...
                let mut best: Option<(usize, u64, u64)> = None; // (idx, addr, seq)
                for (i, &(seq, r)) in self.queue.iter().enumerate() {
                    if r.address >= self.head {
                        let better = match best {
                            None => true,
                            Some((_, a, s)) => (r.address, seq) < (a, s),
                        };
                        if better {
                            best = Some((i, r.address, seq));
                        }
                    }
                }
                if let Some((i, _, _)) = best {
                    return Some(i);
                }
                // 3. ...wrapping to the smallest address overall.
                let mut best: Option<(usize, u64, u64)> = None;
                for (i, &(seq, r)) in self.queue.iter().enumerate() {
                    let better = match best {
                        None => true,
                        Some((_, a, s)) => (r.address, seq) < (a, s),
                    };
                    if better {
                        best = Some((i, r.address, seq));
                    }
                }
                best.map(|(i, _, _)| i)
            }
        }
    }

    fn start_next(&mut self, now: SimTime, costs: &CostModel) -> Option<Completion> {
        let idx = self.pick_index()?;
        let (_, req) = self.queue.remove(idx).expect("index in range");
        let seeks = if req.address == self.head {
            // Continuing the current sequential run: no positioning seek and
            // the extent's metadata was already fetched.
            req.extents.saturating_sub(1)
        } else {
            1 + req.extents
        };
        let service = costs.disk_time(req.bytes, seeks);
        let done = now + service;
        self.busy = true;
        self.head = req.address + req.bytes;
        self.util.add_busy(service);
        self.stats.requests += 1;
        self.stats.seeks += seeks as u64;
        self.stats.bytes += req.bytes;
        Some(Completion {
            tag: req.tag,
            done,
            seeks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXTENT: u64 = 64 * 1024;

    fn req(tag: u64, address: u64, bytes: u64) -> DiskRequest {
        DiskRequest {
            tag,
            address,
            bytes,
            extents: 1,
        }
    }

    fn run_all(disk: &mut Disk, costs: &CostModel, reqs: &[DiskRequest]) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut pending: Option<Completion> = None;
        for &r in reqs {
            if let Some(c) = disk.submit(SimTime::ZERO, r, costs) {
                assert!(pending.is_none());
                pending = Some(c);
            }
        }
        while let Some(c) = pending {
            out.push(c);
            pending = disk.next_after_completion(c.done, costs);
        }
        out
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Fifo);
        let c = d.submit(SimTime::ZERO, req(1, 0, 8192), &costs).unwrap();
        assert_eq!(c.tag, 1);
        assert!(d.is_busy());
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn busy_disk_queues() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Fifo);
        d.submit(SimTime::ZERO, req(1, 0, 8192), &costs).unwrap();
        assert!(d
            .submit(SimTime::ZERO, req(2, EXTENT, 8192), &costs)
            .is_none());
        assert_eq!(d.queue_len(), 1);
    }

    #[test]
    fn contiguous_requests_pay_no_seek() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Fifo);
        // Three back-to-back 8 KB reads within one extent starting at 0:
        // first pays positioning + metadata (2 seeks), rest pay none.
        let reqs = [req(1, 0, 8192), req(2, 8192, 8192), req(3, 16384, 8192)];
        let done = run_all(&mut d, &costs, &reqs);
        assert_eq!(done[0].seeks, 2);
        assert_eq!(done[1].seeks, 0);
        assert_eq!(done[2].seeks, 0);
        assert_eq!(d.stats().seeks, 2);
    }

    #[test]
    fn paper_interleaving_example_12_vs_4_seeks() {
        // Two streams of 3 blocks in different extents. Perfectly
        // interleaved FIFO arrival: a x b y c z.
        let costs = CostModel::default();
        let s1 = [req(1, 0, 8192), req(3, 8192, 8192), req(5, 16384, 8192)];
        let s2 = [
            req(2, EXTENT, 8192),
            req(4, EXTENT + 8192, 8192),
            req(6, EXTENT + 16384, 8192),
        ];
        let interleaved: Vec<DiskRequest> = s1
            .iter()
            .zip(s2.iter())
            .flat_map(|(&a, &b)| [a, b])
            .collect();

        let mut fifo = Disk::new(DiskScheduler::Fifo);
        run_all(&mut fifo, &costs, &interleaved);
        assert_eq!(fifo.stats().seeks, 12, "FIFO interleaving costs 12 seeks");

        let mut batched = Disk::new(DiskScheduler::Batched);
        run_all(&mut batched, &costs, &interleaved);
        assert_eq!(
            batched.stats().seeks,
            4,
            "batched scheduling restores 2 seeks per stream"
        );
    }

    #[test]
    fn batched_never_does_worse_than_fifo_on_seeks() {
        let costs = CostModel::default();
        let mut rng = simcore::Rng::new(123);
        for _ in 0..50 {
            let reqs: Vec<DiskRequest> = (0..40)
                .map(|i| {
                    let extent = rng.next_below(8);
                    let block = rng.next_below(8);
                    req(i, extent * EXTENT + block * 8192, 8192)
                })
                .collect();
            let mut fifo = Disk::new(DiskScheduler::Fifo);
            run_all(&mut fifo, &costs, &reqs);
            let mut batched = Disk::new(DiskScheduler::Batched);
            run_all(&mut batched, &costs, &reqs);
            assert!(
                batched.stats().seeks <= fifo.stats().seeks,
                "batched {} > fifo {}",
                batched.stats().seeks,
                fifo.stats().seeks
            );
        }
    }

    #[test]
    fn clook_sweeps_upward_then_wraps() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Batched);
        // Head starts at 0. Queue addresses out of order; first request (addr
        // 5*EXTENT) starts immediately since disk idle, moving head past it.
        let first = d
            .submit(SimTime::ZERO, req(0, 5 * EXTENT, 8192), &costs)
            .unwrap();
        for (i, addr) in [(1u64, 3 * EXTENT), (2, 7 * EXTENT), (3, 6 * EXTENT)] {
            assert!(d
                .submit(SimTime::ZERO, req(i, addr, 8192), &costs)
                .is_none());
        }
        // Head is now just past 5*EXTENT: sweep order should be 6, 7, then wrap to 3.
        let mut order = Vec::new();
        let mut next = d.next_after_completion(first.done, &costs);
        while let Some(c) = next {
            order.push(c.tag);
            next = d.next_after_completion(c.done, &costs);
        }
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn completions_are_sequential_in_time() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Batched);
        let reqs: Vec<DiskRequest> = (0..10).map(|i| req(i, i * EXTENT, 65536)).collect();
        let done = run_all(&mut d, &costs, &reqs);
        for w in done.windows(2) {
            assert!(w[1].done > w[0].done);
        }
        assert_eq!(d.stats().requests, 10);
        assert_eq!(d.stats().bytes, 10 * 65536);
        assert!(d.busy_time() > SimDuration::ZERO);
    }

    #[test]
    fn multi_extent_request_charges_metadata_per_extent() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Fifo);
        let r = DiskRequest {
            tag: 1,
            address: EXTENT, // not at head → positioning seek
            bytes: 2 * EXTENT,
            extents: 2,
        };
        let c = d.submit(SimTime::ZERO, r, &costs).unwrap();
        assert_eq!(c.seeks, 3, "1 positioning + 2 metadata");
    }

    #[test]
    fn max_queue_depth_tracks_high_water() {
        let costs = CostModel::default();
        let mut d = Disk::new(DiskScheduler::Fifo);
        d.submit(SimTime::ZERO, req(1, 0, 8192), &costs);
        d.submit(SimTime::ZERO, req(2, EXTENT, 8192), &costs);
        d.submit(SimTime::ZERO, req(3, 2 * EXTENT, 8192), &costs);
        assert_eq!(d.max_queue_depth(), 2);
    }
}
