//! Node assembly: CPU + disk per node, LAN between them.
//!
//! A [`Cluster`] bundles the hardware the request lifecycles charge time
//! against. Bus transfers (§4.2's "all connected by a bus") are folded into
//! the CPU occupancy of the operation that moves the data — at Table 1
//! magnitudes the bus never saturates before CPU, NIC, or disk do, so it is
//! charged as time but not modeled as a separate contention point.

use crate::costs::CostModel;
use crate::disk::{Disk, DiskScheduler};
use crate::net::Network;
use ccm_core::NodeId;
use simcore::{ServiceCenter, SimDuration, SimTime};

/// One cluster node's private hardware.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's CPU, a FIFO service center.
    pub cpu: ServiceCenter,
    /// The node's disk, with its request queue.
    pub disk: Disk,
}

/// The whole machine room: nodes plus the LAN.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Per-node hardware.
    pub nodes: Vec<Node>,
    /// The shared network.
    pub net: Network,
    /// Timing constants.
    pub costs: CostModel,
}

/// Raw busy-time readings used to compute utilization over a measurement
/// window by delta (Figure 6a).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusySnapshot {
    /// Per-node CPU busy time.
    pub cpu: Vec<SimDuration>,
    /// Per-node disk busy time.
    pub disk: Vec<SimDuration>,
    /// Per-node NIC busy time (tx + rx).
    pub nic: Vec<SimDuration>,
}

/// Average utilization of each resource class over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUtilization {
    /// Mean CPU utilization across nodes, `[0, 1]`.
    pub cpu: f64,
    /// Mean disk utilization across nodes.
    pub disk: f64,
    /// Mean NIC utilization across nodes (tx+rx normalized by 2× window, so
    /// full-duplex saturation is 1.0).
    pub nic: f64,
}

impl Cluster {
    /// Build `n` nodes with the given disk scheduler and cost model.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, scheduler: DiskScheduler, costs: CostModel) -> Cluster {
        assert!(n > 0, "empty cluster");
        Cluster {
            nodes: (0..n)
                .map(|_| Node {
                    cpu: ServiceCenter::new(),
                    disk: Disk::new(scheduler),
                })
                .collect(),
            net: Network::new(n),
            costs,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Schedule CPU work at `node`; returns completion time.
    pub fn cpu(&mut self, node: NodeId, now: SimTime, work: SimDuration) -> SimTime {
        self.nodes[node.index()].cpu.schedule(now, work)
    }

    /// Current busy-time readings for all resources.
    pub fn busy_snapshot(&self) -> BusySnapshot {
        BusySnapshot {
            cpu: self.nodes.iter().map(|n| n.cpu.busy_time()).collect(),
            disk: self.nodes.iter().map(|n| n.disk.busy_time()).collect(),
            nic: (0..self.nodes.len())
                .map(|i| self.net.nic_busy(NodeId(i as u16)))
                .collect(),
        }
    }
}

impl BusySnapshot {
    /// Per-node disk utilization over the window between `self` (earlier)
    /// and `later` — the paper observes that under -Basic "the first disk
    /// that is slowed down … becomes the performance bottleneck for the
    /// entire system", so the *maximum* matters, not just the mean.
    pub fn disk_utilization_per_node(&self, later: &BusySnapshot, window: SimDuration) -> Vec<f64> {
        assert_eq!(self.disk.len(), later.disk.len(), "snapshot size mismatch");
        assert!(!window.is_zero(), "empty measurement window");
        self.disk
            .iter()
            .zip(&later.disk)
            .map(|(e, l)| (l.nanos() - e.nanos()) as f64 / window.nanos() as f64)
            .collect()
    }

    /// Utilization over the window between `self` (earlier) and `later`.
    ///
    /// # Panics
    /// Panics if the snapshots have different node counts or the window is
    /// empty.
    pub fn utilization_until(
        &self,
        later: &BusySnapshot,
        window: SimDuration,
    ) -> ResourceUtilization {
        assert_eq!(self.cpu.len(), later.cpu.len(), "snapshot size mismatch");
        assert!(!window.is_zero(), "empty measurement window");
        let avg = |a: &[SimDuration], b: &[SimDuration], scale: f64| {
            let total: f64 = a
                .iter()
                .zip(b)
                .map(|(e, l)| (l.nanos() - e.nanos()) as f64)
                .sum();
            total / (a.len() as f64 * window.nanos() as f64 * scale)
        };
        ResourceUtilization {
            cpu: avg(&self.cpu, &later.cpu, 1.0),
            disk: avg(&self.disk, &later.disk, 1.0),
            nic: avg(&self.nic, &later.nic, 2.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskRequest;

    #[test]
    fn cluster_builds_requested_size() {
        let c = Cluster::new(8, DiskScheduler::Batched, CostModel::default());
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }

    #[test]
    fn cpu_scheduling_serializes_per_node() {
        let mut c = Cluster::new(2, DiskScheduler::Fifo, CostModel::default());
        let w = SimDuration::from_millis(1);
        let t1 = c.cpu(NodeId(0), SimTime::ZERO, w);
        let t2 = c.cpu(NodeId(0), SimTime::ZERO, w);
        let t3 = c.cpu(NodeId(1), SimTime::ZERO, w);
        assert_eq!(t1, SimTime::ZERO + w);
        assert_eq!(t2, SimTime::ZERO + w * 2);
        assert_eq!(t3, SimTime::ZERO + w, "other node's CPU is independent");
    }

    #[test]
    fn utilization_window_deltas() {
        let mut c = Cluster::new(2, DiskScheduler::Fifo, CostModel::default());
        let before = c.busy_snapshot();
        // 5 ms of CPU on node 0, a disk read on node 1, one LAN transfer.
        c.cpu(NodeId(0), SimTime::ZERO, SimDuration::from_millis(5));
        let costs = c.costs.clone();
        c.nodes[1].disk.submit(
            SimTime::ZERO,
            DiskRequest {
                tag: 0,
                address: 0,
                bytes: 37_000,
                extents: 1,
            },
            &costs,
        );
        c.net
            .send(SimTime::ZERO, NodeId(0), NodeId(1), 125_000, &costs);
        let after = c.busy_snapshot();
        let u = before.utilization_until(&after, SimDuration::from_millis(10));
        // CPU: 5 ms on one of two nodes over 10 ms → 0.25 average.
        assert!((u.cpu - 0.25).abs() < 1e-9, "cpu={}", u.cpu);
        // Disk: seek (2×6.5) + 1 ms transfer on one of two disks.
        assert!(u.disk > 0.5, "disk={}", u.disk);
        // NIC: 1 ms tx + 1 ms rx over 2 nodes × 10 ms × 2 → 0.05.
        assert!((u.nic - 0.05).abs() < 1e-9, "nic={}", u.nic);
    }

    #[test]
    fn per_node_disk_utilization() {
        let mut c = Cluster::new(2, DiskScheduler::Fifo, CostModel::default());
        let before = c.busy_snapshot();
        let costs = c.costs.clone();
        c.nodes[1].disk.submit(
            SimTime::ZERO,
            DiskRequest {
                tag: 0,
                address: 0,
                bytes: 37_000,
                extents: 1,
            },
            &costs,
        );
        let after = c.busy_snapshot();
        let per = before.disk_utilization_per_node(&after, SimDuration::from_millis(28));
        assert_eq!(per.len(), 2);
        assert_eq!(per[0], 0.0);
        // 2 seeks (13ms) + 1ms transfer over a 28ms window = 0.5.
        assert!((per[1] - 0.5).abs() < 1e-9, "{per:?}");
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn zero_nodes_panics() {
        Cluster::new(0, DiskScheduler::Fifo, CostModel::default());
    }
}
