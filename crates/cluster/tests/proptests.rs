//! Property-based tests for the hardware models.

use ccm_cluster::disk::{Completion, Disk, DiskRequest, DiskScheduler};
use ccm_cluster::CostModel;
use proptest::prelude::*;
use simcore::{SimDuration, SimTime};

fn requests() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (extent index, block-within-extent) pairs over a small disk region.
    prop::collection::vec(((0u64..32), (0u64..8)), 1..120)
}

fn drain(disk: &mut Disk, costs: &CostModel, reqs: &[DiskRequest]) -> Vec<Completion> {
    let mut out = Vec::new();
    let mut pending: Option<Completion> = None;
    for &r in reqs {
        if let Some(c) = disk.submit(SimTime::ZERO, r, costs) {
            assert!(pending.is_none(), "two in-flight transfers");
            pending = Some(c);
        }
    }
    while let Some(c) = pending {
        out.push(c);
        pending = disk.next_after_completion(c.done, costs);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Work conservation: every submitted request completes exactly once,
    /// regardless of scheduler.
    #[test]
    fn disk_completes_every_request_once(addrs in requests(), batched in any::<bool>()) {
        let costs = CostModel::default();
        let sched = if batched { DiskScheduler::Batched } else { DiskScheduler::Fifo };
        let mut disk = Disk::new(sched);
        let reqs: Vec<DiskRequest> = addrs
            .iter()
            .enumerate()
            .map(|(i, &(e, b))| DiskRequest {
                tag: i as u64,
                address: e * 65536 + b * 8192,
                bytes: 8192,
                extents: 1,
            })
            .collect();
        let done = drain(&mut disk, &costs, &reqs);
        prop_assert_eq!(done.len(), reqs.len());
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..reqs.len() as u64).collect::<Vec<_>>());
        prop_assert_eq!(disk.stats().requests, reqs.len() as u64);
        prop_assert_eq!(disk.stats().bytes, reqs.len() as u64 * 8192);
    }

    /// Completions are strictly ordered in time and busy time equals the
    /// span of back-to-back service.
    #[test]
    fn disk_completions_are_monotonic(addrs in requests()) {
        let costs = CostModel::default();
        let mut disk = Disk::new(DiskScheduler::Batched);
        let reqs: Vec<DiskRequest> = addrs
            .iter()
            .enumerate()
            .map(|(i, &(e, b))| DiskRequest {
                tag: i as u64,
                address: e * 65536 + b * 8192,
                bytes: 8192,
                extents: 1,
            })
            .collect();
        let done = drain(&mut disk, &costs, &reqs);
        for w in done.windows(2) {
            prop_assert!(w[1].done > w[0].done);
        }
        // All requests were available at t=0, so the disk never idled:
        // the last completion equals total busy time.
        let last = done.last().unwrap().done;
        prop_assert_eq!(last.since(SimTime::ZERO), disk.busy_time());
    }

    /// Seeks are bounded: between 0 and (1 + extents) per request.
    #[test]
    fn seek_counts_are_bounded(addrs in requests(), batched in any::<bool>()) {
        let costs = CostModel::default();
        let sched = if batched { DiskScheduler::Batched } else { DiskScheduler::Fifo };
        let mut disk = Disk::new(sched);
        let reqs: Vec<DiskRequest> = addrs
            .iter()
            .enumerate()
            .map(|(i, &(e, b))| DiskRequest {
                tag: i as u64,
                address: e * 65536 + b * 8192,
                bytes: 8192,
                extents: 1,
            })
            .collect();
        let done = drain(&mut disk, &costs, &reqs);
        for c in &done {
            prop_assert!(c.seeks <= 2, "single-extent request paid {} seeks", c.seeks);
        }
        prop_assert!(disk.stats().seeks <= 2 * reqs.len() as u64);
    }

    /// Batched scheduling never increases total disk busy time on
    /// identical request sets (contiguity can only be gained).
    #[test]
    fn batching_never_slows_the_disk(addrs in requests()) {
        let costs = CostModel::default();
        let build = || -> Vec<DiskRequest> {
            addrs
                .iter()
                .enumerate()
                .map(|(i, &(e, b))| DiskRequest {
                    tag: i as u64,
                    address: e * 65536 + b * 8192,
                    bytes: 8192,
                    extents: 1,
                })
                .collect()
        };
        let mut fifo = Disk::new(DiskScheduler::Fifo);
        drain(&mut fifo, &costs, &build());
        let mut batched = Disk::new(DiskScheduler::Batched);
        drain(&mut batched, &costs, &build());
        // All requests queued at t=0: the batched order is free to pick any
        // permutation, and its greedy contiguity-first choice should not pay
        // more seeks than arrival order beyond a small reordering slack.
        let fifo_busy = fifo.busy_time();
        let batched_busy = batched.busy_time();
        let slack = SimDuration::from_millis_f64(costs.disk_seek_ms * 2.0);
        prop_assert!(
            batched_busy <= fifo_busy + slack,
            "batched {batched_busy} much worse than fifo {fifo_busy}"
        );
    }
}

mod net_props {
    use super::*;
    use ccm_cluster::Network;
    use ccm_core::NodeId;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Deliveries never precede their send time plus wire latency, and a
        /// sender's NIC serializes its own transfers.
        #[test]
        fn sends_respect_physics(
            msgs in prop::collection::vec(((0u16..4), (0u16..4), (1u64..200_000)), 1..60),
        ) {
            let costs = CostModel::default();
            let mut net = Network::new(4);
            let mut now = SimTime::ZERO;
            let mut per_sender_last = [SimTime::ZERO; 4];
            for &(from, to, bytes) in &msgs {
                if from == to {
                    continue;
                }
                let arrival = net.send(now, NodeId(from), NodeId(to), bytes, &costs);
                let min_arrival = now + costs.nic_time(bytes) + costs.net_latency();
                prop_assert!(arrival >= min_arrival, "{arrival} < {min_arrival}");
                // Same sender's deliveries are non-decreasing (FIFO NIC).
                prop_assert!(arrival >= per_sender_last[from as usize]);
                per_sender_last[from as usize] = arrival;
                now += SimDuration::from_micros(1);
            }
        }
    }
}
