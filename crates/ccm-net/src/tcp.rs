//! `TcpLan` — the socket backend of the runtime's [`Transport`] trait.
//!
//! One listener per node on loopback (the per-node address a round-robin
//! DNS would hand out), one lazily established TCP connection per ordered
//! node pair, and the [`crate::wire`] codec in between. The in-process
//! reply channels of [`PeerMsg`] never cross the socket: the sending side
//! parks each reply sender in a per-connection *pending table* keyed by
//! request id, and a reader thread resolves it when the matching
//! [`WireMsg::BlockReply`] / [`WireMsg::BarrierAck`] comes back.
//!
//! ## Connection lifecycle
//!
//! * **Lazy connect** — the `src → dst` connection is dialed on first send.
//!   The first frame is a [`WireMsg::Hello`] naming the wire version and
//!   the source node; the acceptor rejects mismatched versions.
//! * **Failure** — a write error, a reader-side EOF, or a decode error
//!   tears the connection down: the socket is shut down both ways, every
//!   pending reply sender is dropped (waiting requesters observe an
//!   immediate disconnect and fall back to the backing store), and the
//!   link enters backoff.
//! * **Reconnect** — after a teardown the link refuses sends (fail-fast
//!   `false`, the disk-fallback path) until a capped exponential backoff
//!   expires, then the next send dials again.
//! * **Crash/restart** — a crashed node's service thread drops its inbox
//!   receiver; each demux thread pinned to that dead incarnation fails its
//!   next delivery and closes its connection, which propagates the failure
//!   to the sending side. [`Transport::reconnect`] (node restart) installs
//!   a fresh inbox and severs every connection to and from the node — as a
//!   reboot would — so stale frames can never leak into the new
//!   incarnation; peers re-dial lazily.
//!
//! ## Deadlines
//!
//! Requests carry no wire-level deadline: the requester's bounded
//! `recv_timeout` in [`Transport::fetch_block`] *is* the deadline, exactly
//! as over the channel LAN (`RtConfig::fetch_timeout`). A request whose
//! connection dies resolves early (disconnect), one whose reply is merely
//! slow resolves at the deadline; both degrade to the §3 disk read.
//!
//! In-process the whole cluster shares one `TcpLan` (every listener plus
//! every outbound link), which is what the tests and the demo binary use;
//! the frame protocol itself carries no process-local state, so a future
//! multi-process deployment only needs a constructor that owns one slot
//! and dials remote addresses.
//!
//! [`Transport`]: ccm_rt::Transport
//! [`Transport::fetch_block`]: ccm_rt::Transport::fetch_block
//! [`Transport::reconnect`]: ccm_rt::Transport::reconnect
//! [`PeerMsg`]: ccm_rt::PeerMsg

use crate::wire::{read_frame_counted, write_frame, WireMsg, WIRE_VERSION};
use ccm_core::NodeId;
use ccm_obs::{Counter, Gauge, Registry};
use ccm_rt::{PeerMsg, Transport};
use simcore::chan::{unbounded, Receiver, Sender};
use simcore::sync::{Mutex, RwLock};
use simcore::FxHashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the connection manager.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Per-attempt dial timeout.
    pub connect_timeout: Duration,
    /// Backoff after the first failure on a link.
    pub initial_backoff: Duration,
    /// Backoff ceiling (doubles per consecutive failure up to this).
    pub max_backoff: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_secs(1),
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Wire/connection counters (diagnostics; monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Outbound connections successfully established (incl. re-dials).
    pub connects: u64,
    /// Dial attempts that failed.
    pub connect_failures: u64,
    /// Established connections torn down (error, EOF, or node restart).
    pub teardowns: u64,
    /// Frames written by senders (requests, forwards, invalidates,
    /// barriers, hellos).
    pub frames_sent: u64,
    /// Frames delivered to service inboxes or pending tables.
    pub frames_received: u64,
}

/// Per-directed-pair wire metric handles. Traffic metrics count at the
/// end that observes them — `frames_out`/`bytes_out` at the writing node,
/// `frames_in`/`bytes_in` at the reading node — so for a healthy link the
/// `{src,dst}` series converge from both sides. The connection-shaped
/// metrics (dials, teardowns, pending depth, backoff, degrades) live on
/// the pair as dialed, `src → dst`.
struct LinkObs {
    frames_out: Counter,
    bytes_out: Counter,
    frames_in: Counter,
    bytes_in: Counter,
    dials: Counter,
    dial_failures: Counter,
    teardowns: Counter,
    /// Sends refused or failed on this link; each one degrades the caller
    /// to the §3 backing-store read.
    degrades: Counter,
    pending_replies: Gauge,
    backoff_ms: Gauge,
}

/// All per-pair handles, registered once at construction so the data path
/// never touches the registry.
struct NetObs {
    /// Row-major `from * nodes + to`; `None` on the diagonal (self-sends
    /// short-circuit the wire entirely).
    links: Vec<Option<LinkObs>>,
    nodes: usize,
}

impl NetObs {
    fn new(registry: &Registry, nodes: usize) -> NetObs {
        let mut links = Vec::with_capacity(nodes * nodes);
        for from in 0..nodes {
            for to in 0..nodes {
                if from == to {
                    links.push(None);
                    continue;
                }
                let (f, t) = (from.to_string(), to.to_string());
                let l = [("src", f.as_str()), ("dst", t.as_str())];
                links.push(Some(LinkObs {
                    frames_out: registry.counter(
                        "ccm_net_frames_out_total",
                        "Wire frames written, by direction",
                        &l,
                    ),
                    bytes_out: registry.counter(
                        "ccm_net_bytes_out_total",
                        "Wire bytes written (length prefixes included), by direction",
                        &l,
                    ),
                    frames_in: registry.counter(
                        "ccm_net_frames_in_total",
                        "Wire frames read, by direction",
                        &l,
                    ),
                    bytes_in: registry.counter(
                        "ccm_net_bytes_in_total",
                        "Wire bytes read (length prefixes included), by direction",
                        &l,
                    ),
                    dials: registry.counter(
                        "ccm_net_dials_total",
                        "Dial attempts on this link",
                        &l,
                    ),
                    dial_failures: registry.counter(
                        "ccm_net_dial_failures_total",
                        "Dial attempts that failed",
                        &l,
                    ),
                    teardowns: registry.counter(
                        "ccm_net_teardowns_total",
                        "Established connections torn down (error, EOF, or restart)",
                        &l,
                    ),
                    degrades: registry.counter(
                        "ccm_net_degrades_total",
                        "Sends refused or failed on this link (caller degrades to the backing store)",
                        &l,
                    ),
                    pending_replies: registry.gauge(
                        "ccm_net_pending_replies",
                        "Requests awaiting a wire reply on this link",
                        &l,
                    ),
                    backoff_ms: registry.gauge(
                        "ccm_net_backoff_ms",
                        "Reconnect backoff being served (0 while the link is healthy)",
                        &l,
                    ),
                }));
            }
        }
        NetObs { links, nodes }
    }

    fn pair(&self, from: NodeId, to: NodeId) -> &LinkObs {
        self.links[from.index() * self.nodes + to.index()]
            .as_ref()
            .expect("the wire never carries self-sends")
    }
}

/// What a reply correlates back to.
enum Pending {
    Block(Sender<Option<Vec<u8>>>),
    Barrier(Sender<()>),
}

/// The per-connection table of outstanding requests. Once the connection's
/// reply reader exits it *closes* the table; a sender that loses the race
/// and tries to register afterwards is refused, so no entry can ever be
/// orphaned to sit out its full timeout.
#[derive(Default)]
struct PendingMap {
    closed: AtomicBool,
    map: Mutex<FxHashMap<u64, Pending>>,
}

impl PendingMap {
    /// Register an outstanding request; false if the connection's reader
    /// already exited (the caller must treat the send as failed).
    fn insert(&self, req_id: u64, p: Pending) -> bool {
        let mut m = self.map.lock();
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        m.insert(req_id, p);
        true
    }

    fn remove(&self, req_id: u64) -> Option<Pending> {
        self.map.lock().remove(&req_id)
    }

    /// Refuse future registrations and drop every waiter (each observes an
    /// immediate disconnect rather than a timeout). Returns how many
    /// waiters were dropped so the caller can settle the pending gauge.
    fn close(&self) -> usize {
        let mut m = self.map.lock();
        self.closed.store(true, Ordering::Release);
        let dropped = m.len();
        m.clear();
        dropped
    }
}

type PendingTable = Arc<PendingMap>;

/// An established outbound connection.
struct Conn {
    sock: TcpStream,
    pending: PendingTable,
}

impl Drop for Conn {
    fn drop(&mut self) {
        // Unblock our reader thread and signal the peer's demux; pending
        // entries die with the table Arc once the reader exits.
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

/// One directed link `src → dst`.
struct Link {
    conn: Option<Conn>,
    backoff: Duration,
    /// Sends before this instant fail fast (the link is in backoff).
    retry_at: Option<Instant>,
}

struct NodeSlot {
    addr: SocketAddr,
    /// The current inbox incarnation. Demux threads pin a clone at
    /// handshake time, so frames for a dead incarnation can never reach a
    /// restarted node.
    inbox: RwLock<Sender<PeerMsg>>,
}

struct TcpShared {
    cfg: TcpConfig,
    slots: Vec<NodeSlot>,
    /// Row-major `src * nodes + dst`.
    links: Vec<Mutex<Link>>,
    next_req: AtomicU64,
    stop: AtomicBool,
    /// Demux/reader threads, joined on drop. Appended per connection; the
    /// vector grows with total connections made, which is bounded by link
    /// count times reconnects — fine for the runtime's lifetime.
    workers: Mutex<Vec<JoinHandle<()>>>,
    connects: AtomicU64,
    connect_failures: AtomicU64,
    teardowns: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    obs: NetObs,
}

impl TcpShared {
    fn link(&self, src: NodeId, dst: NodeId) -> &Mutex<Link> {
        &self.links[src.index() * self.slots.len() + dst.index()]
    }

    fn local_deliver(&self, dst: NodeId, msg: PeerMsg) -> bool {
        self.slots[dst.index()].inbox.read().send(msg).is_ok()
    }

    /// Tear an established connection down and arm the backoff. No-op if
    /// `pending` is not the link's current connection (a stale notice from
    /// an old reader thread must not kill its successor).
    fn teardown(&self, src: NodeId, dst: NodeId, pending: &PendingTable) {
        let mut link = self.link(src, dst).lock();
        let is_current = link
            .conn
            .as_ref()
            .is_some_and(|c| Arc::ptr_eq(&c.pending, pending));
        if is_current {
            link.conn = None; // Conn::drop shuts the socket down
            link.retry_at = Some(Instant::now() + link.backoff);
            let o = self.obs.pair(src, dst);
            o.teardowns.inc();
            o.backoff_ms.set(link.backoff.as_millis() as i64);
            link.backoff = (link.backoff * 2).min(self.cfg.max_backoff);
            self.teardowns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The socket LAN. Construct with [`TcpLan::loopback`], hand it to
/// `Middleware::start_on`, and the cluster's peer traffic runs over real
/// TCP connections.
pub struct TcpLan {
    shared: Arc<TcpShared>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpLan {
    /// Bind `nodes` listeners on loopback ephemeral ports with default
    /// tuning.
    ///
    /// # Errors
    /// Any socket error while binding or spawning acceptors.
    pub fn loopback(nodes: usize) -> std::io::Result<TcpLan> {
        TcpLan::with_config(nodes, TcpConfig::default())
    }

    /// [`TcpLan::loopback`], registering per-link wire metrics
    /// (`ccm_net_*`) on `registry`. Pass the same registry through
    /// `RtConfig::obs` and every layer's series land in one snapshot.
    ///
    /// # Errors
    /// Any socket error while binding or spawning acceptors.
    pub fn loopback_obs(nodes: usize, registry: &Registry) -> std::io::Result<TcpLan> {
        TcpLan::with_config_obs(nodes, TcpConfig::default(), registry)
    }

    /// Bind `nodes` listeners on loopback ephemeral ports.
    ///
    /// # Errors
    /// Any socket error while binding or spawning acceptors.
    pub fn with_config(nodes: usize, cfg: TcpConfig) -> std::io::Result<TcpLan> {
        // A private registry: the counters still count (NetStats reads
        // them through the same handles), the series just go nowhere.
        TcpLan::with_config_obs(nodes, cfg, &Registry::default())
    }

    /// [`TcpLan::with_config`] with per-link wire metrics on `registry`.
    ///
    /// # Errors
    /// Any socket error while binding or spawning acceptors.
    pub fn with_config_obs(
        nodes: usize,
        cfg: TcpConfig,
        registry: &Registry,
    ) -> std::io::Result<TcpLan> {
        let mut listeners = Vec::with_capacity(nodes);
        let mut slots = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            listeners.push(listener);
            // Dummy incarnation: dead until `reconnect` installs a real
            // inbox (Middleware::start_on does, for every node).
            let (tx, _) = unbounded();
            slots.push(NodeSlot {
                addr,
                inbox: RwLock::new(tx),
            });
        }
        let shared = Arc::new(TcpShared {
            cfg,
            slots,
            links: (0..nodes * nodes)
                .map(|_| {
                    Mutex::new(Link {
                        conn: None,
                        backoff: cfg.initial_backoff,
                        retry_at: None,
                    })
                })
                .collect(),
            next_req: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            connects: AtomicU64::new(0),
            connect_failures: AtomicU64::new(0),
            teardowns: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            obs: NetObs::new(registry, nodes),
        });
        let acceptors = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let shared = shared.clone();
                let node = NodeId(i as u16);
                std::thread::Builder::new()
                    .name(format!("ccm-net-accept-{i}"))
                    .spawn(move || accept_loop(shared, node, listener))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(TcpLan {
            shared,
            acceptors: Mutex::new(acceptors),
        })
    }

    /// The listen address of `node`.
    ///
    /// # Panics
    /// Panics if the node is out of range.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.shared.slots[node.index()].addr
    }

    /// Connection and frame counters so far.
    pub fn net_stats(&self) -> NetStats {
        let s = &self.shared;
        NetStats {
            connects: s.connects.load(Ordering::Relaxed),
            connect_failures: s.connect_failures.load(Ordering::Relaxed),
            teardowns: s.teardowns.load(Ordering::Relaxed),
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
        }
    }

    /// Ensure `src → dst` has a live connection, dialing if allowed.
    /// Returns false while the link is in backoff or the dial fails.
    fn ensure_conn<'a>(
        &self,
        link: &'a mut Link,
        src: NodeId,
        dst: NodeId,
    ) -> Option<&'a mut Conn> {
        if link.conn.is_some() {
            return link.conn.as_mut();
        }
        if self.shared.stop.load(Ordering::Acquire) {
            return None;
        }
        if let Some(at) = link.retry_at {
            if Instant::now() < at {
                return None; // fail fast: the caller degrades to disk
            }
        }
        let addr = self.shared.slots[dst.index()].addr;
        let obs = self.shared.obs.pair(src, dst);
        obs.dials.inc();
        let dial =
            TcpStream::connect_timeout(&addr, self.shared.cfg.connect_timeout).and_then(|sock| {
                sock.set_nodelay(true)?;
                let mut hello_sock = &sock;
                let hello_bytes = write_frame(
                    &mut hello_sock,
                    &WireMsg::Hello {
                        version: WIRE_VERSION,
                        node: src,
                    },
                )?;
                Ok((sock, hello_bytes))
            });
        match dial {
            Ok((sock, hello_bytes)) => {
                let pending: PendingTable = Arc::new(PendingMap::default());
                let reader_sock = match sock.try_clone() {
                    Ok(s) => s,
                    Err(_) => {
                        self.shared.connect_failures.fetch_add(1, Ordering::Relaxed);
                        obs.dial_failures.inc();
                        obs.backoff_ms.set(link.backoff.as_millis() as i64);
                        link.retry_at = Some(Instant::now() + link.backoff);
                        link.backoff = (link.backoff * 2).min(self.shared.cfg.max_backoff);
                        return None;
                    }
                };
                let shared = self.shared.clone();
                let reader_pending = pending.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("ccm-net-rd-{}-{}", src.index(), dst.index()))
                    .spawn(move || reply_reader(shared, src, dst, reader_sock, reader_pending))
                    .expect("spawn reply reader");
                self.shared.workers.lock().push(handle);
                self.shared.connects.fetch_add(1, Ordering::Relaxed);
                self.shared.frames_sent.fetch_add(1, Ordering::Relaxed); // the Hello
                obs.frames_out.inc();
                obs.bytes_out.add(hello_bytes as u64);
                obs.backoff_ms.set(0);
                link.conn = Some(Conn { sock, pending });
                link.backoff = self.shared.cfg.initial_backoff;
                link.retry_at = None;
                link.conn.as_mut()
            }
            Err(_) => {
                self.shared.connect_failures.fetch_add(1, Ordering::Relaxed);
                obs.dial_failures.inc();
                obs.backoff_ms.set(link.backoff.as_millis() as i64);
                link.retry_at = Some(Instant::now() + link.backoff);
                link.backoff = (link.backoff * 2).min(self.shared.cfg.max_backoff);
                None
            }
        }
    }

    /// Encode `msg` and write it on the link, registering a pending-table
    /// entry for reply-bearing messages. Returns false (after teardown) on
    /// any write failure.
    fn send_wire(&self, src: NodeId, dst: NodeId, msg: PeerMsg) -> bool {
        let obs = self.shared.obs.pair(src, dst);
        let mut link = self.shared.link(src, dst).lock();
        let Some(conn) = self.ensure_conn(&mut link, src, dst) else {
            obs.degrades.inc();
            return false;
        };
        let frame = match msg {
            PeerMsg::BlockRequest { block, reply } => {
                let req_id = self.shared.next_req.fetch_add(1, Ordering::Relaxed);
                if !conn.pending.insert(req_id, Pending::Block(reply)) {
                    let pending = conn.pending.clone();
                    drop(link);
                    obs.degrades.inc();
                    self.shared.teardown(src, dst, &pending);
                    return false;
                }
                obs.pending_replies.adjust(1);
                WireMsg::BlockRequest { req_id, block }
            }
            PeerMsg::Forward {
                block,
                data,
                displace,
            } => WireMsg::Forward {
                block,
                data,
                displace,
            },
            PeerMsg::Invalidate { block } => WireMsg::Invalidate { block },
            PeerMsg::WriteInvalidate { block, version } => {
                WireMsg::WriteInvalidate { block, version }
            }
            PeerMsg::Barrier { reply } => {
                let req_id = self.shared.next_req.fetch_add(1, Ordering::Relaxed);
                if !conn.pending.insert(req_id, Pending::Barrier(reply)) {
                    let pending = conn.pending.clone();
                    drop(link);
                    obs.degrades.inc();
                    self.shared.teardown(src, dst, &pending);
                    return false;
                }
                obs.pending_replies.adjust(1);
                WireMsg::Barrier { req_id }
            }
            // A pong correlates exactly like a barrier ack: unit reply.
            PeerMsg::Ping { reply } => {
                let req_id = self.shared.next_req.fetch_add(1, Ordering::Relaxed);
                if !conn.pending.insert(req_id, Pending::Barrier(reply)) {
                    let pending = conn.pending.clone();
                    drop(link);
                    obs.degrades.inc();
                    self.shared.teardown(src, dst, &pending);
                    return false;
                }
                obs.pending_replies.adjust(1);
                WireMsg::Ping { req_id }
            }
            // Control-plane; `send` routes it locally before we get here.
            PeerMsg::Shutdown => unreachable!("Shutdown never crosses the wire"),
        };
        let mut w = &conn.sock;
        match write_frame(&mut w, &frame) {
            Ok(n) => {
                self.shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                obs.frames_out.inc();
                obs.bytes_out.add(n as u64);
                true
            }
            Err(_) => {
                // A failed write is indistinguishable from a dead peer:
                // drop the connection (and its pending replies) and back
                // off.
                let pending = conn.pending.clone();
                drop(link);
                obs.degrades.inc();
                self.shared.teardown(src, dst, &pending);
                false
            }
        }
    }
}

impl Transport for TcpLan {
    fn nodes(&self) -> usize {
        self.shared.slots.len()
    }

    fn send(&self, src: NodeId, dst: NodeId, msg: PeerMsg) -> bool {
        // Shutdown is control-plane (it stops the local service thread);
        // self-sends short-circuit the wire the way a kernel loops back a
        // socket to itself.
        if src == dst || matches!(msg, PeerMsg::Shutdown) {
            return self.shared.local_deliver(dst, msg);
        }
        self.send_wire(src, dst, msg)
    }

    fn reconnect(&self, node: NodeId) -> Receiver<PeerMsg> {
        // A reboot severs the node's TCP connections in both directions.
        // Dropping each Conn shuts its socket down, so demux threads pinned
        // to the dead incarnation unblock and exit; links are re-armed for
        // an immediate dial (the listener is already back up).
        let n = self.shared.slots.len();
        for other in 0..n {
            for (src, dst) in [(node.index(), other), (other, node.index())] {
                if src == dst {
                    continue;
                }
                let mut link = self.shared.links[src * n + dst].lock();
                let pair = self.shared.obs.pair(NodeId(src as u16), NodeId(dst as u16));
                if link.conn.take().is_some() {
                    self.shared.teardowns.fetch_add(1, Ordering::Relaxed);
                    pair.teardowns.inc();
                }
                link.backoff = self.shared.cfg.initial_backoff;
                link.retry_at = None;
                pair.backoff_ms.set(0);
            }
        }
        let (tx, rx) = unbounded();
        *self.shared.slots[node.index()].inbox.write() = tx;
        rx
    }

    fn barrier(&self, node: NodeId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        // One wire barrier per live inbound connection: each ack proves
        // that connection's earlier frames were demuxed and processed. The
        // local barrier covers locally delivered messages and makes the
        // whole call fail when the node is down.
        let mut acks = Vec::new();
        for src in 0..self.shared.slots.len() {
            let src = NodeId(src as u16);
            if src == node {
                continue;
            }
            let mut link = self.shared.link(src, node).lock();
            let Some(conn) = link.conn.as_mut() else {
                continue; // never connected or torn down: nothing in flight
            };
            let req_id = self.shared.next_req.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = unbounded();
            if !conn.pending.insert(req_id, Pending::Barrier(tx)) {
                continue; // connection just died; its frames died with it
            }
            let obs = self.shared.obs.pair(src, node);
            obs.pending_replies.adjust(1);
            let mut w = &conn.sock;
            if let Ok(n) = write_frame(&mut w, &WireMsg::Barrier { req_id }) {
                self.shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                obs.frames_out.inc();
                obs.bytes_out.add(n as u64);
                acks.push(rx);
            } else {
                let pending = conn.pending.clone();
                drop(link);
                self.shared.teardown(src, node, &pending);
                // The link died: its in-flight frames are lost with it, so
                // there is nothing left to wait for.
            }
        }
        let (tx, rx) = unbounded();
        if !self
            .shared
            .local_deliver(node, PeerMsg::Barrier { reply: tx })
        {
            return false;
        }
        acks.push(rx);
        acks.into_iter().all(|rx| {
            let left = deadline.saturating_duration_since(Instant::now());
            rx.recv_timeout(left).is_ok()
        })
    }
}

impl Drop for TcpLan {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Closing every outbound connection unblocks both our reply readers
        // (read error) and the peer demux threads (EOF).
        for link in &self.shared.links {
            link.lock().conn = None;
        }
        // Nudge each acceptor out of accept().
        for slot in &self.shared.slots {
            let _ = TcpStream::connect(slot.addr);
        }
        for a in self.acceptors.lock().drain(..) {
            let _ = a.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

/// Accept inbound connections for `node` and spawn a demux per connection.
fn accept_loop(shared: Arc<TcpShared>, node: NodeId, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared2 = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("ccm-net-demux-{}", node.index()))
            .spawn(move || demux_loop(shared2, node, stream))
            .expect("spawn demux");
        shared.workers.lock().push(handle);
    }
}

/// Serve one inbound connection to `node`: validate the Hello, then
/// translate wire frames into [`PeerMsg`]s for the *current* inbox
/// incarnation, writing replies back on the same socket. Any error, EOF,
/// or dead-inbox delivery closes the connection — the sending side
/// observes it and re-dials after backoff.
fn demux_loop(shared: Arc<TcpShared>, node: NodeId, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Bound the handshake so a silent connection cannot pin this thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let (src, hello_bytes) = match read_frame_counted(&mut reader) {
        Ok(Some((WireMsg::Hello { version, node: src }, n)))
            if version == WIRE_VERSION && src.index() < shared.slots.len() && src != node =>
        {
            (src, n)
        }
        _ => return, // wrong protocol, wrong version, self-dial, or no hello
    };
    let _ = stream.set_read_timeout(None);
    shared.frames_received.fetch_add(1, Ordering::Relaxed); // the Hello
                                                            // Inbound traffic counts on the pair it traveled, `src → node`;
                                                            // replies we write back count on `node → src`.
    let in_obs = shared.obs.pair(src, node);
    let out_obs = shared.obs.pair(node, src);
    in_obs.frames_in.inc();
    in_obs.bytes_in.add(hello_bytes);

    // Pin the inbox incarnation: frames from a connection established
    // before a crash must die with the old incarnation, never leak into
    // the restarted node's inbox.
    let inbox = shared.slots[node.index()].inbox.read().clone();
    // Loop until the peer closes or the stream corrupts (read_frame yields
    // Ok(None) or Err respectively — both end the connection).
    while let Ok(Some((frame, frame_bytes))) = read_frame_counted(&mut reader) {
        shared.frames_received.fetch_add(1, Ordering::Relaxed);
        in_obs.frames_in.inc();
        in_obs.bytes_in.add(frame_bytes);
        match frame {
            WireMsg::BlockRequest { req_id, block } => {
                let (tx, rx) = unbounded();
                if inbox
                    .send(PeerMsg::BlockRequest { block, reply: tx })
                    .is_err()
                {
                    break; // dead incarnation: kill the connection
                }
                // Blocks until the service thread answers; if the node
                // crashes first the reply sender is dropped and this
                // resolves to a miss immediately.
                let data = rx.recv().ok().flatten();
                let mut w = &stream;
                let Ok(n) = write_frame(&mut w, &WireMsg::BlockReply { req_id, data }) else {
                    break;
                };
                shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                out_obs.frames_out.inc();
                out_obs.bytes_out.add(n as u64);
            }
            WireMsg::Forward {
                block,
                data,
                displace,
            } => {
                if inbox
                    .send(PeerMsg::Forward {
                        block,
                        data,
                        displace,
                    })
                    .is_err()
                {
                    break;
                }
            }
            WireMsg::Invalidate { block } => {
                if inbox.send(PeerMsg::Invalidate { block }).is_err() {
                    break;
                }
            }
            WireMsg::WriteInvalidate { block, version } => {
                if inbox
                    .send(PeerMsg::WriteInvalidate { block, version })
                    .is_err()
                {
                    break;
                }
            }
            WireMsg::Barrier { req_id } => {
                let (tx, rx) = unbounded();
                if inbox.send(PeerMsg::Barrier { reply: tx }).is_err() {
                    break;
                }
                if rx.recv().is_err() {
                    break; // node died mid-barrier: no ack, let it time out
                }
                let mut w = &stream;
                let Ok(n) = write_frame(&mut w, &WireMsg::BarrierAck { req_id }) else {
                    break;
                };
                shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                out_obs.frames_out.inc();
                out_obs.bytes_out.add(n as u64);
            }
            WireMsg::Ping { req_id } => {
                let (tx, rx) = unbounded();
                if inbox.send(PeerMsg::Ping { reply: tx }).is_err() {
                    break; // dead incarnation: the pinger observes a miss
                }
                if rx.recv().is_err() {
                    break; // node died mid-ping: no pong, let it time out
                }
                let mut w = &stream;
                let Ok(n) = write_frame(&mut w, &WireMsg::Pong { req_id }) else {
                    break;
                };
                shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                out_obs.frames_out.inc();
                out_obs.bytes_out.add(n as u64);
            }
            // Requests travel src → dst only; a reply or second Hello on
            // an inbound connection is protocol corruption.
            WireMsg::Hello { .. }
            | WireMsg::BlockReply { .. }
            | WireMsg::BarrierAck { .. }
            | WireMsg::Pong { .. } => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Resolve replies for one outbound connection. Exits on EOF or error,
/// tearing the link down so the next send re-dials after backoff.
fn reply_reader(
    shared: Arc<TcpShared>,
    src: NodeId,
    dst: NodeId,
    sock: TcpStream,
    pending: PendingTable,
) {
    let mut reader = BufReader::new(sock);
    // Replies travel `dst → src`; the pending gauge lives on the link as
    // dialed, `src → dst`.
    let in_obs = shared.obs.pair(dst, src);
    let link_obs = shared.obs.pair(src, dst);
    loop {
        match read_frame_counted(&mut reader) {
            Ok(Some((WireMsg::BlockReply { req_id, data }, n))) => {
                shared.frames_received.fetch_add(1, Ordering::Relaxed);
                in_obs.frames_in.inc();
                in_obs.bytes_in.add(n);
                if let Some(Pending::Block(tx)) = pending.remove(req_id) {
                    link_obs.pending_replies.adjust(-1);
                    let _ = tx.send(data); // requester may have timed out
                }
            }
            Ok(Some((WireMsg::BarrierAck { req_id }, n)))
            | Ok(Some((WireMsg::Pong { req_id }, n))) => {
                shared.frames_received.fetch_add(1, Ordering::Relaxed);
                in_obs.frames_in.inc();
                in_obs.bytes_in.add(n);
                if let Some(Pending::Barrier(tx)) = pending.remove(req_id) {
                    link_obs.pending_replies.adjust(-1);
                    let _ = tx.send(());
                }
            }
            // Only replies travel dst → src; anything else is protocol
            // corruption. EOF and errors mean the peer is gone.
            Ok(Some(_)) | Ok(None) | Err(_) => break,
        }
    }
    // Drop every waiter immediately (disconnect, not timeout), then put
    // the link into backoff if it still points at this connection.
    let dropped = pending.close();
    link_obs.pending_replies.adjust(-(dropped as i64));
    shared.teardown(src, dst, &pending);
}
