//! # ccm-net — a real TCP peer transport for the cooperative caching runtime
//!
//! `ccm-rt` runs the paper's middleware on OS threads but ships peer
//! messages over in-process channels. This crate replaces that LAN
//! stand-in with real sockets while leaving the runtime untouched: it
//! implements the runtime's [`Transport`] trait over TCP, so
//! `Middleware`, the chaos fault injector, and the HTTP front end all run
//! unchanged over either backend.
//!
//! Two pieces:
//!
//! * [`wire`] — a hand-rolled length-prefixed binary codec for the peer
//!   protocol. In-process reply channels cannot cross a socket, so
//!   reply-bearing messages are correlated by request id instead
//!   ([`WireMsg::BlockRequest`] / [`WireMsg::BlockReply`],
//!   [`WireMsg::Barrier`] / [`WireMsg::BarrierAck`]).
//! * [`tcp`] — [`TcpLan`]: per-node loopback listeners, one lazily dialed
//!   connection per ordered node pair, per-connection pending-reply
//!   tables, and reconnect with capped exponential backoff. Failures
//!   degrade to the runtime's existing disk-fallback path (§3's "eventual
//!   disk read"), never to a hang.
//!
//! ```no_run
//! use ccm_net::TcpLan;
//! use ccm_rt::{Middleware, RtConfig};
//! use std::sync::Arc;
//!
//! let cfg = RtConfig {
//!     nodes: 4,
//!     ..RtConfig::default()
//! };
//! let catalog = ccm_rt::Catalog::new(vec![1 << 20; 16]);
//! let disk = Arc::new(ccm_rt::SyntheticStore::new(catalog.clone(), 7));
//! let lan = Arc::new(TcpLan::loopback(cfg.nodes).expect("bind loopback"));
//! let mw = Middleware::start_on(cfg, catalog, disk, lan);
//! # drop(mw);
//! ```
//!
//! [`Transport`]: ccm_rt::Transport

#![warn(missing_docs)]

pub mod tcp;
pub mod wire;

pub use tcp::{NetStats, TcpConfig, TcpLan};
pub use wire::{
    decode, encode, read_frame, read_frame_counted, write_frame, DecodeError, WireMsg, WIRE_VERSION,
};
