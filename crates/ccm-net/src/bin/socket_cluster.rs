//! Demo: an N-node cooperative caching cluster whose peer traffic runs
//! over real TCP connections, serving the synthetic trace workload with
//! one client thread per node and verifying every byte against the
//! backing-store ground truth.
//!
//! Usage: `cargo run --release -p ccm-net --bin socket_cluster [nodes] [ops]`
//! (defaults: 4 nodes, 4000 reads total).

use ccm_core::{FileId, NodeId, ReplacementPolicy, BLOCK_SIZE};
use ccm_net::TcpLan;
use ccm_rt::store::read_file_direct;
use ccm_rt::{Catalog, Middleware, RtConfig, SyntheticStore};
use ccm_traces::SynthConfig;
use simcore::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let ops: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    assert!(nodes >= 2, "a cluster needs at least 2 nodes");

    // A small web-trace stand-in: Zipf popularity, log-normal body sizes.
    let wl = SynthConfig {
        name: "socket-demo".into(),
        n_files: 400,
        mean_size: 12_000.0,
        total_bytes: Some(8 << 20),
        seed: 0xD3110,
        ..SynthConfig::default()
    }
    .build();
    let catalog = Catalog::new(wl.sizes().to_vec());
    let store = Arc::new(SyntheticStore::new(catalog.clone(), 0xD3110));
    let total_blocks: usize = wl
        .sizes()
        .iter()
        .map(|s| (*s as usize).div_ceil(BLOCK_SIZE as usize))
        .sum();
    // Per-node memory holds ~1/(2·nodes) of the file set: small enough that
    // cooperation (remote hits, eviction forwarding) must carry the load.
    let capacity_blocks = (total_blocks / (2 * nodes)).max(8);

    let lan = Arc::new(TcpLan::loopback(nodes).expect("bind loopback listeners"));
    for i in 0..nodes {
        println!("node {i}: listening on {}", lan.addr(NodeId(i as u16)));
    }
    let mw = Arc::new(Middleware::start_on(
        RtConfig {
            nodes,
            capacity_blocks,
            policy: ReplacementPolicy::MasterPreserving,
            fetch_timeout: Duration::from_secs(2),
            faults: None,
        },
        catalog.clone(),
        store.clone(),
        lan.clone(),
    ));

    let start = Instant::now();
    let workers: Vec<_> = (0..nodes)
        .map(|i| {
            let node = NodeId(i as u16);
            let mw = mw.clone();
            let store = store.clone();
            let catalog = catalog.clone();
            let wl = wl.clone();
            let per_node = ops / nodes as u64;
            std::thread::spawn(move || {
                let mut rng = Rng::new(0xD3110).substream(10 + i as u64);
                let mut bytes = 0u64;
                for op in 0..per_node {
                    let file = FileId(wl.sample(&mut rng).0);
                    let got = mw.handle(node).read_file(file);
                    let want = read_file_direct(&*store, &catalog, file);
                    assert_eq!(got, want, "node {i} op {op}: bytes corrupted");
                    bytes += got.len() as u64;
                }
                bytes
            })
        })
        .collect();
    let bytes: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();
    let elapsed = start.elapsed();

    mw.quiesce();
    mw.check_invariants();
    let stats = mw.stats();
    let fallbacks = mw.store_fallbacks();
    let net = lan.net_stats();

    let accesses = stats.local_hits + stats.remote_hits + stats.disk_reads;
    println!(
        "\n{} reads ({:.1} MB) across {} nodes in {:.2?} — {:.1} MB/s",
        ops,
        bytes as f64 / (1 << 20) as f64,
        nodes,
        elapsed,
        bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "block accesses: {accesses} ({:.1}% local, {:.1}% remote, {:.1}% disk; {fallbacks} fallbacks)",
        100.0 * stats.local_hits as f64 / accesses as f64,
        100.0 * stats.remote_hits as f64 / accesses as f64,
        100.0 * stats.disk_reads as f64 / accesses as f64,
    );
    println!(
        "wire: {} connections, {} frames sent, {} frames received, {} teardowns",
        net.connects, net.frames_sent, net.frames_received, net.teardowns,
    );
    println!("every byte verified against the backing store — cluster OK");
    drop(mw);
}
